"""Differential oracles: pairs of implementations that must agree.

The repo deliberately retains slower reference implementations next to
every optimized path (naive MLC kernels beside the vectorized ones, the
per-packet episode simulator beside the closed-form pricing, the serial
runner beside the process pool, plain runs beside store-replayed ones).
Each oracle here replays *identical seeds and schedules* through one
such A/B pair and diffs the outputs with the NaN-aware numeric walk
borrowed from ``repro.store`` diff — any disagreement is a bug in one
side, found without needing to know which.

Oracles (see :data:`ORACLES`):

``mlc_kernels``
    Drives a fault-schedule-perturbed churn run, then compares the
    epoch-cached/vectorized root-path and loss-correlation kernels
    against their naive references over the surviving tree.
``delay_oracle``
    Scalar :meth:`DelayOracle.delay_ms` vs the case-masked batch
    :meth:`DelayOracle.delays_from`; the contract is *bit*-identical
    IEEE doubles.
``episode_pricing``
    Closed-form :func:`starvation_episode` vs the event-driven
    per-packet :class:`EpisodeSimulator` over random striped and
    sequential episodes.
``jobs``
    One experiment grid through ``--jobs 1`` vs ``--jobs 2`` worker
    fan-out; merged reports must be identical.
``resume``
    A store-recorded run replayed via ``--resume`` vs the same run
    uninterrupted.
``obs``
    The same run with observability capture enabled vs disabled; the
    experiment data must not depend on being observed.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import ValidationError
from .report import DiffReport, OracleOutcome

#: (experiment_id, scale, seeds, kwargs) the execution-path oracles
#: (jobs / resume / obs) replay; tiny but exercises a full sweep.
_EXECUTION_UNIT = ("fig04", 0.05, (1, 2), {"sizes": (2000,)})


def _diff_payloads(a, b, rtol: float = 0.0, atol: float = 0.0) -> List[Dict[str, str]]:
    from ..store.cli import iter_report_diff

    # Compare the canonical JSON form of both sides: experiment payloads
    # use int dict keys (e.g. network sizes) which any persisted leg —
    # the run store, a report file — legitimately round-trips to strings.
    a = json.loads(json.dumps(a))
    b = json.loads(json.dumps(b))
    return [
        {"path": path or "<root>", "detail": detail}
        for path, detail in iter_report_diff(a, b, rtol=rtol, atol=atol)
    ]


# -- kernel oracles ----------------------------------------------------------------


def _tiny_config(seed: int):
    """A self-contained small simulation config (no test fixtures)."""
    from ..config import SimulationConfig, TopologyConfig, WorkloadConfig

    cfg = SimulationConfig(
        topology=TopologyConfig(
            transit_domains=2,
            transit_nodes_per_domain=3,
            stub_domains_per_transit=2,
            stub_nodes_per_domain=4,
            seed=11,
        ),
        workload=WorkloadConfig(target_population=50),
        warmup_lifetimes=0.5,
        measure_lifetimes=0.5,
    )
    return cfg.with_seed(seed)


def _random_fault_schedule(seed: int):
    """A seed-deterministic small fault schedule (crashes + an outage)."""
    from ..faults import FaultSchedule, NodeCrash, StubDomainOutage

    rng = np.random.default_rng(seed)
    faults = []
    for _ in range(int(rng.integers(1, 4))):
        faults.append(
            NodeCrash(
                at_s=float(rng.uniform(50.0, 400.0)),
                count=int(rng.integers(1, 6)),
                selector=NodeCrash.SELECTORS[
                    int(rng.integers(0, len(NodeCrash.SELECTORS)))
                ],
            )
        )
    if rng.integers(0, 2):
        faults.append(
            StubDomainOutage(
                at_s=float(rng.uniform(50.0, 400.0)),
                domains=int(rng.integers(1, 3)),
            )
        )
    return FaultSchedule(seed=seed, faults=tuple(faults))


def run_mlc_kernel_differential(
    seed: int = 0, schedule=None
) -> OracleOutcome:
    """Vectorized/cached MLC kernels vs naive references, post-faults.

    Runs a small churn simulation under ``schedule`` (a seed-derived
    random one by default) so crashes, outages and the resulting repairs
    have churned the tree — the epoch-based path caches have been
    invalidated and rebuilt many times — then compares, over every
    attached member: the cached root path, all pairwise loss
    correlations, and the vectorized group sum on random subsets,
    against the walk-the-parent-chain ground truth.
    """
    from ..faults import FaultInjector
    from ..protocols import PROTOCOLS
    from ..recovery.mlc import (
        group_loss_correlation,
        loss_correlation,
        naive_group_loss_correlation,
        naive_loss_correlation,
        naive_root_path_ids,
        root_path_ids,
    )
    from ..simulation.churn import ChurnSimulation

    cfg = _tiny_config(seed + 100)
    sim = ChurnSimulation(cfg, PROTOCOLS["rost"])
    if schedule is None:
        schedule = _random_fault_schedule(seed)
    FaultInjector(schedule).bind(sim)
    sim.run()

    nodes = [node for node in sim.tree.members.values() if node.attached]
    differences: List[Dict[str, str]] = []
    comparisons = 0
    for node in nodes:
        comparisons += 1
        fast = root_path_ids(node)
        slow = naive_root_path_ids(node)
        if fast != slow:
            differences.append(
                {
                    "path": f"root_path[{node.member_id}]",
                    "detail": f"cached {fast} != naive {slow}",
                }
            )
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            comparisons += 1
            fast = loss_correlation(a, b)
            slow = naive_loss_correlation(a, b)
            if fast != slow:
                differences.append(
                    {
                        "path": f"loss_correlation[{a.member_id},{b.member_id}]",
                        "detail": f"{fast} != naive {slow}",
                    }
                )
    rng = np.random.default_rng(seed)
    for trial in range(8):
        size = int(rng.integers(2, max(3, len(nodes))))
        subset = [nodes[int(i)] for i in rng.choice(len(nodes), size=size)]
        comparisons += 1
        fast = group_loss_correlation(subset)
        slow = naive_group_loss_correlation(subset)
        if fast != slow:
            differences.append(
                {
                    "path": f"group_loss_correlation[trial {trial}]",
                    "detail": f"{fast} != naive {slow} "
                    f"(members {[n.member_id for n in subset]})",
                }
            )
    return OracleOutcome(
        oracle="mlc_kernels",
        equal=not differences,
        differences=differences,
        meta={
            "seed": seed,
            "members": len(nodes),
            "faults": len(schedule.faults),
            "comparisons": comparisons,
        },
    )


def run_delay_oracle_differential(seed: int = 0) -> OracleOutcome:
    """Scalar vs batch delay queries: must be bit-identical doubles."""
    from ..topology.routing import DelayOracle
    from ..topology.transit_stub import generate_transit_stub

    cfg = _tiny_config(seed).topology
    topology = generate_transit_stub(cfg)
    oracle = DelayOracle(topology)
    rng = np.random.default_rng(seed)
    nodes = list(topology.stub_nodes) + list(topology.transit_nodes)
    differences: List[Dict[str, str]] = []
    comparisons = 0
    for _ in range(16):
        source = nodes[int(rng.integers(0, len(nodes)))]
        targets = [
            nodes[int(i)]
            for i in rng.choice(len(nodes), size=int(rng.integers(1, 24)))
        ]
        batch = oracle.delays_from(source, targets)
        for target, vectorized in zip(targets, batch):
            comparisons += 1
            scalar = oracle.delay_ms(source, target)
            if scalar != vectorized and not (
                math.isnan(scalar) and math.isnan(float(vectorized))
            ):
                differences.append(
                    {
                        "path": f"delay[{source},{target}]",
                        "detail": f"scalar {scalar!r} != batch "
                        f"{float(vectorized)!r}",
                    }
                )
    return OracleOutcome(
        oracle="delay_oracle",
        equal=not differences,
        differences=differences,
        meta={"seed": seed, "comparisons": comparisons},
    )


def run_episode_pricing_differential(seed: int = 0) -> OracleOutcome:
    """Closed-form episode pricing vs the per-packet event simulator."""
    from ..metrics.stats import within_tolerance
    from ..recovery.episode import BackfillSpec, RepairSource, starvation_episode
    from ..recovery.packet_sim import simulate_episode

    rng = np.random.default_rng(seed)
    differences: List[Dict[str, str]] = []
    comparisons = 0
    for trial in range(24):
        gap = int(rng.integers(0, 120))
        rate = float(rng.uniform(5.0, 60.0))
        sources = [
            RepairSource(
                member_id=i,
                rate_pps=float(rng.uniform(0.0, rate)),
                has_data=bool(rng.integers(0, 4)),
                delay_ms=float(rng.uniform(0.0, 50.0)),
            )
            for i in range(int(rng.integers(1, 5)))
        ]
        backfill = None
        if rng.integers(0, 2):
            backfill = BackfillSpec(
                start_s=float(rng.uniform(0.0, 3.0)),
                rate_pps=float(rng.uniform(1.0, rate)),
                cutoff_seq=int(rng.integers(0, max(1, gap))),
            )
        kwargs = dict(
            gap_packets=gap,
            packet_rate_pps=rate,
            buffer_ahead_s=float(rng.uniform(0.0, 2.0)),
            detect_s=float(rng.uniform(0.0, 1.0)),
            request_hop_s=float(rng.uniform(0.0, 0.2)),
            sources=sources,
            striped=bool(rng.integers(0, 2)),
            backfill=backfill,
        )
        comparisons += 1
        closed = starvation_episode(**kwargs)
        packet = simulate_episode(**kwargs)
        for field in ("gap_packets", "repaired_in_time", "missed_packets"):
            a, b = getattr(closed, field), getattr(packet, field)
            if a != b:
                differences.append(
                    {
                        "path": f"episode[{trial}].{field}",
                        "detail": f"closed-form {a!r} != packet-sim {b!r} "
                        f"(striped={kwargs['striped']}, gap={gap})",
                    }
                )
        # The integer packet counts must match exactly; the derived float
        # fields only to the discretisation the two models share (the
        # existing unit tests pin the same 1e-6 contract).
        for field in ("starving_s", "coverage", "repair_end_s"):
            a, b = getattr(closed, field), getattr(packet, field)
            if not within_tolerance(a, b, rtol=1e-6, atol=1e-6):
                differences.append(
                    {
                        "path": f"episode[{trial}].{field}",
                        "detail": f"closed-form {a!r} != packet-sim {b!r}",
                    }
                )
    return OracleOutcome(
        oracle="episode_pricing",
        equal=not differences,
        differences=differences,
        meta={"seed": seed, "comparisons": comparisons},
    )


# -- execution-path oracles --------------------------------------------------------


def _run_execution_unit(jobs: int):
    """Run the shared small experiment grid; returns per-seed data dicts.

    Fresh in-process caches per call: a differential between two
    execution paths must not let the first leg's cached runs leak into
    the second.
    """
    from ..experiments.common import clear_caches
    from ..experiments.pool import ExperimentJob, run_jobs

    experiment_id, scale, seeds, kwargs = _EXECUTION_UNIT
    clear_caches()
    try:
        batch = [
            ExperimentJob.make(experiment_id, scale=scale, seed=seed, **kwargs)
            for seed in seeds
        ]
        results = run_jobs(batch, parallel_jobs=jobs)
        return [result.data for result in results]
    finally:
        clear_caches()


def run_jobs_differential(seed: int = 0) -> OracleOutcome:
    """Serial in-process execution vs 2-worker process fan-out."""
    serial = _run_execution_unit(jobs=1)
    parallel = _run_execution_unit(jobs=2)
    differences = _diff_payloads(serial, parallel)
    return OracleOutcome(
        oracle="jobs",
        equal=not differences,
        differences=differences,
        meta={"unit": _EXECUTION_UNIT[0], "jobs": [1, 2],
              "comparisons": len(serial)},
    )


def run_resume_differential(seed: int = 0) -> OracleOutcome:
    """Store-recorded + ``--resume``-replayed results vs uninterrupted."""
    from ..store.runstore import ENV_STORE_DIR, ENV_STORE_RESUME

    fresh = _run_execution_unit(jobs=1)
    saved = {
        name: os.environ.get(name)
        for name in (ENV_STORE_DIR, ENV_STORE_RESUME)
    }
    with tempfile.TemporaryDirectory(prefix="repro-validate-store-") as root:
        try:
            os.environ[ENV_STORE_DIR] = root
            os.environ.pop(ENV_STORE_RESUME, None)
            _run_execution_unit(jobs=1)  # record every unit
            os.environ[ENV_STORE_RESUME] = "1"
            replayed = _run_execution_unit(jobs=1)
        finally:
            for name, old in saved.items():
                if old is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = old
    differences = _diff_payloads(fresh, replayed)
    return OracleOutcome(
        oracle="resume",
        equal=not differences,
        differences=differences,
        meta={"unit": _EXECUTION_UNIT[0], "comparisons": len(fresh)},
    )


def run_obs_differential(seed: int = 0) -> OracleOutcome:
    """Observability-on vs observability-off: observation must not perturb."""
    from ..obs.capture import ENV_METRICS, ENV_TRACE

    plain = _run_execution_unit(jobs=1)
    saved = {name: os.environ.get(name) for name in (ENV_TRACE, ENV_METRICS)}
    try:
        os.environ[ENV_TRACE] = "1"
        os.environ[ENV_METRICS] = "1"
        # execute_job opens its own job_capture(); setting the flags is
        # all that is needed for the observed leg.
        observed = _run_execution_unit(jobs=1)
    finally:
        for name, old in saved.items():
            if old is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = old
    differences = _diff_payloads(plain, observed)
    return OracleOutcome(
        oracle="obs",
        equal=not differences,
        differences=differences,
        meta={"unit": _EXECUTION_UNIT[0], "comparisons": len(plain)},
    )


#: Registry: oracle name -> callable(seed) -> OracleOutcome.  Pluggable —
#: tests register throwaway oracles to exercise the CLI.
ORACLES: Dict[str, Callable[[int], OracleOutcome]] = {
    "mlc_kernels": run_mlc_kernel_differential,
    "delay_oracle": run_delay_oracle_differential,
    "episode_pricing": run_episode_pricing_differential,
    "jobs": run_jobs_differential,
    "resume": run_resume_differential,
    "obs": run_obs_differential,
}


def run_oracle(name: str, seed: int = 0) -> OracleOutcome:
    try:
        oracle = ORACLES[name]
    except KeyError:
        raise ValidationError(
            f"unknown differential oracle {name!r}; known: {sorted(ORACLES)}"
        ) from None
    return oracle(seed)


def run_oracles(
    names: Optional[Sequence[str]] = None, seed: int = 0
) -> DiffReport:
    """Run the named oracles (default: all) into one report."""
    targets = list(names) if names else sorted(ORACLES)
    return DiffReport(outcomes=[run_oracle(n, seed=seed) for n in targets])

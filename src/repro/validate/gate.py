"""The gate engine: re-run experiments, compare against golden baselines.

Two comparison modes, picked automatically:

* **paired** — the gate runs at the baseline's own (scale, seeds).  The
  simulations are seed-deterministic, so every per-seed value must
  reproduce within ``rtol``/``atol``; this is the tight default that a
  clean checkout passes bit-for-bit and a behavioral bug fails loudly.
* **unpaired** — the gate runs at overridden seeds (or scale).  Values
  are legitimately resampled, so the check loosens to a CI-overlap
  criterion: the means must agree within ``atol + rtol·max(|means|) +
  ci_scale·(ci_a + ci_b)``.

Either way, the baseline's declared trend checks (the paper's
qualitative orderings) are evaluated on the *seed-averaged* current
values — a reproduction whose absolute numbers drift but whose ordering
flips has lost fidelity even if every metric squeaks through.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..metrics.stats import mean_and_ci, within_tolerance
from .baseline import (
    Baseline,
    MetricBaseline,
    TrendSpec,
    collect_samples,
    summarize_samples,
)
from .report import GateOutcome, GateReport, MetricVerdict, TrendVerdict


def _check_paired(
    path: str,
    base: MetricBaseline,
    current: MetricBaseline,
    rtol: float,
    atol: float,
) -> Optional[MetricVerdict]:
    """Per-seed comparison; None means the metric passed."""
    if len(current.values) != len(base.values):
        detail = (
            f"sample count changed: {len(base.values)} -> "
            f"{len(current.values)}"
        )
    else:
        bad = [
            i
            for i, (b, c) in enumerate(zip(base.values, current.values))
            if not within_tolerance(c, b, rtol=rtol, atol=atol)
        ]
        if not bad:
            return None
        i = bad[0]
        detail = (
            f"{len(bad)}/{len(base.values)} seeds out of tolerance "
            f"(rtol={rtol:g}, atol={atol:g}); first: seed#{i} "
            f"{base.values[i]:g} -> {current.values[i]:g}"
        )
    return MetricVerdict(
        path=path,
        passed=False,
        baseline_mean=base.mean,
        baseline_ci95=base.ci95,
        current_mean=current.mean,
        current_ci95=current.ci95,
        detail=detail,
    )


def _check_unpaired(
    path: str,
    base: MetricBaseline,
    current: MetricBaseline,
    rtol: float,
    atol: float,
    ci_scale: float,
) -> Optional[MetricVerdict]:
    """CI-overlap comparison on the means; None means the metric passed."""
    widened = atol + ci_scale * (
        (base.ci95 if math.isfinite(base.ci95) else 0.0)
        + (current.ci95 if math.isfinite(current.ci95) else 0.0)
    )
    if within_tolerance(current.mean, base.mean, rtol=rtol, atol=widened):
        return None
    return MetricVerdict(
        path=path,
        passed=False,
        baseline_mean=base.mean,
        baseline_ci95=base.ci95,
        current_mean=current.mean,
        current_ci95=current.ci95,
        detail=(
            f"mean departed the baseline CI band: {base.mean:g} "
            f"(±{base.ci95:g}) -> {current.mean:g} (±{current.ci95:g}), "
            f"allowed ±({widened:g} + {rtol:g} rel)"
        ),
    )


def _seed_means(samples: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """Across-seed mean per path (NaN where a seed lacks the path)."""
    paths = sorted(set().union(*samples)) if samples else []
    return {
        path: mean_and_ci([s.get(path, math.nan) for s in samples])[0]
        for path in paths
    }


def _evaluate_trend(
    trend: TrendSpec, means: Dict[str, float]
) -> TrendVerdict:
    if trend.kind == "series_order":
        lower_paths = sorted(
            p for p in means if p.startswith(f"series.{trend.lower}[")
        )
        if not lower_paths:
            return TrendVerdict(
                name=trend.name,
                kind=trend.kind,
                passed=False,
                detail=f"no series paths for {trend.lower!r} in the report",
            )
        pairs = []
        for lower_path in lower_paths:
            suffix = lower_path[len(f"series.{trend.lower}") :]
            upper_path = f"series.{trend.upper}{suffix}"
            if upper_path not in means:
                return TrendVerdict(
                    name=trend.name,
                    kind=trend.kind,
                    passed=False,
                    detail=f"missing counterpart path {upper_path!r}",
                )
            pairs.append((lower_path, upper_path))
    elif trend.kind == "path_order":
        missing = [p for p in (trend.lower, trend.upper) if p not in means]
        if missing:
            return TrendVerdict(
                name=trend.name,
                kind=trend.kind,
                passed=False,
                detail=f"missing path(s) {missing}",
            )
        pairs = [(trend.lower, trend.upper)]
    else:  # pragma: no cover - from_payload rejects unknown kinds
        return TrendVerdict(
            name=trend.name, kind=trend.kind, passed=False,
            detail=f"unknown trend kind {trend.kind!r}",
        )

    for lower_path, upper_path in pairs:
        lower_value = means[lower_path]
        upper_value = means[upper_path]
        bound = upper_value * (1.0 + trend.rel_margin) + trend.abs_margin
        if math.isnan(lower_value) or math.isnan(upper_value):
            return TrendVerdict(
                name=trend.name, kind=trend.kind, passed=False,
                detail=f"NaN operand: {lower_path}={lower_value:g}, "
                f"{upper_path}={upper_value:g}",
            )
        if lower_value > bound:
            return TrendVerdict(
                name=trend.name,
                kind=trend.kind,
                passed=False,
                detail=(
                    f"ordering flipped: {lower_path} ({lower_value:g}) > "
                    f"{upper_path} ({upper_value:g}, bound {bound:g})"
                ),
            )
    return TrendVerdict(
        name=trend.name, kind=trend.kind, passed=True,
        detail=f"{len(pairs)} ordered pair(s) hold",
    )


def run_gate(
    baseline: Baseline,
    scale: Optional[float] = None,
    seeds: Optional[Sequence[int]] = None,
    jobs: int = 1,
    samples: Optional[Sequence[Dict[str, float]]] = None,
) -> GateOutcome:
    """Gate one baseline; re-runs its experiment unless ``samples`` given.

    ``samples`` (pre-flattened per-seed metric dicts) lets callers that
    already ran the experiment — the runner's ``--validate`` flag, the
    mutation tests — skip the re-execution; they are then assumed to
    come from the baseline's own operating point (paired mode).
    """
    gate_scale = baseline.scale if scale is None else scale
    gate_seeds = list(baseline.seeds if seeds is None else seeds)
    paired = gate_scale == baseline.scale and gate_seeds == baseline.seeds
    if samples is None:
        samples = collect_samples(
            baseline.experiment_id,
            gate_scale,
            gate_seeds,
            baseline.kwargs,
            jobs=jobs,
        )
    current = summarize_samples(samples)
    tolerance = baseline.tolerance

    failures: List[MetricVerdict] = []
    checked = 0
    nan_summary = MetricBaseline.from_values([])
    for path in sorted(set(baseline.metrics) | set(current)):
        checked += 1
        base_summary = baseline.metrics.get(path)
        current_summary = current.get(path)
        if base_summary is None or current_summary is None:
            side = "baseline" if base_summary is None else "current report"
            failures.append(
                MetricVerdict(
                    path=path,
                    passed=False,
                    baseline_mean=(base_summary or nan_summary).mean,
                    baseline_ci95=(base_summary or nan_summary).ci95,
                    current_mean=(current_summary or nan_summary).mean,
                    current_ci95=(current_summary or nan_summary).ci95,
                    detail=f"metric path missing from the {side}",
                )
            )
            continue
        if paired:
            verdict = _check_paired(
                path, base_summary, current_summary,
                tolerance.rtol, tolerance.atol,
            )
        else:
            verdict = _check_unpaired(
                path, base_summary, current_summary,
                tolerance.rtol, tolerance.atol, tolerance.ci_scale,
            )
        if verdict is not None:
            failures.append(verdict)

    means = _seed_means(samples)
    trends = [_evaluate_trend(trend, means) for trend in baseline.trends]
    return GateOutcome(
        experiment_id=baseline.experiment_id,
        baseline_path=baseline.source_path or "<in-memory>",
        scale=gate_scale,
        seeds=gate_seeds,
        mode="paired" if paired else "unpaired",
        metrics_checked=checked,
        metric_failures=failures,
        trends=trends,
    )


def run_gates(
    baselines: Sequence[Baseline],
    baseline_dir: str = "",
    scale: Optional[float] = None,
    seeds: Optional[Sequence[int]] = None,
    jobs: int = 1,
) -> GateReport:
    """Gate every baseline; aggregate into one report."""
    outcomes = [
        run_gate(baseline, scale=scale, seeds=seeds, jobs=jobs)
        for baseline in baselines
    ]
    return GateReport(baseline_dir=baseline_dir, outcomes=outcomes)

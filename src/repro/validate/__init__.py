"""Statistical paper-fidelity gates and differential validation.

Two complementary defenses against silent fidelity loss:

* **Baseline gates** (:mod:`repro.validate.gate`): re-run the registered
  experiments at a committed smoke-scale operating point and compare
  every metric — and the paper's qualitative orderings — against
  schema-versioned golden baselines under ``tests/golden/baselines/``.
* **Differential oracles** (:mod:`repro.validate.differential`): replay
  identical seeds and schedules through implementation pairs that must
  agree (vectorized vs naive kernels, serial vs pooled execution,
  store-resumed vs uninterrupted, observed vs unobserved).

Command-line access: ``python -m repro.validate {gate,diff,baseline}``;
the experiment runner's ``--validate DIR`` flag gates a run in-line.
See ``docs/validation.md``.
"""

from ..errors import ValidationError
from .baseline import (
    BASELINE_SCHEMA_VERSION,
    DEFAULT_SPECS,
    ENV_REGEN_BASELINES,
    Baseline,
    MetricBaseline,
    Tolerance,
    TrendSpec,
    build_baseline,
    collect_samples,
    default_baseline_specs,
    flatten_numeric,
    load_baseline,
    load_baseline_dir,
    regen_baselines,
    save_baseline,
    summarize_samples,
)
from .differential import ORACLES, run_oracle, run_oracles
from .gate import run_gate, run_gates
from .report import (
    REPORT_SCHEMA_VERSION,
    DiffReport,
    GateOutcome,
    GateReport,
    MetricVerdict,
    OracleOutcome,
    TrendVerdict,
    write_report,
)

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "Baseline",
    "DEFAULT_SPECS",
    "DiffReport",
    "ENV_REGEN_BASELINES",
    "GateOutcome",
    "GateReport",
    "MetricBaseline",
    "MetricVerdict",
    "ORACLES",
    "OracleOutcome",
    "REPORT_SCHEMA_VERSION",
    "Tolerance",
    "TrendSpec",
    "TrendVerdict",
    "ValidationError",
    "build_baseline",
    "collect_samples",
    "default_baseline_specs",
    "flatten_numeric",
    "load_baseline",
    "load_baseline_dir",
    "regen_baselines",
    "run_gate",
    "run_gates",
    "run_oracle",
    "run_oracles",
    "save_baseline",
    "summarize_samples",
    "write_report",
]

"""Structured pass/fail reports for gates and differential oracles.

Both halves of :mod:`repro.validate` — the statistical baseline gates
and the A/B differential oracles — emit their verdicts through the
containers here, so CI jobs, the runner's ``--validate`` flag and the
mutation smoke tests all consume one JSON shape::

    {
      "schema_version": 1,
      "kind": "gate" | "differential",
      "passed": false,
      "gates": [...] / "oracles": [...]
    }

Every failure carries enough context (metric path, baseline vs current
summary, tolerance actually applied) to triage without re-running
anything.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Version of the report JSON shape (bump on incompatible change).
REPORT_SCHEMA_VERSION = 1


@dataclass
class MetricVerdict:
    """One metric path compared against its baseline summary."""

    path: str
    passed: bool
    baseline_mean: float
    baseline_ci95: float
    current_mean: float
    current_ci95: float
    #: Human-readable reason; empty for a pass.
    detail: str = ""

    def to_payload(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "passed": self.passed,
            "baseline": {"mean": self.baseline_mean, "ci95": self.baseline_ci95},
            "current": {"mean": self.current_mean, "ci95": self.current_ci95},
            "detail": self.detail,
        }


@dataclass
class TrendVerdict:
    """One qualitative-ordering check (the paper's 'A beats B' claims)."""

    name: str
    kind: str
    passed: bool
    detail: str = ""

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "passed": self.passed,
            "detail": self.detail,
        }


@dataclass
class GateOutcome:
    """Verdict of one baseline file's gate."""

    experiment_id: str
    baseline_path: str
    scale: float
    seeds: List[int]
    #: "paired" (same seeds/scale as the baseline: per-seed comparison)
    #: or "unpaired" (CI-overlap comparison on the means).
    mode: str
    metrics_checked: int
    metric_failures: List[MetricVerdict] = field(default_factory=list)
    trends: List[TrendVerdict] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.metric_failures and all(t.passed for t in self.trends)

    def to_payload(self) -> Dict[str, object]:
        return {
            "experiment_id": self.experiment_id,
            "baseline": self.baseline_path,
            "scale": self.scale,
            "seeds": list(self.seeds),
            "mode": self.mode,
            "passed": self.passed,
            "metrics": {
                "checked": self.metrics_checked,
                "failed": len(self.metric_failures),
            },
            "metric_failures": [v.to_payload() for v in self.metric_failures],
            "trends": [t.to_payload() for t in self.trends],
        }

    def summary_line(self) -> str:
        trends_failed = sum(1 for t in self.trends if not t.passed)
        status = "PASS" if self.passed else "FAIL"
        return (
            f"{status} {self.experiment_id}: "
            f"{self.metrics_checked - len(self.metric_failures)}"
            f"/{self.metrics_checked} metrics within tolerance, "
            f"{len(self.trends) - trends_failed}/{len(self.trends)} trends hold "
            f"({self.mode}, scale {self.scale:g}, {len(self.seeds)} seeds)"
        )


@dataclass
class GateReport:
    """All gate outcomes of one ``repro.validate gate`` invocation."""

    baseline_dir: str
    outcomes: List[GateOutcome] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(o.passed for o in self.outcomes)

    def to_payload(self) -> Dict[str, object]:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "kind": "gate",
            "baseline_dir": self.baseline_dir,
            "passed": self.passed,
            "gates": [o.to_payload() for o in self.outcomes],
        }

    def render_text(self) -> str:
        lines = [o.summary_line() for o in self.outcomes]
        for outcome in self.outcomes:
            for verdict in outcome.metric_failures:
                lines.append(
                    f"  {outcome.experiment_id} {verdict.path}: {verdict.detail}"
                )
            for trend in outcome.trends:
                if not trend.passed:
                    lines.append(
                        f"  {outcome.experiment_id} trend {trend.name}: "
                        f"{trend.detail}"
                    )
        lines.append(
            f"gate: {'PASS' if self.passed else 'FAIL'} "
            f"({sum(o.passed for o in self.outcomes)}/{len(self.outcomes)} "
            f"baselines)"
        )
        return "\n".join(lines)


@dataclass
class OracleOutcome:
    """Verdict of one differential (A/B) oracle."""

    oracle: str
    equal: bool
    #: ``[{"path": ..., "detail": ...}]`` — leaf-level disagreements.
    differences: List[Dict[str, str]] = field(default_factory=list)
    #: Oracle-specific context (seeds, populations, comparison counts).
    meta: Dict[str, object] = field(default_factory=dict)

    def to_payload(self) -> Dict[str, object]:
        return {
            "oracle": self.oracle,
            "passed": self.equal,
            "differences": list(self.differences),
            "meta": dict(self.meta),
        }

    def summary_line(self) -> str:
        status = "PASS" if self.equal else "FAIL"
        checks = self.meta.get("comparisons")
        suffix = f" ({checks} comparisons)" if checks is not None else ""
        if self.differences:
            suffix += f", {len(self.differences)} difference(s)"
        return f"{status} {self.oracle}{suffix}"


@dataclass
class DiffReport:
    """All oracle outcomes of one ``repro.validate diff`` invocation."""

    outcomes: List[OracleOutcome] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(o.equal for o in self.outcomes)

    def to_payload(self) -> Dict[str, object]:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "kind": "differential",
            "passed": self.passed,
            "oracles": [o.to_payload() for o in self.outcomes],
        }

    def render_text(self) -> str:
        lines = [o.summary_line() for o in self.outcomes]
        for outcome in self.outcomes:
            for difference in outcome.differences[:20]:
                lines.append(
                    f"  {outcome.oracle} {difference['path']}: "
                    f"{difference['detail']}"
                )
            if len(outcome.differences) > 20:
                lines.append(
                    f"  {outcome.oracle}: ... "
                    f"{len(outcome.differences) - 20} more difference(s)"
                )
        lines.append(f"diff: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


def write_report(payload: Dict[str, object], path: str) -> None:
    """Atomically write a report payload as indented JSON."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".repro-validate-")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)

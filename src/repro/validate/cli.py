"""``python -m repro.validate`` — paper-fidelity gates and differentials.

Examples::

    python -m repro.validate gate --baseline tests/golden/baselines
    python -m repro.validate gate --baseline tests/golden/baselines \\
        --only fig04 --report gate-report.json
    python -m repro.validate gate --baseline tests/golden/baselines \\
        --seeds 11,12,13          # unpaired (CI-overlap) mode
    python -m repro.validate diff
    python -m repro.validate diff --oracle mlc_kernels --oracle jobs --seed 7
    python -m repro.validate baseline regen --baseline tests/golden/baselines

Exit codes follow the store CLI convention: 0 = everything passed,
1 = a gate or oracle failed (the structured report says which and why),
2 = usage or environment error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..errors import ValidationError
from .baseline import load_baseline_dir, regen_baselines
from .differential import ORACLES, run_oracles
from .gate import run_gates
from .report import write_report


def _parse_seeds(text: Optional[str]) -> Optional[List[int]]:
    if text is None:
        return None
    try:
        seeds = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise ValidationError(
            f"--seeds wants a comma-separated integer list, got {text!r}"
        ) from None
    if not seeds:
        raise ValidationError("--seeds must name at least one seed")
    return seeds


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-validate",
        description="Statistical paper-fidelity gates and differential "
        "oracles (see docs/validation.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gate = sub.add_parser(
        "gate", help="re-run experiments, compare against golden baselines"
    )
    gate.add_argument(
        "--baseline",
        required=True,
        metavar="DIR",
        help="directory of committed baseline JSON files",
    )
    gate.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="EXPERIMENT",
        help="gate only this experiment id (repeatable)",
    )
    gate.add_argument(
        "--scale",
        type=float,
        default=None,
        help="override the baselines' scale (forces unpaired mode)",
    )
    gate.add_argument(
        "--seeds",
        type=str,
        default=None,
        metavar="S1,S2,...",
        help="override the baselines' seeds (forces unpaired mode)",
    )
    gate.add_argument(
        "--jobs", type=int, default=1, help="worker processes per experiment"
    )
    gate.add_argument(
        "--report",
        type=str,
        default=None,
        metavar="FILE",
        help="also write the structured JSON report here",
    )
    gate.add_argument(
        "--json", action="store_true", help="print the JSON report to stdout"
    )

    diff = sub.add_parser(
        "diff", help="run A/B differential oracles (paired implementations)"
    )
    diff.add_argument(
        "--oracle",
        action="append",
        default=None,
        choices=sorted(ORACLES),
        help="run only this oracle (repeatable; default: all)",
    )
    diff.add_argument(
        "--seed", type=int, default=0, help="base seed for the replayed inputs"
    )
    diff.add_argument(
        "--report",
        type=str,
        default=None,
        metavar="FILE",
        help="also write the structured JSON report here",
    )
    diff.add_argument(
        "--json", action="store_true", help="print the JSON report to stdout"
    )

    baseline = sub.add_parser("baseline", help="maintain golden baselines")
    baseline_sub = baseline.add_subparsers(dest="baseline_command", required=True)
    regen = baseline_sub.add_parser(
        "regen",
        help="re-run the experiments and rewrite the baseline files "
        "(preserves each file's operating point, tolerance and trends)",
    )
    regen.add_argument("--baseline", required=True, metavar="DIR")
    regen.add_argument(
        "--only", action="append", default=None, metavar="EXPERIMENT"
    )
    regen.add_argument("--jobs", type=int, default=1)
    return parser


def _emit(report, args) -> int:
    payload = report.to_payload()
    if args.report:
        write_report(payload, args.report)
        print(f"report written to {args.report}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(report.render_text())
    return 0 if report.passed else 1


def _cmd_gate(args) -> int:
    baselines = load_baseline_dir(args.baseline, only=args.only)
    report = run_gates(
        baselines,
        baseline_dir=args.baseline,
        scale=args.scale,
        seeds=_parse_seeds(args.seeds),
        jobs=args.jobs,
    )
    return _emit(report, args)


def _cmd_diff(args) -> int:
    report = run_oracles(args.oracle, seed=args.seed)
    return _emit(report, args)


def _cmd_baseline_regen(args) -> int:
    written = regen_baselines(args.baseline, only=args.only, jobs=args.jobs)
    for path in written:
        print(f"wrote {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "gate":
            return _cmd_gate(args)
        if args.command == "diff":
            return _cmd_diff(args)
        return _cmd_baseline_regen(args)
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

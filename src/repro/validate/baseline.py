"""Schema-versioned golden baselines: per-figure metric summaries.

A baseline file freezes, for one registered experiment at one (scale,
seeds, kwargs) operating point, every numeric leaf of the experiment's
``data`` dict — flattened to ``series.rost[1]``-style paths — together
with its across-seed summary (mean, Student-t 95% CI, percentile-
bootstrap 95% CI, and the raw per-seed values).  The gate engine
(:mod:`repro.validate.gate`) re-runs the experiment and compares against
these summaries; ``trends`` additionally declare the paper's qualitative
orderings (e.g. ROST's disruptions below longest-first's at every
network size) that must keep holding whatever the absolute numbers do.

Baselines are committed under ``tests/golden/baselines/`` and
regenerated — after an *intentional* behavior change — with::

    REPRO_REGEN_BASELINES=1 PYTHONPATH=src python -m pytest tests/test_validate_gate.py
    # or directly:
    python -m repro.validate baseline regen --baseline tests/golden/baselines
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ValidationError
from ..metrics.stats import bootstrap_ci_95, mean_and_ci

#: Version of the baseline file shape (bump on incompatible change).
BASELINE_SCHEMA_VERSION = 1

#: Set to regenerate committed baselines instead of gating against them
#: (mirrors the golden-trace workflow's REPRO_REGEN_GOLDEN knob).
ENV_REGEN_BASELINES = "REPRO_REGEN_BASELINES"


def flatten_numeric(data, prefix: str = "") -> Dict[str, float]:
    """Flatten every numeric leaf of ``data`` to ``path -> float``.

    Paths follow the :func:`repro.store.cli.iter_report_diff` convention
    (dict keys joined with ``.``, list indices as ``[i]``) so gate
    failures and store diffs read the same.  Booleans and non-numeric
    leaves are skipped — gates quantify metrics, not flags.
    """
    leaves: Dict[str, float] = {}
    if isinstance(data, dict):
        for key in sorted(data, key=str):
            where = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(flatten_numeric(data[key], where))
    elif isinstance(data, (list, tuple)):
        for index, item in enumerate(data):
            leaves.update(flatten_numeric(item, f"{prefix}[{index}]"))
    elif isinstance(data, (int, float)) and not isinstance(data, bool):
        leaves[prefix] = float(data)
    return leaves


@dataclass(frozen=True)
class Tolerance:
    """Declared per-baseline comparison tolerances.

    ``rtol``/``atol`` bound the paired per-seed comparison (gate run at
    the baseline's own seeds: values must reproduce near-exactly);
    ``ci_scale`` additionally widens the unpaired comparison (gate run
    at different seeds) by that multiple of the two CI half-widths.
    """

    rtol: float = 0.05
    atol: float = 1e-9
    ci_scale: float = 1.0

    def to_payload(self) -> Dict[str, float]:
        return {"rtol": self.rtol, "atol": self.atol, "ci_scale": self.ci_scale}

    @classmethod
    def from_payload(cls, payload: Dict[str, float]) -> "Tolerance":
        return cls(
            rtol=float(payload.get("rtol", cls.rtol)),
            atol=float(payload.get("atol", cls.atol)),
            ci_scale=float(payload.get("ci_scale", cls.ci_scale)),
        )


@dataclass(frozen=True)
class TrendSpec:
    """One qualitative ordering that must hold on seed-averaged values.

    ``kind == "series_order"``: the experiment's ``data["series"]`` maps
    protocol names to per-size value lists; require
    ``mean(series[lower][i]) <= mean(series[upper][i]) * (1 + rel_margin)
    + abs_margin`` at every index ``i``.

    ``kind == "path_order"``: ``lower``/``upper`` are exact flattened
    metric paths; same inequality on their seed means.
    """

    name: str
    kind: str
    lower: str
    upper: str
    abs_margin: float = 0.0
    rel_margin: float = 0.0

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "lower": self.lower,
            "upper": self.upper,
            "abs_margin": self.abs_margin,
            "rel_margin": self.rel_margin,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "TrendSpec":
        kind = payload.get("kind")
        if kind not in ("series_order", "path_order"):
            raise ValidationError(f"unknown trend kind {kind!r}")
        return cls(
            name=str(payload["name"]),
            kind=str(kind),
            lower=str(payload["lower"]),
            upper=str(payload["upper"]),
            abs_margin=float(payload.get("abs_margin", 0.0)),
            rel_margin=float(payload.get("rel_margin", 0.0)),
        )


@dataclass(frozen=True)
class MetricBaseline:
    """Across-seed summary of one flattened metric path."""

    mean: float
    ci95: float
    bootstrap_lo: float
    bootstrap_hi: float
    values: Tuple[float, ...]

    def to_payload(self) -> Dict[str, object]:
        return {
            "mean": self.mean,
            "ci95": self.ci95,
            "bootstrap_ci95": [self.bootstrap_lo, self.bootstrap_hi],
            "n": len(self.values),
            "values": list(self.values),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "MetricBaseline":
        lo, hi = payload.get("bootstrap_ci95", (math.nan, math.nan))
        return cls(
            mean=float(payload["mean"]),
            ci95=float(payload["ci95"]),
            bootstrap_lo=float(lo),
            bootstrap_hi=float(hi),
            values=tuple(float(v) for v in payload.get("values", ())),
        )

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "MetricBaseline":
        mean, ci = mean_and_ci(values)
        lo, hi = bootstrap_ci_95(values)
        return cls(
            mean=mean, ci95=ci, bootstrap_lo=lo, bootstrap_hi=hi,
            values=tuple(float(v) for v in values),
        )


@dataclass
class Baseline:
    """One committed golden baseline: operating point + metric summaries."""

    experiment_id: str
    scale: float
    seeds: List[int]
    kwargs: Dict[str, object] = field(default_factory=dict)
    tolerance: Tolerance = field(default_factory=Tolerance)
    trends: List[TrendSpec] = field(default_factory=list)
    metrics: Dict[str, MetricBaseline] = field(default_factory=dict)
    #: File the baseline was loaded from (not serialized).
    source_path: Optional[str] = None

    def to_payload(self) -> Dict[str, object]:
        return {
            "schema_version": BASELINE_SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
            "scale": self.scale,
            "seeds": list(self.seeds),
            "kwargs": dict(self.kwargs),
            "tolerance": self.tolerance.to_payload(),
            "trends": [t.to_payload() for t in self.trends],
            "metrics": {
                path: self.metrics[path].to_payload()
                for path in sorted(self.metrics)
            },
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, object], source_path: Optional[str] = None
    ) -> "Baseline":
        version = payload.get("schema_version")
        if version != BASELINE_SCHEMA_VERSION:
            raise ValidationError(
                f"baseline schema version {version!r} is incompatible with "
                f"this release (expected {BASELINE_SCHEMA_VERSION}); "
                f"regenerate with ${ENV_REGEN_BASELINES}=1"
                + (f" [{source_path}]" if source_path else "")
            )
        try:
            return cls(
                experiment_id=str(payload["experiment_id"]),
                scale=float(payload["scale"]),
                seeds=[int(s) for s in payload["seeds"]],
                kwargs=dict(payload.get("kwargs", {})),
                tolerance=Tolerance.from_payload(payload.get("tolerance", {})),
                trends=[
                    TrendSpec.from_payload(t) for t in payload.get("trends", [])
                ],
                metrics={
                    str(path): MetricBaseline.from_payload(summary)
                    for path, summary in payload.get("metrics", {}).items()
                },
                source_path=source_path,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(
                f"malformed baseline file"
                + (f" {source_path}" if source_path else "")
                + f": {exc!r}"
            ) from exc


def collect_samples(
    experiment_id: str,
    scale: float,
    seeds: Sequence[int],
    kwargs: Optional[Dict[str, object]] = None,
    jobs: int = 1,
) -> List[Dict[str, float]]:
    """Run the experiment once per seed; return flattened numeric leaves.

    Fans out through :func:`repro.experiments.pool.run_jobs` — i.e. the
    ``execute_job`` chokepoint — so gate/baseline runs compose with the
    durable run store, observability capture and worker-process sharing
    exactly like any other sweep.
    """
    from ..experiments.pool import ExperimentJob, run_jobs

    batch = [
        ExperimentJob.make(
            experiment_id, scale=scale, seed=seed, **(kwargs or {})
        )
        for seed in seeds
    ]
    results = run_jobs(batch, parallel_jobs=jobs)
    return [flatten_numeric(result.data) for result in results]


def summarize_samples(
    samples: Sequence[Dict[str, float]],
) -> Dict[str, MetricBaseline]:
    """Across-seed summaries for the union of all sampled metric paths.

    A path missing from one seed's report (ragged data) contributes NaN,
    which the NaN-aware comparisons then surface instead of hiding.
    """
    paths = sorted(set().union(*samples)) if samples else []
    return {
        path: MetricBaseline.from_values(
            [sample.get(path, math.nan) for sample in samples]
        )
        for path in paths
    }


def build_baseline(
    experiment_id: str,
    scale: float,
    seeds: Sequence[int],
    kwargs: Optional[Dict[str, object]] = None,
    tolerance: Optional[Tolerance] = None,
    trends: Sequence[TrendSpec] = (),
    jobs: int = 1,
) -> Baseline:
    """Run the experiment over ``seeds`` and summarize it into a baseline."""
    samples = collect_samples(experiment_id, scale, seeds, kwargs, jobs=jobs)
    return Baseline(
        experiment_id=experiment_id,
        scale=scale,
        seeds=list(seeds),
        kwargs=dict(kwargs or {}),
        tolerance=tolerance or Tolerance(),
        trends=list(trends),
        metrics=summarize_samples(samples),
    )


def save_baseline(baseline: Baseline, path: str) -> None:
    """Atomically write ``baseline`` as indented JSON."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".repro-baseline-")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(baseline.to_payload(), handle, indent=2)
            handle.write("\n")
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)


def load_baseline(path: str) -> Baseline:
    if not os.path.isfile(path):
        raise ValidationError(f"baseline file does not exist: {path}")
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"baseline {path} is not valid JSON: {exc}") from exc
    return Baseline.from_payload(payload, source_path=path)


def load_baseline_dir(
    directory: str, only: Optional[Sequence[str]] = None
) -> List[Baseline]:
    """Load every ``*.json`` baseline in ``directory`` (sorted by name)."""
    if not os.path.isdir(directory):
        raise ValidationError(f"baseline directory does not exist: {directory}")
    names = sorted(n for n in os.listdir(directory) if n.endswith(".json"))
    baselines = [load_baseline(os.path.join(directory, n)) for n in names]
    if only:
        wanted = set(only)
        baselines = [b for b in baselines if b.experiment_id in wanted]
        missing = wanted - {b.experiment_id for b in baselines}
        if missing:
            raise ValidationError(
                f"no baseline in {directory} for: {sorted(missing)}"
            )
    if not baselines:
        raise ValidationError(f"no baseline files in {directory}")
    return baselines


def _protocol_pair_trends(lower: str, upper: str) -> List[TrendSpec]:
    return [
        TrendSpec(
            name=f"{lower}-beats-{upper}",
            kind="series_order",
            lower=lower,
            upper=upper,
        )
    ]


def _multitree_trends() -> List[TrendSpec]:
    """The K-tree resilience claim: blackout rate decreasing in K.

    Adjacent steps are non-strict with a noise margin (K >= 2 blackout
    rates sit near zero at smoke scale, so exact ordering between e.g.
    K4 and K8 is not meaningful), while the end-to-end K8-vs-K1 step is
    strict: a negative ``abs_margin`` demands a real gap, so a planted
    blackout undercount (all rates collapse to zero) trips the trend
    even before the metric tolerances do.
    """
    path = "summary.crash.rost.K{k}.blackout_rate"
    trends = [
        TrendSpec(
            name=f"crash-blackout-K{hi}-le-K{lo}",
            kind="path_order",
            lower=path.format(k=hi),
            upper=path.format(k=lo),
            abs_margin=1e-3,
            rel_margin=0.10,
        )
        for lo, hi in ((1, 2), (2, 4), (4, 8))
    ]
    trends.append(
        TrendSpec(
            name="crash-blackout-K8-strictly-below-K1",
            kind="path_order",
            lower=path.format(k=8),
            upper=path.format(k=1),
            abs_margin=-5e-3,
        )
    )
    return trends


#: The committed smoke-scale operating points (5 seeds each).  Reduced
#: size axes keep one full regen + gate cycle under a minute while every
#: protocol still shows non-degenerate metrics at scale 0.05.
DEFAULT_SPECS: Dict[str, Dict[str, object]] = {
    "fig04": {
        "scale": 0.05,
        "seeds": [1, 2, 3, 4, 5],
        "kwargs": {"sizes": [2000, 5000]},
        "trends": _protocol_pair_trends("rost", "longest-first"),
    },
    "fig07": {
        "scale": 0.05,
        "seeds": [1, 2, 3, 4, 5],
        "kwargs": {"sizes": [2000, 5000]},
        "trends": _protocol_pair_trends("rost", "longest-first"),
    },
    "fig08": {
        "scale": 0.05,
        "seeds": [1, 2, 3, 4, 5],
        "kwargs": {"sizes": [2000, 5000]},
        "trends": _protocol_pair_trends("rost", "longest-first"),
    },
    "fig14": {
        "scale": 0.05,
        "seeds": [1, 2, 3, 4, 5],
        "kwargs": {"population": 2000, "replicas": 2},
        # The paper's combined-system claim: ROST+CER starves less than
        # MinDepth+SingleSource at every recovery-group size.
        "trends": [
            TrendSpec(
                name=f"rost-cer-beats-mindepth-ss-k{k}",
                kind="path_order",
                lower=f"{k}.rost_cer[0]",
                upper=f"{k}.mindepth_ss[0]",
            )
            for k in (1, 2, 3)
        ],
    },
    "multitree_resilience": {
        "scale": 0.05,
        "seeds": [1, 2, 3, 4, 5],
        "kwargs": {},
        "trends": _multitree_trends(),
    },
}


def default_baseline_specs() -> Dict[str, Dict[str, object]]:
    """A deep-enough copy of :data:`DEFAULT_SPECS` callers may mutate."""
    return {
        experiment_id: {
            "scale": spec["scale"],
            "seeds": list(spec["seeds"]),
            "kwargs": dict(spec["kwargs"]),
            "trends": list(spec["trends"]),
        }
        for experiment_id, spec in DEFAULT_SPECS.items()
    }


def _baseline_path(directory: str, experiment_id: str) -> str:
    """Where ``experiment_id``'s baseline lives in ``directory``.

    Baselines are matched by their ``experiment_id`` payload field, not
    by filename (``multitree.json`` holds ``multitree_resilience``), so
    regeneration scans existing files first and only falls back to the
    conventional ``<experiment_id>.json`` name for brand-new baselines.
    """
    fallback = os.path.join(directory, f"{experiment_id}.json")
    if not os.path.isdir(directory):
        return fallback
    for name in sorted(n for n in os.listdir(directory) if n.endswith(".json")):
        path = os.path.join(directory, name)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(payload, dict) and payload.get("experiment_id") == experiment_id:
            return path
    return fallback


def regen_baselines(
    directory: str,
    only: Optional[Sequence[str]] = None,
    jobs: int = 1,
) -> List[str]:
    """(Re)generate baseline files in ``directory``; returns written paths.

    An existing file's operating point (scale/seeds/kwargs), tolerance
    and trend declarations are preserved — only the metric summaries are
    refreshed.  Experiments without an existing file fall back to
    :data:`DEFAULT_SPECS`.
    """
    specs = default_baseline_specs()
    ids = list(only) if only else sorted(specs)
    written: List[str] = []
    for experiment_id in ids:
        path = _baseline_path(directory, experiment_id)
        tolerance = None
        trends: Sequence[TrendSpec] = ()
        if os.path.isfile(path):
            prior = load_baseline(path)
            scale, seeds, kwargs = prior.scale, prior.seeds, prior.kwargs
            tolerance, trends = prior.tolerance, prior.trends
        elif experiment_id in specs:
            spec = specs[experiment_id]
            scale, seeds, kwargs = spec["scale"], spec["seeds"], spec["kwargs"]
            trends = spec["trends"]
        else:
            raise ValidationError(
                f"no existing baseline or default spec for {experiment_id!r}"
            )
        baseline = build_baseline(
            experiment_id,
            scale=scale,
            seeds=seeds,
            kwargs=kwargs,
            tolerance=tolerance,
            trends=trends,
            jobs=jobs,
        )
        save_baseline(baseline, path)
        written.append(path)
    return written

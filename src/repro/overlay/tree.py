"""The multicast tree: a mechanical structure with enforced invariants.

Responsibilities:

* maintain parent/child links, per-node ``layer`` numbers and ``attached``
  flags (attached = reachable from the root) under attach, detach,
  departure and ROST-switch operations;
* enforce out-degree caps and reject structurally invalid operations;
* notify listeners of position changes (used by the centralized
  bandwidth-/time-ordered protocols to maintain their per-layer indices).

Policy — who attaches where, who is evicted, who switches — lives in
:mod:`repro.protocols`.  Every mutating method is O(size of the moved
subtree) or better.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterator, List

from ..errors import TreeError
from .node import OverlayNode

PositionListener = Callable[[OverlayNode], None]


class MulticastTree:
    """A rooted overlay multicast tree plus detached (rejoining) subtrees.

    Members are registered in :attr:`members` whether or not they are
    currently attached; detached members form forests whose roots have
    ``parent is None`` and ``attached is False``.
    """

    def __init__(self, root: OverlayNode):
        if not root.is_root:
            raise TreeError("tree root must be constructed with is_root=True")
        self.root = root
        root.attached = True
        root.layer = 0
        self.members: Dict[int, OverlayNode] = {root.member_id: root}
        #: Fired for every node that gains a (new) attached position.
        self.position_listeners: List[PositionListener] = []
        #: Fired for every node that loses its attached position.
        self.detach_listeners: List[PositionListener] = []
        self._attached_count = 1
        #: Structural-mutation counter, shared with every member node as a
        #: one-element list cell.  Any operation that can change *some*
        #: node's root path bumps it; per-node root-path caches
        #: (recovery.mlc) compare their snapshot against the cell to
        #: revalidate in O(1) without per-node invalidation walks.
        self._epoch_cell: List[int] = [0]
        root._epoch_cell = self._epoch_cell

    # -- registration ---------------------------------------------------------

    def add_member(self, node: OverlayNode) -> None:
        """Register a member (initially detached, position to be assigned)."""
        if node.member_id in self.members:
            raise TreeError(f"duplicate member id {node.member_id}")
        if node.is_root:
            raise TreeError("a tree has exactly one root")
        node.parent = None
        node.attached = False
        node.layer = -1
        node._epoch_cell = self._epoch_cell
        self.members[node.member_id] = node

    @property
    def num_members(self) -> int:
        return len(self.members)

    @property
    def num_attached(self) -> int:
        return self._attached_count

    def attached_nodes(self) -> Iterator[OverlayNode]:
        """BFS iterator over the attached component, root first."""
        queue = deque([self.root])
        while queue:
            node = queue.popleft()
            yield node
            queue.extend(node.children)

    def total_spare_capacity(self) -> int:
        """Unused child slots across the attached component."""
        return sum(n.spare_degree for n in self.attached_nodes())

    # -- structural operations ---------------------------------------------------

    def attach(self, child: OverlayNode, parent: OverlayNode) -> None:
        """Link ``child`` (a detached subtree root) under ``parent``.

        The whole subtree of ``child`` becomes attached and its layers are
        set from the new position.
        """
        self._require_member(child)
        self._require_member(parent)
        if child.parent is not None:
            raise TreeError(f"member {child.member_id} already has a parent")
        if child.attached:
            raise TreeError(f"member {child.member_id} is already attached")
        if not parent.attached:
            raise TreeError(
                f"cannot attach under detached member {parent.member_id}"
            )
        if parent.spare_degree <= 0:
            raise TreeError(
                f"member {parent.member_id} has no spare out-degree "
                f"(cap {parent.out_degree_cap})"
            )
        if child is parent:
            raise TreeError("cannot attach a node to itself")
        self._epoch_cell[0] += 1
        child.parent = parent
        parent.children.append(child)
        self._mark_attached(child, parent.layer + 1)
        # The parent's spare capacity changed; listeners keeping capacity
        # indices need to re-examine it.
        self._notify_position(parent)

    def detach(self, node: OverlayNode) -> None:
        """Unlink ``node`` from its parent; its whole subtree goes detached."""
        self._require_member(node)
        if node.is_root:
            raise TreeError("cannot detach the root")
        former_parent = node.parent
        if former_parent is not None:
            self._epoch_cell[0] += 1
            former_parent.children.remove(node)
            node.parent = None
        if node.attached:
            self._mark_detached(node)
            if former_parent is not None and former_parent.attached:
                # Spare capacity freed up; re-index the former parent.
                self._notify_position(former_parent)

    def pop_children(self, node: OverlayNode) -> List[OverlayNode]:
        """Unlink and return all children of a *detached* node.

        Each returned child becomes the root of its own detached subtree
        (used when dismantling a departed member's position).
        """
        self._require_member(node)
        if node.attached:
            raise TreeError(
                f"pop_children requires a detached node, {node.member_id} is attached"
            )
        children = node.children
        if children:
            self._epoch_cell[0] += 1
        node.children = []
        for child in children:
            child.parent = None
        return children

    def remove_departed(self, node: OverlayNode) -> List[OverlayNode]:
        """Handle the departure of ``node``: unregister it and return its
        orphaned children (each now a detached subtree root).

        Works both for attached members and for members inside a detached
        (rejoining) subtree.
        """
        self._require_member(node)
        if node.is_root:
            raise TreeError("the root never departs")
        self.detach(node)
        orphans = self.pop_children(node)
        del self.members[node.member_id]
        return orphans

    def swap_with_parent(
        self,
        child: OverlayNode,
        overflow_priority: Callable[[OverlayNode], float],
    ) -> List[OverlayNode]:
        """Exchange the positions of ``child`` and its parent (ROST, Fig. 2).

        After the swap the former parent ``p`` holds ``child``'s former
        children; any of them exceeding ``p``'s out-degree cap overflow —
        highest ``overflow_priority`` first — back under ``child`` while it
        has spare slots.  Children that fit nowhere (possible only when the
        bandwidth guard is disabled) are detached and returned for rejoin.
        """
        self._require_member(child)
        parent = child.parent
        if parent is None or not child.attached:
            raise TreeError(f"member {child.member_id} has no attached parent")
        if parent.is_root:
            raise TreeError("cannot swap with the root")
        grandparent = parent.parent
        if grandparent is None:
            raise TreeError(f"parent {parent.member_id} has no parent")

        former_children = child.children
        former_siblings = [c for c in parent.children if c is not child]
        if len(former_siblings) + 1 > child.out_degree_cap:
            raise TreeError(
                f"member {child.member_id} (cap {child.out_degree_cap}) cannot "
                f"adopt {len(former_siblings)} siblings plus its former parent"
            )

        # Relink: child takes parent's slot under the grandparent.
        self._epoch_cell[0] += 1
        grandparent.children[grandparent.children.index(parent)] = child
        child.parent = grandparent
        child.children = former_siblings + [parent]
        for sibling in former_siblings:
            sibling.parent = child
        parent.parent = child
        parent.children = former_children
        for grandchild in former_children:
            grandchild.parent = parent

        # Only the two principals change depth; both stay attached.
        child.layer, parent.layer = parent.layer, parent.layer + 1
        self._notify_position(child)
        self._notify_position(parent)

        # Resolve parent's overflow (it inherited child's former children).
        needs_rejoin: List[OverlayNode] = []
        if len(parent.children) > parent.out_degree_cap:
            overflow = sorted(
                parent.children, key=overflow_priority, reverse=True
            )
            for candidate in overflow:
                if len(parent.children) <= parent.out_degree_cap:
                    break
                parent.children.remove(candidate)
                if child.spare_degree > 0:
                    candidate.parent = child
                    child.children.append(candidate)
                    self._shift_layers(candidate, -1)
                else:
                    candidate.parent = None
                    self._mark_detached(candidate)
                    needs_rejoin.append(candidate)
            # Overflow relinked nodes after the initial bump; invalidate
            # anything cached by a position listener in between.
            self._epoch_cell[0] += 1
        return needs_rejoin

    def promote_to_grandparent(self, node: OverlayNode) -> None:
        """Move ``node`` (with its subtree) up into a spare slot of its
        grandparent — a single parent change that shortens every path in
        the subtree by one hop and demotes nobody.
        """
        self._require_member(node)
        parent = node.parent
        if parent is None or not node.attached:
            raise TreeError(f"member {node.member_id} has no attached parent")
        grandparent = parent.parent
        if grandparent is None:
            raise TreeError(f"parent {parent.member_id} has no parent")
        if grandparent.spare_degree <= 0:
            raise TreeError(
                f"member {grandparent.member_id} has no spare out-degree"
            )
        self._epoch_cell[0] += 1
        parent.children.remove(node)
        node.parent = grandparent
        grandparent.children.append(node)
        self._shift_layers(node, -1)
        self._notify_position(parent)
        self._notify_position(grandparent)

    # -- consistency ------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`TreeError` if any structural invariant is violated.

        Intended for tests and debugging; O(n).
        """
        seen = set()
        queue = deque([self.root])
        attached_count = 0
        while queue:
            node = queue.popleft()
            if node.member_id in seen:
                raise TreeError(f"cycle through member {node.member_id}")
            seen.add(node.member_id)
            if self.members.get(node.member_id) is not node:
                raise TreeError(f"member {node.member_id} not registered")
            if not node.attached:
                raise TreeError(f"member {node.member_id} reachable but detached")
            attached_count += 1
            if len(node.children) > node.out_degree_cap:
                raise TreeError(
                    f"member {node.member_id} exceeds out-degree cap: "
                    f"{len(node.children)} > {node.out_degree_cap}"
                )
            for chd in node.children:
                if chd.parent is not node:
                    raise TreeError(
                        f"broken backlink: {chd.member_id} -> {node.member_id}"
                    )
                if chd.layer != node.layer + 1:
                    raise TreeError(
                        f"layer mismatch: {chd.member_id} has layer {chd.layer}, "
                        f"parent layer {node.layer}"
                    )
                queue.append(chd)
        if attached_count != self._attached_count:
            raise TreeError(
                f"attached-count drift: counter {self._attached_count}, "
                f"actual {attached_count}"
            )
        for member_id, node in self.members.items():
            if node.attached and member_id not in seen:
                raise TreeError(f"member {member_id} attached but unreachable")
            if not node.attached:
                if node.layer != -1:
                    raise TreeError(
                        f"detached member {member_id} has layer {node.layer}"
                    )
                top = node
                hops = 0
                while top.parent is not None:
                    top = top.parent
                    hops += 1
                    if hops > len(self.members):
                        raise TreeError(f"cycle above detached member {member_id}")
                if top.attached:
                    raise TreeError(
                        f"detached member {member_id} hangs under attached "
                        f"member {top.member_id}"
                    )

    # -- internals ----------------------------------------------------------------

    def _require_member(self, node: OverlayNode) -> None:
        if self.members.get(node.member_id) is not node:
            raise TreeError(f"member {node.member_id} is not in this tree")

    def _mark_attached(self, subtree_root: OverlayNode, layer: int) -> None:
        queue = deque([(subtree_root, layer)])
        while queue:
            node, node_layer = queue.popleft()
            node.attached = True
            node.ever_attached = True
            node.layer = node_layer
            self._attached_count += 1
            self._notify_position(node)
            queue.extend((c, node_layer + 1) for c in node.children)

    def _mark_detached(self, subtree_root: OverlayNode) -> None:
        queue = deque([subtree_root])
        while queue:
            node = queue.popleft()
            node.attached = False
            node.layer = -1
            self._attached_count -= 1
            for listener in self.detach_listeners:
                listener(node)
            queue.extend(node.children)

    def _shift_layers(self, subtree_root: OverlayNode, delta: int) -> None:
        queue = deque([subtree_root])
        while queue:
            node = queue.popleft()
            node.layer += delta
            self._notify_position(node)
            queue.extend(node.children)

    def _notify_position(self, node: OverlayNode) -> None:
        for listener in self.position_listeners:
            listener(node)

"""Per-member overlay state."""

from __future__ import annotations

import math
from typing import List, Optional

from ..errors import TreeError


class OverlayNode:
    """One multicast member's position and state in the overlay tree.

    The node records both *structural* state (parent/children/layer) and
    the per-member statistics the paper's metrics are computed from
    (disruptions experienced, reconnections performed).
    """

    __slots__ = (
        "member_id",
        "underlay_node",
        "bandwidth",
        "out_degree_cap",
        "join_time",
        "is_root",
        "parent",
        "children",
        "layer",
        "attached",
        "locked_until",
        "rejoin_hint",
        "ever_attached",
        "disruptions",
        "reconnections",
        "optimization_reconnections",
        "claimed_bandwidth",
        "claimed_join_time",
        "_uplink_parent",
        "_uplink_delay",
        "_path_cache",
        "_path_epoch",
        "_epoch_cell",
    )

    def __init__(
        self,
        member_id: int,
        underlay_node: int,
        bandwidth: float,
        out_degree_cap: int,
        join_time: float,
        is_root: bool = False,
    ):
        if out_degree_cap < 0:
            raise TreeError(f"negative out-degree cap {out_degree_cap}")
        self.member_id = member_id
        self.underlay_node = underlay_node
        self.bandwidth = bandwidth
        self.out_degree_cap = out_degree_cap
        self.join_time = join_time
        self.is_root = is_root
        self.parent: Optional[OverlayNode] = None
        self.children: List[OverlayNode] = []
        self.layer = 0 if is_root else -1
        self.attached = is_root
        #: Virtual time until which this node participates in a switching or
        #: recovery operation and refuses new locks (Section 3.3).
        self.locked_until = -math.inf
        #: The failed parent's own parent, recorded at failure time: the
        #: natural first rejoin contact (grandparent succession).
        self.rejoin_hint: Optional[OverlayNode] = None
        #: True once the member has held a tree position at least once.
        self.ever_attached = is_root
        self.disruptions = 0
        #: All parent changes after the initial join.
        self.reconnections = 0
        #: Parent changes caused by the tree-optimization mechanism only
        #: (the paper's "protocol overhead" metric, Fig. 10).
        self.optimization_reconnections = 0
        #: What the node *reports* (equals the truth unless the node cheats;
        #: see repro.protocols.rost.referees).
        self.claimed_bandwidth = bandwidth
        self.claimed_join_time = join_time
        #: Memoized uplink delay (parent identity is the validity check);
        #: only consulted when the oracle reports ``stable_delays``.
        self._uplink_parent: Optional[OverlayNode] = None
        self._uplink_delay = 0.0
        #: Root-path cache, invalidated by the owning tree's epoch counter
        #: (bumped on any structural mutation; see overlay.tree).
        self._path_cache: Optional[tuple] = None
        self._path_epoch = -1
        self._epoch_cell: Optional[list] = None

    # -- derived properties ---------------------------------------------------

    @property
    def spare_degree(self) -> int:
        """Unused child slots."""
        return self.out_degree_cap - len(self.children)

    @property
    def is_free_rider(self) -> bool:
        return self.out_degree_cap == 0

    def age(self, now: float) -> float:
        """Seconds since this member joined the overlay."""
        return now - self.join_time

    def btp(self, now: float) -> float:
        """Bandwidth-Time Product at virtual time ``now`` (Section 3.2).

        The root is pre-assigned an infinite BTP so it always stays at the
        top of the tree.
        """
        if self.is_root:
            return math.inf
        return self.bandwidth * self.age(now)

    def claimed_btp(self, now: float) -> float:
        """BTP as computable from the node's *claims* (cheatable)."""
        if self.is_root:
            return math.inf
        return self.claimed_bandwidth * (now - self.claimed_join_time)

    # -- locking (Section 3.3) --------------------------------------------------

    def is_locked(self, now: float) -> bool:
        return now < self.locked_until

    def lock(self, until: float) -> None:
        """Extend this node's lock to at least ``until``."""
        if until > self.locked_until:
            self.locked_until = until

    # -- tree-walk helpers ------------------------------------------------------

    def ancestors(self) -> List["OverlayNode"]:
        """Path from this node's parent up to (and including) the tree root
        of its component."""
        path = []
        node = self.parent
        while node is not None:
            path.append(node)
            node = node.parent
        return path

    def descendants(self) -> List["OverlayNode"]:
        """All nodes strictly below this one, in BFS order."""
        result: List[OverlayNode] = []
        frontier = list(self.children)
        while frontier:
            node = frontier.pop()
            result.append(node)
            frontier.extend(node.children)
        return result

    def subtree_size(self) -> int:
        """Number of nodes in this node's subtree, including itself."""
        return 1 + len(self.descendants())

    def depth_below(self, ancestor: "OverlayNode") -> int:
        """Hops from ``ancestor`` down to this node; raises if unrelated."""
        hops = 0
        node: Optional[OverlayNode] = self
        while node is not None:
            if node is ancestor:
                return hops
            node = node.parent
            hops += 1
        raise TreeError(
            f"node {ancestor.member_id} is not an ancestor of {self.member_id}"
        )

    def __repr__(self) -> str:
        return (
            f"OverlayNode(id={self.member_id}, bw={self.bandwidth:.2f}, "
            f"cap={self.out_degree_cap}, layer={self.layer}, "
            f"children={len(self.children)}, attached={self.attached})"
        )

"""ASCII rendering of (small) overlay trees.

For debugging and the examples: draws the attached component with one
line per member, showing bandwidth, age and subtree size.  Large trees
are elided below a depth/width budget rather than flooding the terminal.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .node import OverlayNode
from .tree import MulticastTree


def default_label(node: OverlayNode, now: float) -> str:
    if node.is_root:
        return f"root (cap {node.out_degree_cap})"
    return (
        f"#{node.member_id} bw={node.bandwidth:.1f} "
        f"age={max(0.0, now - node.join_time) / 60:.0f}m "
        f"desc={len(node.descendants())}"
    )


def render_tree(
    tree: MulticastTree,
    now: float = 0.0,
    max_depth: int = 6,
    max_children: int = 8,
    label: Optional[Callable[[OverlayNode, float], str]] = None,
) -> str:
    """Draw the attached component as indented ASCII art.

    ``max_depth`` truncates vertically and ``max_children`` horizontally;
    elided parts are summarised (``... and N more``) so the output stays
    readable for any tree size.
    """
    if label is None:
        label = default_label
    lines: List[str] = []

    def walk(node: OverlayNode, prefix: str, is_last: bool, depth: int) -> None:
        connector = "" if node.is_root else ("`-- " if is_last else "|-- ")
        lines.append(prefix + connector + label(node, now))
        if not node.children:
            return
        child_prefix = prefix if node.is_root else prefix + (
            "    " if is_last else "|   "
        )
        if depth >= max_depth:
            hidden = sum(1 + len(c.descendants()) for c in node.children)
            lines.append(child_prefix + f"`-- ... {hidden} member(s) below")
            return
        shown = node.children[:max_children]
        elided = len(node.children) - len(shown)
        for i, child in enumerate(shown):
            last = i == len(shown) - 1 and elided == 0
            walk(child, child_prefix, last, depth + 1)
        if elided:
            hidden = sum(
                1 + len(c.descendants()) for c in node.children[max_children:]
            )
            lines.append(child_prefix + f"`-- ... and {hidden} more member(s)")

    walk(tree.root, "", True, 0)
    return "\n".join(lines)

"""Partial-view membership service.

The paper assumes each member learns about a medium-sized subset (~100) of
other members through a bootstrap query plus periodic neighbour-information
gossip (Sections 3.3 and 4.1).  For simulation we model the *converged*
behaviour of such a gossip substrate: a query for ``k`` known members
returns ``k`` members sampled uniformly from the live population.  This is
the standard abstraction for peer-sampling services (uniform random
partial views) and is what both join-candidate selection and MLC-group
construction consume.

The service keeps O(1) registration/removal via the swap-pop idiom and
samples without replacement deterministically from a dedicated RNG stream.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from ..errors import ProtocolError
from ..sim.fastrand import BatchedIntegers
from .node import OverlayNode


class MembershipService:
    """Uniform peer sampling over the currently registered members."""

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        #: Draw-exact batched replacement for the scalar ``integers`` calls
        #: in the rejection loop (the hottest RNG path in a churn run).
        #: Falls back transparently when replication is unverified.
        self._batch = BatchedIntegers(rng)
        self._nodes: List[OverlayNode] = []
        self._index: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: OverlayNode) -> bool:
        return node.member_id in self._index

    def register(self, node: OverlayNode) -> None:
        """Add a member to the sampling population."""
        if node.member_id in self._index:
            raise ProtocolError(f"member {node.member_id} already registered")
        self._index[node.member_id] = len(self._nodes)
        self._nodes.append(node)

    def unregister(self, node: OverlayNode) -> None:
        """Remove a member (O(1) swap-pop)."""
        pos = self._index.pop(node.member_id, None)
        if pos is None:
            raise ProtocolError(f"member {node.member_id} not registered")
        last = self._nodes.pop()
        if last is not node:
            self._nodes[pos] = last
            self._index[last.member_id] = pos

    def sample(
        self,
        k: int,
        exclude: Iterable[OverlayNode] = (),
        attached_only: bool = True,
    ) -> List[OverlayNode]:
        """Up to ``k`` distinct members, uniformly at random.

        ``attached_only`` restricts the view to members currently holding a
        tree position (a detached, rejoining member is unreachable for data
        and should not be offered as a join candidate).  Returns fewer than
        ``k`` members if the eligible population is smaller.
        """
        if k < 0:
            raise ProtocolError(f"sample size must be >= 0, got {k}")
        excluded: Set[int] = {n.member_id for n in exclude}

        def eligible(node: OverlayNode) -> bool:
            if node.member_id in excluded:
                return False
            return node.attached or not attached_only

        population = len(self._nodes)
        if population == 0 or k == 0:
            return []
        # Fast path: sample indices and filter; fall back to a full filtered
        # pass when the eligible fraction is too small for rejection sampling.
        if k * 3 < population:
            picked: List[OverlayNode] = []
            seen: Set[int] = set()
            attempts = 0
            max_attempts = 8 * k + 32
            if self._batch.begin(population):
                # Batched draws: identical sequence to the scalar
                # ``integers`` loop below, ~3x cheaper per draw; ``end``
                # resyncs the generator to the exact scalar-path state.
                try:
                    while len(picked) < k and attempts < max_attempts:
                        attempts += 1
                        node = self._nodes[self._batch.next()]
                        if node.member_id in seen:
                            continue
                        seen.add(node.member_id)
                        if eligible(node):
                            picked.append(node)
                finally:
                    self._batch.end()
            else:
                while len(picked) < k and attempts < max_attempts:
                    attempts += 1
                    idx = int(self._rng.integers(0, population))
                    node = self._nodes[idx]
                    if node.member_id in seen:
                        continue
                    seen.add(node.member_id)
                    if eligible(node):
                        picked.append(node)
            if len(picked) == k:
                return picked
        candidates = [n for n in self._nodes if eligible(n)]
        if len(candidates) <= k:
            return candidates
        indices = self._rng.choice(len(candidates), size=k, replace=False)
        return [candidates[int(i)] for i in indices]

    def sample_for(
        self,
        node: OverlayNode,
        k: int,
        exclude: Iterable[OverlayNode] = (),
        attached_only: bool = True,
    ) -> List[OverlayNode]:
        """Members known to ``node`` specifically.

        The abstract service models a converged peer-sampling substrate,
        so every member sees the same uniform distribution; the gossip
        implementation (:class:`repro.overlay.gossip.GossipMembership`)
        overrides this with the member's actual view.
        """
        return self.sample(k, exclude=[node, *exclude], attached_only=attached_only)

    def random_member(
        self, exclude: Iterable[OverlayNode] = (), attached_only: bool = True
    ) -> Optional[OverlayNode]:
        """One uniformly random eligible member, or None."""
        picked = self.sample(1, exclude=exclude, attached_only=attached_only)
        return picked[0] if picked else None

"""Tree-shape analytics: the structural statistics behind the figures.

These are the quantities the paper reasons about qualitatively — how
deep the tree is, what occupies each layer, how much forwarding capacity
sits where, and how exposed members are to upstream failures.  They are
used by the examples and diagnostics, and exercised directly in the test
suite.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .node import OverlayNode
from .tree import MulticastTree


@dataclass(frozen=True)
class LayerStats:
    """Composition of one tree layer."""

    layer: int
    members: int
    capacity: int
    spare: int
    free_rider_fraction: float
    mean_bandwidth: float
    mean_age_s: float
    mean_descendants: float


@dataclass(frozen=True)
class TreeStats:
    """Whole-tree structural summary."""

    members: int
    depth: int
    mean_depth: float
    total_capacity: int
    total_spare: int
    free_rider_fraction: float
    #: Average number of ancestors per member = average exposure to
    #: upstream failures (each ancestor's departure disrupts the member).
    mean_exposure: float
    layers: List[LayerStats]


def layer_statistics(tree: MulticastTree, now: float) -> List[LayerStats]:
    """Per-layer composition of the attached component."""
    by_layer: Dict[int, List[OverlayNode]] = {}
    for node in tree.attached_nodes():
        if node.is_root:
            continue
        by_layer.setdefault(node.layer, []).append(node)
    stats = []
    for layer in sorted(by_layer):
        nodes = by_layer[layer]
        caps = np.array([n.out_degree_cap for n in nodes])
        stats.append(
            LayerStats(
                layer=layer,
                members=len(nodes),
                capacity=int(caps.sum()),
                spare=int(sum(n.spare_degree for n in nodes)),
                free_rider_fraction=float(np.mean(caps == 0)),
                mean_bandwidth=float(np.mean([n.bandwidth for n in nodes])),
                mean_age_s=float(np.mean([now - n.join_time for n in nodes])),
                mean_descendants=float(
                    np.mean([len(n.descendants()) for n in nodes])
                ),
            )
        )
    return stats


def tree_statistics(tree: MulticastTree, now: float) -> TreeStats:
    """Structural summary of the attached component."""
    members = [n for n in tree.attached_nodes() if not n.is_root]
    if not members:
        return TreeStats(0, 0, 0.0, 0, 0, 0.0, 0.0, [])
    depths = np.array([n.layer for n in members])
    caps = np.array([n.out_degree_cap for n in members])
    return TreeStats(
        members=len(members),
        depth=int(depths.max()),
        mean_depth=float(depths.mean()),
        total_capacity=int(caps.sum()),
        total_spare=int(sum(n.spare_degree for n in members)),
        free_rider_fraction=float(np.mean(caps == 0)),
        mean_exposure=float(depths.mean()),  # ancestors per member = depth
        layers=layer_statistics(tree, now),
    )


def depth_histogram(tree: MulticastTree) -> Counter:
    """``{layer: member count}`` over the attached component."""
    histogram: Counter = Counter()
    for node in tree.attached_nodes():
        histogram[node.layer] += 1
    return histogram


def failure_impact_distribution(tree: MulticastTree) -> List[int]:
    """Descendant counts per attached member: the damage each member's
    abrupt departure would cause right now (the quantity Fig. 4 sums over
    actual failures)."""
    return [
        len(node.descendants())
        for node in tree.attached_nodes()
        if not node.is_root
    ]


def btp_ordering_violations(tree: MulticastTree, now: float) -> int:
    """Number of parent-child edges where the child's true BTP exceeds the
    parent's — how far the tree currently is from the ROST fixed point
    (the root, with infinite BTP, never counts as a violation)."""
    violations = 0
    for node in tree.attached_nodes():
        parent = node.parent
        if parent is None or parent.is_root:
            continue
        if node.btp(now) > parent.btp(now):
            violations += 1
    return violations

"""A Cyclon-style gossip peer-sampling service.

The abstract :class:`~repro.overlay.membership.MembershipService` models a
*converged* peer-sampling substrate (uniform random partial views).  This
module implements the substrate itself: every member keeps a bounded view
of ``(member id, entry age)`` descriptors and periodically *shuffles* —
it contacts the entry it has known longest, sends a random half of its
view (with a fresh descriptor of itself) and merges the peer's reply,
preferring fresh entries and evicting the ones it sent.  Shuffling keeps
the knowledge graph connected, ages out departed members, and makes each
view converge toward a uniform sample of the live population — the
property the paper's join ("queries the existing members for information
about other participants") and MLC-group construction rely on.

The gossip service is API-compatible with the abstract one (``register``
/ ``unregister`` / ``sample``) and additionally answers per-member
queries (:meth:`sample_for`).  The churn driver can run on either
(``membership_mode="gossip"``); simulations at paper scale default to the
abstract service since per-member shuffle events dominate the event queue
long before they change any measured outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..errors import ProtocolError
from ..sim.engine import Simulator
from ..sim.process import PeriodicProcess
from .membership import MembershipService
from .node import OverlayNode


@dataclass
class ViewEntry:
    """A descriptor of one known peer."""

    member_id: int
    #: Shuffle rounds since the descriptor was created (Cyclon "age").
    age: int = 0


class GossipMembership(MembershipService):
    """Peer sampling backed by actual periodic view exchanges."""

    def __init__(
        self,
        rng: np.random.Generator,
        sim: Simulator,
        view_size: int = 20,
        shuffle_length: int = 8,
        shuffle_interval_s: float = 30.0,
    ):
        super().__init__(rng)
        if view_size < 2:
            raise ProtocolError(f"view_size must be >= 2, got {view_size}")
        if not 1 <= shuffle_length <= view_size:
            raise ProtocolError(
                f"shuffle_length must be in [1, view_size], got {shuffle_length}"
            )
        self._sim = sim
        self.view_size = view_size
        self.shuffle_length = shuffle_length
        self.shuffle_interval_s = shuffle_interval_s
        self._views: Dict[int, List[ViewEntry]] = {}
        self._processes: Dict[int, PeriodicProcess] = {}
        self.shuffles = 0
        self.failed_shuffles = 0

    # -- membership lifecycle ---------------------------------------------------

    def register(self, node: OverlayNode) -> None:
        super().register(node)
        view: List[ViewEntry] = []
        # Bootstrap: copy (a sample of) a random existing member's view,
        # plus the contact itself.
        contact = super().sample(1, exclude=[node], attached_only=False)
        if contact:
            contact_node = contact[0]
            donor_view = self._views.get(contact_node.member_id, [])
            take = min(len(donor_view), self.view_size - 1)
            if take:
                picks = self._rng_choice(len(donor_view), take)
                view.extend(
                    ViewEntry(donor_view[i].member_id, donor_view[i].age)
                    for i in picks
                )
            view.append(ViewEntry(contact_node.member_id, 0))
        self._views[node.member_id] = self._dedupe(view, exclude_id=node.member_id)
        process = PeriodicProcess(
            self._sim,
            self.shuffle_interval_s,
            lambda: self._shuffle(node),
        )
        process.start(
            initial_delay=float(self._rng.uniform(0.0, self.shuffle_interval_s))
        )
        self._processes[node.member_id] = process

    def unregister(self, node: OverlayNode) -> None:
        super().unregister(node)
        self._views.pop(node.member_id, None)
        process = self._processes.pop(node.member_id, None)
        if process is not None:
            process.stop()

    # -- the shuffle --------------------------------------------------------------

    def _shuffle(self, node: OverlayNode) -> None:
        view = self._views.get(node.member_id)
        if view is None:
            return
        for entry in view:
            entry.age += 1
        live = [e for e in view if e.member_id in self._index]
        if not live:
            # Knowledge lost (every known peer departed): re-bootstrap.
            contact = super().sample(1, exclude=[node], attached_only=False)
            self._views[node.member_id] = (
                [ViewEntry(contact[0].member_id, 0)] if contact else []
            )
            self.failed_shuffles += 1
            return
        # Contact the longest-known peer (most likely to be stale).
        target_entry = max(live, key=lambda e: e.age)
        target_view = self._views.get(target_entry.member_id)
        if target_view is None:
            view.remove(target_entry)
            self.failed_shuffles += 1
            return

        sent = self._select_subset(view, exclude_entry=target_entry)
        sent_payload = [ViewEntry(node.member_id, 0)] + [
            ViewEntry(e.member_id, e.age) for e in sent
        ]
        reply = self._select_subset(target_view, exclude_entry=None)
        reply_payload = [ViewEntry(e.member_id, e.age) for e in reply]

        self._merge(node.member_id, reply_payload, discardable=sent + [target_entry])
        self._merge(
            target_entry.member_id,
            sent_payload,
            discardable=reply,
        )
        self.shuffles += 1

    def _select_subset(
        self, view: List[ViewEntry], exclude_entry: Optional[ViewEntry]
    ) -> List[ViewEntry]:
        pool = [e for e in view if e is not exclude_entry]
        take = min(self.shuffle_length - 1, len(pool))
        if take <= 0:
            return []
        picks = self._rng_choice(len(pool), take)
        return [pool[i] for i in picks]

    def _merge(
        self,
        owner_id: int,
        incoming: List[ViewEntry],
        discardable: List[ViewEntry],
    ) -> None:
        view = self._views.get(owner_id)
        if view is None:
            return
        known = {e.member_id: e for e in view}
        for entry in incoming:
            if entry.member_id == owner_id:
                continue
            existing = known.get(entry.member_id)
            if existing is None:
                view.append(ViewEntry(entry.member_id, entry.age))
                known[entry.member_id] = view[-1]
            elif entry.age < existing.age:
                existing.age = entry.age
        # Trim back to the bound: first drop entries we just shipped out,
        # then the oldest.
        discard_ids = {e.member_id for e in discardable}
        while len(view) > self.view_size:
            for i, entry in enumerate(view):
                if entry.member_id in discard_ids:
                    view.pop(i)
                    discard_ids.discard(entry.member_id)
                    break
            else:
                view.remove(max(view, key=lambda e: e.age))

    def _dedupe(self, view: List[ViewEntry], exclude_id: int) -> List[ViewEntry]:
        seen = set()
        result = []
        for entry in view:
            if entry.member_id == exclude_id or entry.member_id in seen:
                continue
            seen.add(entry.member_id)
            result.append(entry)
        return result[: self.view_size]

    def _rng_choice(self, n: int, k: int) -> List[int]:
        if k >= n:
            return list(range(n))
        return [int(i) for i in self._rng.choice(n, size=k, replace=False)]

    # -- queries --------------------------------------------------------------------

    def view_of(self, node: OverlayNode) -> List[int]:
        """The member ids currently in ``node``'s view."""
        return [e.member_id for e in self._views.get(node.member_id, ())]

    def sample_for(
        self,
        node: OverlayNode,
        k: int,
        exclude: Iterable[OverlayNode] = (),
        attached_only: bool = True,
    ) -> List[OverlayNode]:
        """Sample from ``node``'s *own* view (live members only)."""
        excluded = {n.member_id for n in exclude}
        excluded.add(node.member_id)
        candidates = []
        for entry in self._views.get(node.member_id, ()):
            if entry.member_id in excluded:
                continue
            pos = self._index.get(entry.member_id)
            if pos is None:
                continue
            member = self._nodes[pos]
            if attached_only and not member.attached:
                continue
            candidates.append(member)
        if len(candidates) <= k:
            return candidates
        picks = self._rng_choice(len(candidates), k)
        return [candidates[i] for i in picks]

"""Overlay substrate: tree structure, node state, membership, messages.

The :class:`~repro.overlay.tree.MulticastTree` is a mechanical data
structure — it enforces capacity/linkage invariants and maintains layer
numbers, but contains no policy.  Parent selection, eviction, switching
and recovery policies live in :mod:`repro.protocols` and
:mod:`repro.recovery`.
"""

from .analysis import (
    LayerStats,
    TreeStats,
    btp_ordering_violations,
    depth_histogram,
    failure_impact_distribution,
    layer_statistics,
    tree_statistics,
)
from .membership import MembershipService
from .node import OverlayNode
from .tree import MulticastTree

__all__ = [
    "LayerStats",
    "MembershipService",
    "MulticastTree",
    "OverlayNode",
    "TreeStats",
    "btp_ordering_violations",
    "depth_histogram",
    "failure_impact_distribution",
    "layer_statistics",
    "tree_statistics",
]

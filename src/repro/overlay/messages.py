"""Protocol message types and a message accountant.

The simulator executes protocol operations at operation granularity (a
join is one event, not a packet exchange), but every operation is priced
in messages so that control-plane overhead can be reported alongside the
paper's reconnection-count metric.  The message catalogue follows the
protocol descriptions in Sections 3 and 4.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict


class MessageType(enum.Enum):
    """Every control message named by the paper's protocols."""

    # Tree construction (Section 3.3)
    JOIN = "join"
    ACCEPT = "accept"
    REJECT = "reject"
    LEAVE = "leave"
    # BTP-based switching (Section 3.3)
    BTP_QUERY = "btp_query"
    BTP_REPLY = "btp_reply"
    LOCK_REQUEST = "lock_request"
    LOCK_GRANT = "lock_grant"
    LOCK_DENY = "lock_deny"
    SWITCH_COMMIT = "switch_commit"
    # Referee mechanism (Section 3.4)
    REFEREE_ASSIGN = "referee_assign"
    REFEREE_QUERY = "referee_query"
    REFEREE_REPLY = "referee_reply"
    HEARTBEAT = "heartbeat"
    # Error recovery (Section 4)
    REPAIR_REQUEST = "repair_request"
    REPAIR_DATA = "repair_data"
    NACK = "nack"
    ELN = "eln"


@dataclass
class MessageStats:
    """Counts of control messages sent, by type."""

    counts: Counter = field(default_factory=Counter)

    def record(self, message_type: MessageType, count: int = 1) -> None:
        if count < 0:
            raise ValueError(f"negative message count {count}")
        self.counts[message_type] += count

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def as_dict(self) -> Dict[str, int]:
        """Plain ``{name: count}`` mapping for reports."""
        return {mt.value: self.counts[mt] for mt in MessageType if self.counts[mt]}

    def merge(self, other: "MessageStats") -> None:
        self.counts.update(other.counts)

    def to_payload(self) -> Dict[str, int]:
        """JSON-ready ``{type-value: count}``; inverse of from_payload."""
        return {mt.value: int(self.counts[mt]) for mt in MessageType if self.counts[mt]}

    @classmethod
    def from_payload(cls, data: Dict[str, int]) -> "MessageStats":
        stats = cls()
        for name, count in data.items():
            stats.counts[MessageType(name)] = count
        return stats

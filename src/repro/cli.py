"""``repro-sim`` — run one simulation from the command line.

A front door for exploring the library without writing a script: pick a
protocol, population and scale, run the churn simulation, and get the
headline metrics plus (optionally) a layer-by-layer anatomy table, an
ASCII rendering of the final tree, and a saved workload trace for exact
replay.

Examples::

    repro-sim --protocol rost --population 2000 --scale 0.25
    repro-sim --protocol relaxed-bo --population 1000 --scale 0.25 --anatomy
    repro-sim --protocol rost --population 300 --scale 0.1 --render --max-depth 3
    repro-sim --protocol min-depth --population 500 --scale 0.1 \
        --save-trace trace.json
    repro-sim --protocol rost --load-trace trace.json --scale 0.1
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .config import paper_config
from .metrics.report import render_table
from .overlay.analysis import btp_ordering_violations, tree_statistics
from .overlay.render import render_tree
from .protocols import PROTOCOLS
from .simulation.churn import ChurnSimulation
from .workload.trace_io import load_workload, save_workload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Run one overlay-multicast churn simulation.",
    )
    parser.add_argument(
        "--protocol",
        choices=sorted(PROTOCOLS),
        default="rost",
        help="tree construction protocol (default: rost)",
    )
    parser.add_argument("--population", type=int, default=2000)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--graceful",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="fraction of departures announced in advance (default 0: the "
        "paper's abrupt-only extreme)",
    )
    parser.add_argument(
        "--membership",
        choices=["abstract", "gossip"],
        default="abstract",
        help="peer-sampling substrate (gossip = the Cyclon-style protocol)",
    )
    parser.add_argument(
        "--anatomy",
        action="store_true",
        help="print per-layer composition of the final tree",
    )
    parser.add_argument(
        "--render",
        action="store_true",
        help="print an ASCII rendering of the final tree (truncated)",
    )
    parser.add_argument("--max-depth", type=int, default=4)
    parser.add_argument(
        "--save-trace",
        metavar="PATH",
        default=None,
        help="save the generated workload trace as JSON",
    )
    parser.add_argument(
        "--load-trace",
        metavar="PATH",
        default=None,
        help="replay a previously saved workload trace",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = paper_config(
        population=args.population, seed=args.seed, scale=args.scale
    )
    workload = load_workload(args.load_trace) if args.load_trace else None
    simulation = ChurnSimulation(
        config,
        PROTOCOLS[args.protocol],
        workload=workload,
        graceful_departure_fraction=args.graceful,
        membership_mode=args.membership,
    )
    if args.save_trace:
        save_workload(simulation.workload, args.save_trace)
        print(f"workload trace saved to {args.save_trace}")

    started = time.time()
    result = simulation.run()
    elapsed = time.time() - started
    now = simulation.sim.now

    metrics = result.metrics
    print(
        f"{args.protocol}: {result.sessions_total} sessions over "
        f"{config.horizon_s:.0f}s simulated ({elapsed:.1f}s wall-clock)"
    )
    rows = [
        ["mean population", metrics.mean_population],
        ["disruptions / lifetime", metrics.avg_disruptions_per_node],
        ["service delay (ms)", metrics.avg_service_delay_ms],
        ["network stretch", metrics.avg_stretch],
        ["optimization reconnections / lifetime",
         metrics.avg_optimization_reconnections_per_node],
        ["control messages / session",
         result.messages.total / max(1, result.sessions_total)],
        ["rejected sessions", result.sessions_rejected],
    ]
    for key in ("switches", "promotions", "lock_failures"):
        if key in result.extras:
            rows.append([key, result.extras[key]])
    print(render_table("Run summary", ["metric", "value"], rows))

    if args.anatomy:
        stats = tree_statistics(simulation.tree, now)
        layer_rows = [
            [
                layer.layer,
                layer.members,
                layer.capacity,
                layer.spare,
                f"{100 * layer.free_rider_fraction:.0f}%",
                layer.mean_age_s / 60.0,
                layer.mean_descendants,
            ]
            for layer in stats.layers
        ]
        print()
        print(
            render_table(
                f"Tree anatomy: depth={stats.depth}, "
                f"mean depth={stats.mean_depth:.2f}, "
                f"BTP violations={btp_ordering_violations(simulation.tree, now)}",
                ["layer", "members", "capacity", "spare", "riders",
                 "age (min)", "mean desc"],
                layer_rows,
                precision=1,
            )
        )

    if args.render:
        print()
        print(render_tree(simulation.tree, now=now, max_depth=args.max_depth))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is out of range or inconsistent."""


class TopologyError(ReproError):
    """The network topology is malformed or a query refers to an unknown node."""


class TreeError(ReproError):
    """An overlay tree operation would violate a structural invariant."""


class CapacityError(TreeError):
    """A join/attach failed because no member has spare out-degree."""


class ProtocolError(ReproError):
    """A protocol state machine received an impossible event."""


class RecoveryError(ReproError):
    """An error-recovery operation failed (e.g. empty recovery group)."""


class SimulationError(ReproError):
    """The simulation engine detected an inconsistency (e.g. time travel)."""


class FaultError(ReproError):
    """A fault-injection primitive, schedule or campaign spec is invalid."""


class StoreError(ReproError):
    """A durable run-store operation failed (ledger, artifact or lock)."""


class StoreSchemaError(StoreError):
    """The on-disk ledger's schema version does not match this code.

    Raised when opening a store written by an incompatible release;
    carries the versions as :attr:`found` / :attr:`expected`.
    """

    def __init__(self, found, expected):
        super().__init__(
            f"run-store ledger schema version {found!r} is incompatible "
            f"with this release (expected {expected!r}); use a fresh "
            f"--store directory or `python -m repro.store export` from a "
            f"matching checkout"
        )
        self.found = found
        self.expected = expected


class InvariantError(ReproError):
    """A registered runtime invariant was violated during a checked run.

    Raised by a strict :class:`repro.invariants.InvariantChecker`; carries
    the structured :class:`repro.invariants.InvariantViolation` report as
    :attr:`violation`.
    """

    def __init__(self, violation):
        super().__init__(str(violation))
        self.violation = violation


class ValidationError(ReproError):
    """A statistical-validation operation failed (baseline, gate, oracle).

    Covers malformed or version-incompatible baseline files, unknown
    differential oracles and gate invocations that cannot be evaluated
    (e.g. a baseline naming an unregistered experiment).  A *failing*
    gate is not an error — it is a structured report with a non-zero
    exit code.
    """

"""Packet-level recovery simulation (Figures 12-14).

Runs a churn simulation and prices every streaming disruption as a
packet-level starvation episode under one or more
:class:`~repro.recovery.schemes.RecoveryScheme` configurations
simultaneously (the tree evolution is identical for all schemes, so a
single churn pass evaluates the whole scheme grid).

Per failure of member *f*:

* every child *c* of *f* must rejoin; with ELN (the paper's protocol) *c*
  alone runs the recovery — repaired packets flow down to *c*'s subtree,
  so every member of the subtree experiences *c*'s episode timeline;
* *c*'s recovery group was selected before the failure from its partial
  view (Algorithm 1 for MLC schemes, uniform for the random baseline),
  ordered by network distance; group members that share the failed
  upstream are co-affected and NACK;
* the episode outcome (missed playback slots) accumulates into each
  member's :class:`~repro.recovery.buffer.PlaybackState`; at departure
  the member's starving-time ratio joins the scheme's sample.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import RecoveryConfig, SimulationConfig
from ..metrics.collectors import exact_num
from ..metrics.stats import mean_and_ci
from ..overlay.node import OverlayNode
from ..recovery.buffer import PlaybackState
from ..recovery.episode import BackfillSpec, RepairSource, starvation_episode
from ..recovery.mlc import (
    PartialTreeView,
    group_loss_correlation,
    group_underlay_correlation,
    select_mlc_group,
    select_random_group,
)
from ..recovery.schemes import RecoveryScheme
from .churn import ChurnRunResult, ChurnSimulation, DisruptionEvent


@dataclass
class SchemeResult:
    """Per-scheme outcome of a recovery run."""

    scheme: RecoveryScheme
    #: Starving-time ratios of members that departed in the window.
    ratios: List[float] = field(default_factory=list)
    #: Aggregate starving / viewing seconds over the same members.  Each
    #: member's starving is clipped to its viewing time.
    total_starving_s: float = 0.0
    total_view_s: float = 0.0
    episodes: int = 0
    #: Total repair coverage observed (mean fraction of the stream rate
    #: the contacted sources provided).
    coverage_sum: float = 0.0
    #: Gap packets priced / repaired before their playback deadline,
    #: summed over every member-episode: their ratio is the scheme's
    #: repair success rate (the campaign-level resilience headline).
    gap_packets_total: int = 0
    repaired_packets_total: int = 0
    #: Loss-correlation accounting of the recovery groups this scheme
    #: actually used: pairwise shared-tree-edge sums (Section 4.1's ``w``)
    #: and pairwise same-stub-domain counts, summed over episodes.
    group_tree_correlation_sum: int = 0
    group_domain_correlation_sum: int = 0
    groups_selected: int = 0

    @property
    def avg_starving_ratio_pct(self) -> float:
        """Aggregate starving-time ratio: total starving over total view
        time (the headline metric of Figs 12-14).

        The per-member mean (:attr:`mean_member_ratio_pct`) is reported
        too, but it is dominated by members whose lifetime barely exceeds
        the startup buffering — a one-second viewer hit by a failure
        scores a ratio of 1.0 and swamps the average.  Aggregating weights
        members by how long they actually watched.
        """
        if self.total_view_s <= 0:
            return float("nan")
        return 100.0 * self.total_starving_s / self.total_view_s

    @property
    def mean_member_ratio_pct(self) -> float:
        mean, _ = mean_and_ci(self.ratios)
        return 100.0 * mean

    @property
    def ci95_pct(self) -> float:
        _, ci = mean_and_ci(self.ratios)
        return 100.0 * ci

    @property
    def mean_coverage(self) -> float:
        return self.coverage_sum / self.episodes if self.episodes else float("nan")

    @property
    def repair_success_rate(self) -> float:
        """Fraction of gap packets delivered before their deadline."""
        if self.gap_packets_total <= 0:
            return float("nan")
        return self.repaired_packets_total / self.gap_packets_total

    @property
    def mean_group_domain_correlation(self) -> float:
        """Mean same-stub-domain pair count per selected recovery group."""
        if self.groups_selected <= 0:
            return float("nan")
        return self.group_domain_correlation_sum / self.groups_selected

    # -- serialization ------------------------------------------------------------

    def to_payload(self) -> dict:
        """Exact JSON-ready form; inverse of :meth:`from_payload`."""
        return {
            "scheme": dataclasses.asdict(self.scheme),
            "ratios": [exact_num(r) for r in self.ratios],
            "total_starving_s": exact_num(self.total_starving_s),
            "total_view_s": exact_num(self.total_view_s),
            "episodes": int(self.episodes),
            "coverage_sum": exact_num(self.coverage_sum),
            "gap_packets_total": int(self.gap_packets_total),
            "repaired_packets_total": int(self.repaired_packets_total),
            "group_tree_correlation_sum": int(self.group_tree_correlation_sum),
            "group_domain_correlation_sum": int(self.group_domain_correlation_sum),
            "groups_selected": int(self.groups_selected),
        }

    @classmethod
    def from_payload(cls, data: dict) -> "SchemeResult":
        return cls(
            scheme=RecoveryScheme(**data["scheme"]),
            ratios=list(data["ratios"]),
            total_starving_s=data["total_starving_s"],
            total_view_s=data["total_view_s"],
            episodes=data["episodes"],
            coverage_sum=data["coverage_sum"],
            gap_packets_total=data["gap_packets_total"],
            repaired_packets_total=data["repaired_packets_total"],
            group_tree_correlation_sum=data["group_tree_correlation_sum"],
            group_domain_correlation_sum=data["group_domain_correlation_sum"],
            groups_selected=data["groups_selected"],
        )


@dataclass
class RecoveryRunResult:
    """Churn result plus the per-scheme starvation statistics."""

    churn: ChurnRunResult
    schemes: Dict[str, SchemeResult]

    def ratio_pct(self, scheme_name: str) -> float:
        return self.schemes[scheme_name].avg_starving_ratio_pct

    def to_payload(self) -> dict:
        """Exact JSON-ready form; scheme order is preserved (JSON objects
        keep insertion order), so iteration downstream is unchanged."""
        return {
            "churn": self.churn.to_payload(),
            "schemes": {
                name: result.to_payload() for name, result in self.schemes.items()
            },
        }

    @classmethod
    def from_payload(cls, data: dict) -> "RecoveryRunResult":
        return cls(
            churn=ChurnRunResult.from_payload(data["churn"]),
            schemes={
                name: SchemeResult.from_payload(payload)
                for name, payload in data["schemes"].items()
            },
        )


class RecoveryObserver:
    """Disruption/departure hooks evaluating a grid of recovery schemes."""

    def __init__(
        self,
        schemes: Sequence[RecoveryScheme],
        recovery_config: RecoveryConfig,
        recovery_window_s: float,
        view_size: int,
    ):
        names = [s.name for s in schemes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate scheme names: {names}")
        self.schemes = list(schemes)
        self.recovery_config = recovery_config
        self.recovery_window_s = recovery_window_s
        self.view_size = view_size
        self.results: Dict[str, SchemeResult] = {
            s.name: SchemeResult(s) for s in self.schemes
        }
        self._states: Dict[Tuple[str, int], PlaybackState] = {}
        self._residuals: Dict[int, float] = {}
        self._episode_counter = 0
        # Bound after the ChurnSimulation is constructed.
        self.churn: Optional[ChurnSimulation] = None

    # -- residual bandwidths -------------------------------------------------------

    def residual_pps(self, member_id: int) -> float:
        """Stable per-member residual bandwidth, U[0, residual_max_pps]."""
        value = self._residuals.get(member_id)
        if value is None:
            gen = np.random.default_rng([self.recovery_config.seed, member_id])
            value = float(gen.uniform(0.0, self.recovery_config.residual_max_pps))
            self._residuals[member_id] = value
        return value

    # -- disruption pricing -----------------------------------------------------------

    def on_disruption(self, event: DisruptionEvent) -> None:
        assert self.churn is not None, "observer not bound to a churn simulation"
        now, failed = event.time, event.failed
        affected_ids = {failed.member_id}
        affected_ids.update(d.member_id for d in failed.descendants())
        # Correlated-failure accounting: members dying in the same fault
        # event (e.g. a whole stub domain) cannot serve repairs either,
        # even when they have not been dismantled yet at pricing time.
        affected_ids.update(event.co_failed_ids)
        rescued = self._rescued_children(now, failed)
        for child in failed.children:
            self._price_child_episode(
                now, child, affected_ids, rescued=child.member_id in rescued
            )

    def _rescued_children(self, now: float, failed: OverlayNode) -> set:
        """Children whose proactive rescue plan (the grandparent) applies."""
        protocol_cfg = self.churn.config.protocol
        if not protocol_cfg.proactive_rescue:
            return set()
        parent = failed.parent
        if parent is None or not parent.attached:
            return set()
        slots = parent.spare_degree
        ordered = sorted(
            failed.children, key=lambda c: c.claimed_btp(now), reverse=True
        )
        return {child.member_id for child in ordered[:slots]}

    def _price_child_episode(
        self, now: float, child: OverlayNode, affected_ids: set, rescued: bool = False
    ) -> None:
        self._episode_counter += 1
        subtree = [child] + child.descendants()
        exclude_ids = {m.member_id for m in subtree}
        view = self._build_view(child, exclude_ids)
        protocol_cfg = self.churn.config.protocol
        outage_s = protocol_cfg.failure_detect_s + (
            protocol_cfg.rescue_s if rescued else protocol_cfg.rejoin_s
        )
        gap_packets = int(round(outage_s * self.recovery_config.packet_rate_pps))
        # The residual bandwidth of the post-rejoin parent is a property of
        # the episode, not of the recovery scheme: every scheme sees the
        # same new parent.
        backfill_rng = np.random.default_rng(
            [self.recovery_config.seed, child.member_id, self._episode_counter, 777]
        )
        backfill_rate = float(
            backfill_rng.uniform(0.0, self.recovery_config.residual_max_pps)
        )
        for scheme in self.schemes:
            sources = self._sources_for(scheme, child, view, affected_ids)
            backfill = self._backfill_for(scheme, backfill_rate, outage_s)
            if scheme.eln:
                self._apply_episode(
                    scheme, now, subtree, sources, gap_packets, backfill
                )
            else:
                # ELN ablation: every affected member recovers on its own.
                for member in subtree:
                    own_sources = self._sources_for(
                        scheme, member, view, affected_ids
                    )
                    self._apply_episode(
                        scheme, now, [member], own_sources, gap_packets, backfill
                    )

    def _backfill_for(
        self, scheme: RecoveryScheme, rate_pps: float, outage_s: float
    ) -> BackfillSpec:
        """Post-rejoin backfill: the new parent replays the part of the gap
        its own playback buffer (scheme.buffer_s deep) still holds."""
        rate = self.recovery_config.packet_rate_pps
        cutoff = max(0.0, (outage_s - scheme.buffer_s) * rate)
        return BackfillSpec(
            start_s=outage_s,
            rate_pps=rate_pps,
            cutoff_seq=int(np.ceil(cutoff)),
        )

    def _build_view(
        self, requester: OverlayNode, exclude_ids: set
    ) -> Optional[PartialTreeView]:
        membership = self.churn.membership
        sample = membership.sample_for(
            requester, self.view_size, attached_only=True
        )
        known = [m for m in sample if m.member_id not in exclude_ids]
        if not known:
            return None
        return PartialTreeView.from_members(known, exclude=exclude_ids)

    def _sources_for(
        self,
        scheme: RecoveryScheme,
        requester: OverlayNode,
        view: Optional[PartialTreeView],
        affected_ids: set,
    ) -> List[RepairSource]:
        if view is None:
            return []
        # The group depends only on the failure episode, the selection
        # policy and the group size — never on the scheme's buffer or the
        # order schemes are evaluated in — so scheme variants that share a
        # policy compare against byte-identical recovery groups.
        group_rng = np.random.default_rng(
            [
                self.recovery_config.seed,
                requester.member_id,
                self._episode_counter,
                int(scheme.use_mlc),
                scheme.group_size,
            ]
        )
        if scheme.use_mlc:
            group_ids = select_mlc_group(
                view,
                scheme.group_size,
                group_rng,
                domain_of=self._domain_of if scheme.domain_aware else None,
            )
        else:
            group_ids = select_random_group(view, scheme.group_size, group_rng)
        oracle = self.churn.oracle
        members = self.churn.tree.members
        self._record_group_correlation(scheme, group_ids, members)
        present = [
            (member_id, members[member_id])
            for member_id in group_ids
            if member_id in members
        ]
        delays = oracle.delays_from(
            requester.underlay_node, [node.underlay_node for _, node in present]
        )
        sources = [
            RepairSource(
                member_id=member_id,
                rate_pps=self.residual_pps(member_id),
                has_data=member_id not in affected_ids,
                delay_ms=float(delays[i]),
            )
            for i, (member_id, node) in enumerate(present)
        ]
        # "A member places the nodes of its recovery group in order of
        # network distance" (Section 4.2).
        sources.sort(key=lambda s: s.delay_ms)
        return sources

    def _domain_of(self, member_id: int) -> int:
        """Stub-domain id of a member (-1 when unknown or on transit)."""
        node = self.churn.tree.members.get(member_id)
        if node is None:
            return -1
        return int(self.churn.topology.node_domain[node.underlay_node])

    def _record_group_correlation(
        self, scheme: RecoveryScheme, group_ids: List[int], members: Dict
    ) -> None:
        """Accumulate tree- and underlay-level loss correlation of the
        group actually selected (deterministic per seed: the groups are)."""
        if not group_ids:
            return
        result = self.results[scheme.name]
        result.groups_selected += 1
        live = [members[m] for m in group_ids if m in members]
        result.group_tree_correlation_sum += group_loss_correlation(live)
        result.group_domain_correlation_sum += group_underlay_correlation(
            group_ids, self._domain_of
        )

    def _apply_episode(
        self,
        scheme: RecoveryScheme,
        now: float,
        members: List[OverlayNode],
        sources: List[RepairSource],
        gap_packets: int,
        backfill: Optional[BackfillSpec] = None,
    ) -> None:
        result = self.results[scheme.name]
        cache: Dict[float, object] = {}
        for member in members:
            state = self._state_for(scheme, member)
            buffer_ahead = state.buffer_ahead_at(now)
            key = round(buffer_ahead, 6)
            outcome = cache.get(key)
            if outcome is None:
                outcome = starvation_episode(
                    gap_packets=gap_packets,
                    packet_rate_pps=self.recovery_config.packet_rate_pps,
                    buffer_ahead_s=buffer_ahead,
                    # Packet-loss detection is per-packet (a missed
                    # delivery deadline), so repair starts almost
                    # immediately; the 5 s failure_detect_s only gates the
                    # rejoin and hence the gap length.
                    detect_s=self.recovery_config.repair_detect_s,
                    request_hop_s=self.recovery_config.request_hop_s,
                    sources=sources,
                    striped=scheme.striped,
                    backfill=backfill,
                )
                cache[key] = outcome
            state.record_episode(now, outcome.starving_s, outcome.repair_end_s)
            result.episodes += 1
            result.coverage_sum += outcome.coverage
            result.gap_packets_total += outcome.gap_packets
            result.repaired_packets_total += outcome.repaired_in_time

    def _state_for(self, scheme: RecoveryScheme, member: OverlayNode) -> PlaybackState:
        key = (scheme.name, member.member_id)
        state = self._states.get(key)
        if state is None:
            state = PlaybackState(
                buffer_s=scheme.buffer_s, join_time_s=member.join_time
            )
            self._states[key] = state
        return state

    # -- departures ----------------------------------------------------------------------

    def on_departure(self, now: float, node: OverlayNode) -> None:
        assert self.churn is not None
        if not node.ever_attached:
            return
        if not self.churn.metrics.in_window(now):
            self._drop_states(node.member_id)
            return
        for scheme in self.schemes:
            result = self.results[scheme.name]
            state = self._states.get((scheme.name, node.member_id))
            if state is not None:
                view = state.view_time_at(now)
                if view > 0:
                    result.ratios.append(state.starving_ratio_at(now))
                    result.total_view_s += view
                    result.total_starving_s += min(state.starving_s, view)
            else:
                # Never disrupted: a perfect (zero-starvation) viewing, as
                # long as the member actually got past startup buffering.
                view = now - node.join_time - scheme.buffer_s
                if view > 0:
                    result.ratios.append(0.0)
                    result.total_view_s += view
        self._drop_states(node.member_id)

    def _drop_states(self, member_id: int) -> None:
        for scheme in self.schemes:
            self._states.pop((scheme.name, member_id), None)


class RecoverySimulation:
    """Churn + recovery-scheme evaluation in one pass."""

    def __init__(
        self,
        config: SimulationConfig,
        protocol_factory,
        schemes: Sequence[RecoveryScheme],
        **churn_kwargs,
    ):
        self.observer = RecoveryObserver(
            schemes=schemes,
            recovery_config=config.recovery,
            recovery_window_s=config.protocol.recovery_window_s,
            view_size=config.protocol.partial_view_size,
        )
        self.churn = ChurnSimulation(
            config,
            protocol_factory,
            disruption_observer=self.observer.on_disruption,
            departure_observer=self.observer.on_departure,
            **churn_kwargs,
        )
        self.observer.churn = self.churn
        if self.churn.invariant_checker is not None:
            # Extend the checker into the recovery layer (episode pricing).
            self.churn.invariant_checker.attach_recovery(self.observer)

    def run(self) -> RecoveryRunResult:
        churn_result = self.churn.run()
        return RecoveryRunResult(churn=churn_result, schemes=self.observer.results)

"""Simulation drivers: churn (Figures 4-11) and packet-level recovery
(Figures 12-14).

:class:`~repro.simulation.churn.ChurnSimulation` replays a generated
workload against one tree protocol, maintaining the overlay under joins,
abrupt departures and rejoins, and collecting the paper's reliability and
quality metrics.  :class:`~repro.simulation.streaming.RecoverySimulation`
layers the CER / single-source loss-recovery models on top, turning every
disruption into a packet-level starvation episode.
"""

from .churn import ChurnRunResult, ChurnSimulation
from .probe import PROBE_MEMBER_ID, make_probe_session
from .streaming import RecoveryObserver, RecoverySimulation

__all__ = [
    "PROBE_MEMBER_ID",
    "ChurnRunResult",
    "ChurnSimulation",
    "RecoveryObserver",
    "RecoverySimulation",
    "make_probe_session",
]

"""The churn simulation driver.

Replays a :class:`~repro.workload.generator.ChurnWorkload` against one
tree protocol:

* arrivals create members and place them through the protocol (with
  bounded-backoff retries when no capacity is reachable);
* departures are *abrupt* (the paper's extreme, most-dynamic case): every
  descendant of the departed member suffers one streaming disruption, and
  each orphaned child re-attaches — with its subtree — only after the
  failure-detection (5 s) plus rejoin (10 s) window;
* the ROST/relaxed protocols' optimization reconnections, the tree's
  service delay/stretch, and the probe member's time series are collected
  into :class:`~repro.metrics.collectors.ChurnMetrics`.

A ``disruption_observer`` hook receives every failure event (used by the
recovery simulation to price starvation episodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol as TypingProtocol

import numpy as np

from ..config import SimulationConfig
from ..errors import SimulationError
from ..metrics.collectors import ChurnMetrics, TimeSeries, exact_num
from ..overlay.membership import MembershipService
from ..overlay.messages import MessageStats
from ..overlay.node import OverlayNode
from ..overlay.tree import MulticastTree
from ..protocols.base import ProtocolContext, TreeProtocol
from ..sim.engine import Simulator
from ..sim.events import Event
from ..sim.rng import RngRegistry
from ..topology.routing import DelayOracle
from ..topology.transit_stub import TransitStubTopology, generate_transit_stub
from ..workload.generator import ChurnWorkload, generate_workload
from ..workload.session import Session
from .probe import PROBE_MEMBER_ID

#: How long an unplaceable join waits before retrying.
JOIN_RETRY_S = 5.0
#: Give up on a fresh join after this many attempts (the session then
#: counts as rejected; with the paper's capacity distribution this is
#: rare and transient).
MAX_JOIN_ATTEMPTS = 100


#: Cause tag for ordinary workload-driven abrupt departures.
CHURN_CAUSE = "churn"


@dataclass(frozen=True)
class DisruptionEvent:
    """One abrupt-failure event, as seen by a ``disruption_observer``.

    Delivered just before the departed member is dismantled, so
    ``failed`` still carries its children and subtree.  ``cause``
    distinguishes workload churn (``"churn"``) from injected faults
    (``"fault:<kind>"``, see :mod:`repro.faults`), so injector-caused and
    churn-caused disruptions stay separable in metrics.
    """

    time: float
    failed: OverlayNode
    #: Whether the event falls inside the measurement window.
    in_window: bool
    cause: str = CHURN_CAUSE
    #: Members losing the stream: the failed member plus its descendants.
    subtree_size: int = 1
    #: Members failing in the *same* correlated event (e.g. every victim
    #: of a stub-domain outage).  Recovery sources drawn from this set are
    #: dead at repair time even if they have not been dismantled yet.
    co_failed_ids: frozenset = frozenset()


class DisruptionObserver(TypingProtocol):
    """Callback protocol for failure events (see RecoverySimulation)."""

    def __call__(self, event: DisruptionEvent) -> None: ...


@dataclass
class ChurnRunResult:
    """Everything one churn run produces."""

    protocol_name: str
    config: SimulationConfig
    metrics: ChurnMetrics
    messages: MessageStats
    sessions_total: int
    sessions_rejected: int
    probe_disruptions: Optional[TimeSeries] = None
    probe_delay_ms: Optional[TimeSeries] = None
    #: Protocol-specific counters (e.g. ROST switches / lock failures).
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def avg_disruptions_per_node(self) -> float:
        return self.metrics.avg_disruptions_per_node

    @property
    def avg_service_delay_ms(self) -> float:
        return self.metrics.avg_service_delay_ms

    @property
    def avg_stretch(self) -> float:
        return self.metrics.avg_stretch

    @property
    def avg_optimization_reconnections(self) -> float:
        return self.metrics.avg_optimization_reconnections_per_node

    # -- serialization ------------------------------------------------------------

    def to_payload(self) -> dict:
        """Exact JSON-ready form for crossing process boundaries.

        Every float survives a JSON round-trip bit-for-bit (repr-based
        shortest serialization; NaN/inf use the JSON extensions Python's
        ``json`` emits by default), every list keeps its order, so a
        rebuilt result is indistinguishable from the original to any
        figure-extraction code.  Inverse of :meth:`from_payload`.
        """
        from ..config import config_to_dict

        return {
            "protocol_name": self.protocol_name,
            "config": config_to_dict(self.config),
            "metrics": self.metrics.to_payload(),
            "messages": self.messages.to_payload(),
            "sessions_total": int(self.sessions_total),
            "sessions_rejected": int(self.sessions_rejected),
            "probe_disruptions": (
                self.probe_disruptions.to_payload()
                if self.probe_disruptions is not None
                else None
            ),
            "probe_delay_ms": (
                self.probe_delay_ms.to_payload()
                if self.probe_delay_ms is not None
                else None
            ),
            "extras": {name: exact_num(v) for name, v in self.extras.items()},
        }

    @classmethod
    def from_payload(cls, data: dict) -> "ChurnRunResult":
        from ..config import config_from_dict

        return cls(
            protocol_name=data["protocol_name"],
            config=config_from_dict(data["config"]),
            metrics=ChurnMetrics.from_payload(data["metrics"]),
            messages=MessageStats.from_payload(data["messages"]),
            sessions_total=data["sessions_total"],
            sessions_rejected=data["sessions_rejected"],
            probe_disruptions=(
                TimeSeries.from_payload(data["probe_disruptions"])
                if data["probe_disruptions"] is not None
                else None
            ),
            probe_delay_ms=(
                TimeSeries.from_payload(data["probe_delay_ms"])
                if data["probe_delay_ms"] is not None
                else None
            ),
            extras=dict(data["extras"]),
        )


class ChurnSimulation:
    """One protocol, one workload, one run."""

    def __init__(
        self,
        config: SimulationConfig,
        protocol_factory: Callable[[ProtocolContext], TreeProtocol],
        topology: Optional[TransitStubTopology] = None,
        oracle: Optional[DelayOracle] = None,
        workload: Optional[ChurnWorkload] = None,
        probe: Optional[Session] = None,
        disruption_observer: Optional[DisruptionObserver] = None,
        departure_observer: Optional[Callable[[float, OverlayNode], None]] = None,
        reattach_observer: Optional[Callable[[float, OverlayNode], None]] = None,
        member_setup: Optional[Callable[[OverlayNode], None]] = None,
        tree_samples: int = 10,
        probe_sample_interval_s: float = 60.0,
        check_invariants=False,
        graceful_departure_fraction: float = 0.0,
        membership_mode: str = "abstract",
    ):
        """``check_invariants`` enables runtime invariant checking (see
        :mod:`repro.invariants`): ``True`` attaches a strict
        :class:`~repro.invariants.InvariantChecker` that raises on the
        first violation; passing a checker instance uses it as configured
        (e.g. ``strict=False`` to accumulate violations for a report).

        ``graceful_departure_fraction`` extends the paper's abrupt-only
        extreme: that fraction of departures announce themselves, so their
        children re-attach immediately (make-before-break) with neither a
        streaming disruption nor the 15 s recovery window.

        ``membership_mode`` selects the peer-sampling substrate:
        ``"abstract"`` (converged uniform views — the default, and the
        only practical choice at paper scale) or ``"gossip"`` (the actual
        Cyclon-style shuffling protocol, whose per-member views the
        protocols then join/recover from)."""
        self.config = config
        self.rngs = RngRegistry(config.seed)
        self.topology = topology if topology is not None else generate_transit_stub(
            config.topology
        )
        self.oracle = oracle if oracle is not None else DelayOracle(self.topology)
        if workload is None:
            workload = generate_workload(
                config.workload,
                horizon_s=config.horizon_s,
                attach_nodes=self.topology.stub_nodes,
                rng=self.rngs.stream("workload"),
                probe=probe,
            )
        self.workload = workload
        self.sim = Simulator()
        root = OverlayNode(
            member_id=0,
            underlay_node=workload.root.underlay_node,
            bandwidth=workload.root.bandwidth,
            out_degree_cap=workload.root.out_degree(config.workload.stream_rate),
            join_time=0.0,
            is_root=True,
        )
        self.tree = MulticastTree(root)
        if membership_mode == "abstract":
            self.membership = MembershipService(self.rngs.stream("membership"))
        elif membership_mode == "gossip":
            from ..overlay.gossip import GossipMembership

            self.membership = GossipMembership(
                self.rngs.stream("membership"), self.sim
            )
        else:
            raise SimulationError(
                f"unknown membership_mode {membership_mode!r} "
                "(expected 'abstract' or 'gossip')"
            )
        self.membership.register(root)
        self.ctx = ProtocolContext(
            sim=self.sim,
            tree=self.tree,
            membership=self.membership,
            oracle=self.oracle,
            config=config.protocol,
            stream_rate=config.workload.stream_rate,
            rng=self.rngs.stream("protocol"),
        )
        self.protocol = protocol_factory(self.ctx)
        self.metrics = ChurnMetrics(
            config.warmup_s,
            config.horizon_s,
            mean_lifetime_s=config.workload.mean_lifetime_s,
        )
        if hasattr(self.protocol, "overhead_callback"):
            self.protocol.overhead_callback = (
                lambda n: self.metrics.record_optimization_reconnections(
                    self.sim.now, n
                )
            )
        self.disruption_observer = disruption_observer
        self.departure_observer = departure_observer
        #: Called with ``(time, orphan)`` whenever a member re-attaches
        #: after losing its parent (used for time-to-repair accounting).
        self.reattach_observer = reattach_observer
        self.member_setup = member_setup
        self.tree_samples = tree_samples
        self.probe_sample_interval_s = probe_sample_interval_s
        self.check_invariants = check_invariants
        if not 0.0 <= graceful_departure_fraction <= 1.0:
            raise SimulationError(
                f"graceful_departure_fraction must be in [0, 1], got "
                f"{graceful_departure_fraction}"
            )
        self.graceful_departure_fraction = graceful_departure_fraction
        self._departure_rng = self.rngs.stream("departure-style")
        self.sessions_rejected = 0
        self.rescued_rejoins = 0
        self._probe_node: Optional[OverlayNode] = None
        self.probe_disruptions: Optional[TimeSeries] = None
        self.probe_delay_ms: Optional[TimeSeries] = None
        self._pending_rejoins: Dict[int, Event] = {}
        self._ran = False
        #: The attached checker, or None (set last: it observes everything
        #: constructed above, including the protocol's switch surface).
        self.invariant_checker = None
        if check_invariants:
            from ..invariants import InvariantChecker

            checker = (
                check_invariants
                if isinstance(check_invariants, InvariantChecker)
                else InvariantChecker()
            )
            self.invariant_checker = checker.attach(self)

    # -- public API ------------------------------------------------------------------

    def run(self) -> ChurnRunResult:
        """Execute the run and return the collected results."""
        if self._ran:
            raise SimulationError("a ChurnSimulation instance runs once")
        self._ran = True
        for session in self.workload.sessions:
            self.sim.schedule_at(
                session.arrival_s, lambda s=session: self._on_arrival(s)
            )
        self._schedule_tree_samples()
        self.sim.run_until(self.workload.horizon_s)
        self.metrics.record_population(self.workload.horizon_s, self.tree.num_attached)
        if self.invariant_checker is not None:
            self.invariant_checker.finalize()
        elif self.check_invariants:
            self.tree.check_invariants()
        return self._result()

    # -- event handlers -----------------------------------------------------------------

    def _on_arrival(self, session: Session) -> None:
        now = self.sim.now
        node = OverlayNode(
            member_id=session.member_id,
            underlay_node=session.underlay_node,
            bandwidth=session.bandwidth,
            out_degree_cap=session.out_degree(self.config.workload.stream_rate),
            # Members of the stationary initial population carry the age
            # they had already accumulated before t=0.
            join_time=now - session.initial_age_s,
        )
        if self.member_setup is not None:
            self.member_setup(node)
        self.tree.add_member(node)
        self.membership.register(node)
        self.metrics.record_arrival(now)
        if session.member_id == PROBE_MEMBER_ID:
            self._setup_probe(node)
        self.sim.schedule_at(
            session.departure_s, lambda: self._on_departure(node), priority=-1
        )
        self._attempt_join(node, attempt=1)

    def _attempt_join(self, node: OverlayNode, attempt: int) -> None:
        if self.tree.members.get(node.member_id) is not node or node.attached:
            return
        if self.protocol.place(node, rejoin=False):
            self.metrics.record_population(self.sim.now, self.tree.num_attached)
            return
        self.metrics.join_retries += 1
        if attempt >= MAX_JOIN_ATTEMPTS:
            return  # departure will record the rejection
        self.sim.schedule_in(
            JOIN_RETRY_S,
            lambda: self._attempt_join(node, attempt + 1),
            label="join-retry",
        )

    def fail_member(
        self,
        node: OverlayNode,
        cause: str,
        co_failed_ids: frozenset = frozenset(),
    ) -> bool:
        """Abruptly fail ``node`` right now (fault injection entry point).

        The member departs through the ordinary abrupt path — descendants
        are disrupted, orphans rejoin after the recovery window — but the
        emitted :class:`DisruptionEvent` carries ``cause`` instead of
        ``"churn"``, and ``co_failed_ids`` names every member dying in the
        same correlated event.  Returns False if ``node`` already left.
        """
        if self.tree.members.get(node.member_id) is not node:
            return False
        if node.is_root:
            raise SimulationError("the root cannot be fault-injected away")
        self._on_departure(node, cause=cause, co_failed_ids=co_failed_ids)
        return True

    def _on_departure(
        self,
        node: OverlayNode,
        cause: str = CHURN_CAUSE,
        co_failed_ids: frozenset = frozenset(),
    ) -> None:
        if self.tree.members.get(node.member_id) is not node:
            return
        now = self.sim.now
        was_attached = node.attached
        if not node.ever_attached:
            self.sessions_rejected += 1
        self.protocol.on_departure(node)
        self.membership.unregister(node)
        pending = self._pending_rejoins.pop(node.member_id, None)
        if pending is not None:
            pending.cancel()

        # Injected failures are always abrupt: a crashed member does not
        # announce itself, whatever the graceful fraction says.
        graceful = (
            was_attached
            and cause == CHURN_CAUSE
            and self.graceful_departure_fraction > 0.0
            and self._departure_rng.random() < self.graceful_departure_fraction
        )
        abrupt = was_attached and not graceful
        descendants = node.descendants() if abrupt else []
        failed_parent = node.parent
        if abrupt and self.disruption_observer is not None:
            # The observer sees the overlay *before* the departed member is
            # dismantled: recovery-group selection and loss-correlation
            # evaluation both depend on the pre-failure structure.
            self.disruption_observer(
                DisruptionEvent(
                    time=now,
                    failed=node,
                    in_window=self.metrics.in_window(now),
                    cause=cause,
                    subtree_size=1 + len(descendants),
                    co_failed_ids=co_failed_ids,
                )
            )
        orphans = self.tree.remove_departed(node)

        if abrupt:
            self.metrics.record_disruptions(now, len(descendants))
            for member in descendants:
                member.disruptions += 1
                if member is self._probe_node and self.probe_disruptions is not None:
                    self.probe_disruptions.append(now, member.disruptions)
        if node.ever_attached:
            # Never-attached (rejected) sessions experienced no streaming
            # at all and would only dilute per-lifetime statistics.  A
            # member of the initial stationary population (join_time < 0)
            # was only partially observed; its counts feed the rate-based
            # estimators but not the per-lifetime distribution.
            self.metrics.record_departure(
                now,
                node.disruptions,
                node.optimization_reconnections,
                full_observation=node.join_time >= 0.0,
            )
        if self.departure_observer is not None:
            self.departure_observer(now, node)
        protocol_cfg = self.config.protocol
        grandparent = node.rejoin_hint if not was_attached else None
        # Proactive rescue plans (if enabled): orphans whose precomputed
        # backup — the grandparent — is alive with spare capacity skip the
        # parent re-finding phase.  The freed slot plus any existing spare
        # bounds how many children the plan can absorb.
        rescue_slots = 0
        if (
            protocol_cfg.proactive_rescue
            and was_attached
            and failed_parent is not None
            and failed_parent.attached
        ):
            rescue_slots = failed_parent.spare_degree
        # Orphans re-find parents in BTP order: the highest-BTP child is
        # the quickest to detect the failure and act (it sits closest to
        # the top of its own subtree's data flow and, per Fig. 2 of the
        # paper, is the preferred candidate for freed positions).
        ordered = sorted(orphans, key=lambda o: o.claimed_btp(now), reverse=True)
        for index, orphan in enumerate(ordered):
            if rescue_slots > 0:
                rescue_slots -= 1
                self.rescued_rejoins += 1
                window_end = now + protocol_cfg.failure_detect_s + protocol_cfg.rescue_s
            else:
                window_end = now + protocol_cfg.recovery_window_s
            # Each orphan knows the failed parent's own parent — the
            # natural first contact for grandparent-succession rejoins.
            orphan.rejoin_hint = failed_parent if was_attached else grandparent
            if graceful:
                # Announced departure: the children re-attach while the
                # parent is still forwarding (make-before-break).
                if self.protocol.place(orphan, rejoin=True):
                    orphan.reconnections += 1
                    self.metrics.record_failure_reconnection(now)
                    if self.reattach_observer is not None:
                        self.reattach_observer(now, orphan)
                    continue
                # No position available right now — degrade to the normal
                # recovery path (without counting disruptions: the parent
                # drains its buffer toward the subtree on the way out).
            self.protocol.on_recovery_lock(orphan, window_end)
            self._pending_rejoins[orphan.member_id] = self.sim.schedule_at(
                window_end, lambda o=orphan: self._on_rejoin(o), priority=index
            )
        self.metrics.record_population(now, self.tree.num_attached)

    def _on_rejoin(self, orphan: OverlayNode) -> None:
        self._pending_rejoins.pop(orphan.member_id, None)
        if self.tree.members.get(orphan.member_id) is not orphan:
            return
        if orphan.attached or orphan.parent is not None:
            return
        now = self.sim.now
        if self.protocol.place(orphan, rejoin=True):
            orphan.reconnections += 1
            self.metrics.record_failure_reconnection(now)
            self.metrics.record_population(now, self.tree.num_attached)
            if self.reattach_observer is not None:
                self.reattach_observer(now, orphan)
            return
        self._pending_rejoins[orphan.member_id] = self.sim.schedule_in(
            self.config.protocol.rejoin_s, lambda: self._on_rejoin(orphan)
        )

    # -- probe ----------------------------------------------------------------------------

    def _setup_probe(self, node: OverlayNode) -> None:
        self._probe_node = node
        self.probe_disruptions = TimeSeries()
        self.probe_delay_ms = TimeSeries()
        self.probe_disruptions.append(self.sim.now, 0)
        self._schedule_probe_sample()

    def _schedule_probe_sample(self) -> None:
        def sample() -> None:
            node = self._probe_node
            if node is None or self.tree.members.get(node.member_id) is not node:
                return
            if node.attached:
                self.probe_delay_ms.append(
                    self.sim.now, self.ctx.service_delay_ms(node)
                )
            self._schedule_probe_sample()

        self.sim.schedule_in(self.probe_sample_interval_s, sample, label="probe-sample")

    # -- tree quality sampling -------------------------------------------------------------

    def _schedule_tree_samples(self) -> None:
        if self.tree_samples <= 0:
            return
        start = self.config.warmup_s
        span = self.config.horizon_s - start
        for i in range(self.tree_samples):
            at = start + span * (i + 1) / (self.tree_samples + 1)
            self.sim.schedule_at(at, self._sample_tree, label="tree-sample")

    def _sample_tree(self) -> None:
        root_underlay = self.tree.root.underlay_node
        sampled = [n for n in self.tree.attached_nodes() if not n.is_root]
        if not sampled:
            return
        delays = [self.ctx.service_delay_ms(node) for node in sampled]
        directs = self.oracle.delays_from(
            root_underlay, [n.underlay_node for n in sampled]
        )
        stretches = [
            delay / direct if direct > 0 else 1.0
            for delay, direct in zip(delays, directs.tolist())
        ]
        self.metrics.record_tree_sample(
            float(np.mean(delays)), float(np.mean(stretches))
        )

    # -- result assembly ---------------------------------------------------------------------

    def _result(self) -> ChurnRunResult:
        extras: Dict[str, float] = {
            "events_processed": float(self.sim.events_processed),
            "final_attached": float(self.tree.num_attached),
            "rescued_rejoins": float(self.rescued_rejoins),
        }
        for attr in ("switches", "promotions", "lock_failures"):
            if hasattr(self.protocol, attr):
                extras[attr] = float(getattr(self.protocol, attr))
        referees = getattr(self.protocol, "referees", None)
        if referees is not None:
            extras["referee_replacements"] = float(referees.replacements)
            extras["referee_lost_records"] = float(referees.lost_records)
        return ChurnRunResult(
            protocol_name=self.protocol.name,
            config=self.config,
            metrics=self.metrics,
            messages=self.ctx.messages,
            sessions_total=len(self.workload.sessions),
            sessions_rejected=self.sessions_rejected,
            probe_disruptions=self.probe_disruptions,
            probe_delay_ms=self.probe_delay_ms,
            extras=extras,
        )

"""The "typical member" probe of Figures 6 and 9.

The paper observes one member "with a moderate bandwidth and a long
lifetime in order to observe the network over a long period", joining
after the network enters a steady state.  The probe is an ordinary
session with a reserved member id; the churn driver records its
cumulative-disruption and service-delay time series.
"""

from __future__ import annotations

from ..workload.session import Session

#: Reserved member id for the probe (never produced by the generator).
PROBE_MEMBER_ID = 10**9


def make_probe_session(
    arrival_s: float,
    lifetime_s: float = 300 * 60.0,
    bandwidth: float = 2.0,
    underlay_node: int = 0,
) -> Session:
    """Build the probe session.

    Defaults follow the figures: a 300-minute observation span and a
    moderate bandwidth (out-degree 2 at unit stream rate — enough to be
    promotable but far from a super-node).
    """
    return Session(
        member_id=PROBE_MEMBER_ID,
        arrival_s=arrival_s,
        lifetime_s=lifetime_s,
        bandwidth=bandwidth,
        underlay_node=underlay_node,
    )

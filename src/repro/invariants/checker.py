"""Observer-driven runtime invariant checking for churn simulations.

:class:`InvariantChecker` attaches to a :class:`ChurnSimulation` (or
anything carrying one, e.g. a ``RecoverySimulation``) through public
observation surface only — the engine's ``trace_pre``/``trace_post``
hooks, observer chaining, and per-instance wrapping of the tree's switch
operations and the recovery observer's episode pricing.  Protocol code is
never modified, so the checker composes with fault injection, every
protocol, and any workload.

Violations become structured
:class:`~repro.invariants.registry.InvariantViolation` records; with
``strict=True`` (the default) the first one raises
:class:`~repro.errors.InvariantError`, with ``strict=False`` they
accumulate in :attr:`InvariantChecker.violations` for reporting (the
fault-campaign ``--check-invariants`` mode).
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Sequence

from ..errors import InvariantError, SimulationError
from .registry import (
    CheckContext,
    Invariant,
    InvariantViolation,
    invariants_for,
)

# Import for the registration side effect: the built-in suite must be in
# the registry before invariants_for() resolves a checker's layer set.
from . import checks as _checks  # noqa: F401

#: Slack for floating-point comparisons on virtual times and BTP values.
_EPS = 1e-9


class InvariantChecker:
    """Checks the registered invariant suite against one simulation run.

    Parameters:

    * ``strict`` — raise :class:`InvariantError` on the first violation
      (tests / debugging) or accumulate silently (campaign reporting);
    * ``interval_events`` — run the quiescent sweep every N fired events
      (the instrumented invariants are always enforced inline);
    * ``layers`` — restrict to a subset of
      :data:`~repro.invariants.registry.LAYERS` (None = everything).
    """

    def __init__(
        self,
        strict: bool = True,
        interval_events: int = 256,
        layers: Optional[Sequence[str]] = None,
    ):
        if interval_events < 1:
            raise SimulationError(
                f"interval_events must be >= 1, got {interval_events}"
            )
        self.strict = strict
        self.interval_events = interval_events
        self.invariants: tuple = invariants_for(layers)
        self._enabled = {inv.name: inv for inv in self.invariants}
        self._quiescent = [inv for inv in self.invariants if inv.check is not None]
        self.violations: List[InvariantViolation] = []
        #: Completed quiescent sweeps (fuzz tests assert this advanced).
        self.sweeps = 0
        self.events_seen = 0
        self.churn = None
        self.sim = None
        self.tree = None
        self._last_event_time = -math.inf
        #: Shadow lock ledger: member id -> end of its current lock-hold
        #: window, maintained independently of the nodes' own lock state.
        self._lock_windows: Dict[int, float] = {}
        #: Correlated-failure sets awaiting the atomicity check.
        self._cofail_pending: Dict[FrozenSet[int], float] = {}
        self._lock_hold_s = 0.0
        self._attached = False
        self._finalized = False

    # -- attachment -----------------------------------------------------------------

    def attach(self, target) -> "InvariantChecker":
        """Hook into ``target`` (a ChurnSimulation, or anything with a
        ``.churn`` attribute holding one).  Must run before the sim does."""
        churn = getattr(target, "churn", None)
        if churn is None or not hasattr(churn, "sim"):
            churn = target
        if not hasattr(churn, "sim") or not hasattr(churn, "tree"):
            raise SimulationError(
                f"cannot attach an InvariantChecker to {type(target).__name__}"
            )
        if self._attached:
            raise SimulationError("an InvariantChecker attaches to one simulation")
        self._attached = True
        self.churn = churn
        self.sim = churn.sim
        self.tree = churn.tree
        self._chain_trace_hooks()
        if self._want("fault-atomic-cofail"):
            self._chain_disruption_observer()
        protocol = getattr(churn, "protocol", None)
        if (
            protocol is not None
            and hasattr(protocol, "lock_hold_s")
            and hasattr(protocol, "_values_of")
        ):
            self._lock_hold_s = float(protocol.lock_hold_s)
            self._wrap_tree_switches(protocol)
        return self

    def _chain_trace_hooks(self) -> None:
        prev_pre = self.sim.trace_pre
        prev_post = self.sim.trace_post

        def pre(event) -> None:
            if prev_pre is not None:
                prev_pre(event)
            self._on_event_pre(event)

        def post(event) -> None:
            if prev_post is not None:
                prev_post(event)
            self._on_event_post(event)

        self.sim.trace_pre = pre
        self.sim.trace_post = post

    def _chain_disruption_observer(self) -> None:
        prev = self.churn.disruption_observer

        def observe(event) -> None:
            if prev is not None:
                prev(event)
            if len(event.co_failed_ids) > 1:
                self._cofail_pending.setdefault(event.co_failed_ids, event.time)

        self.churn.disruption_observer = observe

    def _wrap_tree_switches(self, protocol) -> None:
        """Per-instance wrappers around the tree's two switch operations,
        enforcing the lock discipline and the BTP ordering (ROST family
        only — gated on the protocol exposing its lock/valuation surface)."""
        tree = self.tree
        orig_swap = tree.swap_with_parent
        orig_promote = tree.promote_to_grandparent

        def checked_swap(child, overflow_priority):
            now = self.sim.now
            parent = child.parent
            involved = [child]
            if parent is not None:
                involved.append(parent)
                if parent.parent is not None:
                    involved.append(parent.parent)
                involved.extend(c for c in parent.children if c is not child)
            involved.extend(child.children)
            self._check_lock_windows(involved, now, operation="switch")
            result = orig_swap(child, overflow_priority)
            if parent is not None:
                _, child_btp = protocol._values_of(child)
                _, parent_btp = protocol._values_of(parent)
                if child_btp < parent_btp - _EPS:
                    self._record(
                        "rost-switch-btp-order",
                        now,
                        f"switch promoted member {child.member_id} (BTP "
                        f"{child_btp:.3f}) above member {parent.member_id} "
                        f"(BTP {parent_btp:.3f})",
                        node_ids=(child.member_id, parent.member_id),
                        snapshot={
                            "child_btp": child_btp,
                            "parent_btp": parent_btp,
                        },
                    )
            self._note_lock_windows(involved, now)
            return result

        def checked_promote(node):
            now = self.sim.now
            involved = [node]
            if node.parent is not None:
                involved.append(node.parent)
                if node.parent.parent is not None:
                    involved.append(node.parent.parent)
            self._check_lock_windows(involved, now, operation="promotion")
            result = orig_promote(node)
            self._note_lock_windows(involved, now)
            return result

        tree.swap_with_parent = checked_swap
        tree.promote_to_grandparent = checked_promote

    # -- recovery hook ---------------------------------------------------------------

    def attach_recovery(self, observer) -> "InvariantChecker":
        """Wrap a :class:`RecoveryObserver`'s episode pricing with the
        recovery-layer invariants (called by ``RecoverySimulation``)."""
        if not any(inv.layer == "recovery" for inv in self.invariants):
            return self
        orig_apply = observer._apply_episode
        recovery_cfg = observer.recovery_config

        def checked_apply(scheme, now, members, sources, gap_packets, backfill=None):
            result = observer.results[scheme.name]
            pre_episodes = result.episodes
            pre_coverage = result.coverage_sum
            pre_gap = result.gap_packets_total
            pre_repaired = result.repaired_packets_total
            # Pricing mutates the playback buffers; capture them first.
            buffers = [
                observer._state_for(scheme, m).buffer_ahead_at(now)
                for m in members
            ]
            orig_apply(scheme, now, members, sources, gap_packets, backfill)
            d_episodes = result.episodes - pre_episodes
            d_coverage = result.coverage_sum - pre_coverage
            d_gap = result.gap_packets_total - pre_gap
            d_repaired = result.repaired_packets_total - pre_repaired
            self._check_episode_conservation(
                scheme, now, members, gap_packets, d_episodes, d_gap, d_repaired
            )
            self._check_residual_coverage(
                scheme, now, members, sources, gap_packets,
                recovery_cfg.packet_rate_pps, d_episodes, d_coverage,
            )
            self._check_backfill_window(
                scheme, now, members, sources, gap_packets, backfill,
                recovery_cfg, buffers, d_repaired,
            )

        observer._apply_episode = checked_apply
        return self

    def _check_episode_conservation(
        self, scheme, now, members, gap_packets, d_episodes, d_gap, d_repaired
    ) -> None:
        if not self._want("recovery-episode-conservation"):
            return
        expected_gap = gap_packets * d_episodes
        if (
            d_episodes != len(members)
            or d_gap != expected_gap
            or not 0 <= d_repaired <= d_gap
        ):
            self._record(
                "recovery-episode-conservation",
                now,
                f"scheme {scheme.name!r} priced {len(members)} members as "
                f"{d_episodes} episodes, gap {d_gap} (expected "
                f"{expected_gap}), repaired {d_repaired}",
                node_ids=tuple(m.member_id for m in members),
                snapshot={
                    "scheme": scheme.name,
                    "episodes": d_episodes,
                    "gap": d_gap,
                    "repaired": d_repaired,
                },
            )

    def _check_residual_coverage(
        self, scheme, now, members, sources, gap_packets,
        packet_rate_pps, d_episodes, d_coverage,
    ) -> None:
        if not self._want("recovery-residual-covers-rate"):
            return
        if not scheme.striped or gap_packets <= 0 or d_episodes <= 0:
            return
        live_rate = sum(
            s.rate_pps for s in sources if s.has_data and s.rate_pps > _EPS
        )
        if live_rate < packet_rate_pps * (1.0 + _EPS):
            return
        if d_coverage < d_episodes - 1e-6:
            self._record(
                "recovery-residual-covers-rate",
                now,
                f"scheme {scheme.name!r}: live residual {live_rate:.3f} pps "
                f">= stream rate {packet_rate_pps:.3f} pps but coverage "
                f"summed to {d_coverage:.6f} over {d_episodes} episodes",
                node_ids=tuple(m.member_id for m in members),
                snapshot={
                    "scheme": scheme.name,
                    "live_rate_pps": live_rate,
                    "packet_rate_pps": packet_rate_pps,
                    "coverage_sum": d_coverage,
                    "episodes": d_episodes,
                },
            )

    def _check_backfill_window(
        self, scheme, now, members, sources, gap_packets, backfill,
        recovery_cfg, buffers, d_repaired,
    ) -> None:
        if not self._want("recovery-backfill-window"):
            return
        if backfill is None or gap_packets <= 0:
            return
        if backfill.rate_pps <= _EPS:
            return
        from ..recovery.episode import starvation_episode

        # Repairs the group alone would have achieved (recomputed without
        # backfill; cached per distinct buffer depth like the pricing is).
        cache: Dict[float, int] = {}
        group_only = 0
        for buffer_ahead in buffers:
            key = round(buffer_ahead, 6)
            repaired = cache.get(key)
            if repaired is None:
                repaired = starvation_episode(
                    gap_packets=gap_packets,
                    packet_rate_pps=recovery_cfg.packet_rate_pps,
                    buffer_ahead_s=buffer_ahead,
                    detect_s=recovery_cfg.repair_detect_s,
                    request_hop_s=recovery_cfg.request_hop_s,
                    sources=sources,
                    striped=scheme.striped,
                    backfill=None,
                ).repaired_in_time
                cache[key] = repaired
            group_only += repaired
        in_window = max(0, gap_packets - backfill.cutoff_seq)
        upper = group_only + len(members) * in_window
        if d_repaired > upper or d_repaired < group_only:
            self._record(
                "recovery-backfill-window",
                now,
                f"scheme {scheme.name!r} repaired {d_repaired} packets; the "
                f"group alone accounts for {group_only} and the backfill "
                f"window holds only {in_window} per member "
                f"(cutoff_seq {backfill.cutoff_seq} of {gap_packets})",
                node_ids=tuple(m.member_id for m in members),
                snapshot={
                    "scheme": scheme.name,
                    "repaired": d_repaired,
                    "group_only": group_only,
                    "cutoff_seq": backfill.cutoff_seq,
                    "gap_packets": gap_packets,
                },
            )

    # -- event tracing ----------------------------------------------------------------

    def _on_event_pre(self, event) -> None:
        if self._want("sim-clock-monotonic"):
            if event.time < self._last_event_time - _EPS:
                self._record(
                    "sim-clock-monotonic",
                    event.time,
                    f"event {event.label or event.seq!r} fired at "
                    f"t={event.time} after an event at "
                    f"t={self._last_event_time}",
                    snapshot={
                        "event_time": event.time,
                        "previous_time": self._last_event_time,
                        "label": event.label,
                    },
                )
            if abs(event.time - self.sim.now) > _EPS:
                self._record(
                    "sim-clock-monotonic",
                    self.sim.now,
                    f"clock t={self.sim.now} disagrees with firing event "
                    f"time t={event.time}",
                    snapshot={"event_time": event.time, "now": self.sim.now},
                )
        self._last_event_time = max(self._last_event_time, event.time)
        if self._want("sim-no-fire-after-cancel") and event.cancelled:
            self._record(
                "sim-no-fire-after-cancel",
                event.time,
                f"cancelled event {event.label or event.seq!r} "
                f"(seq {event.seq}) fired",
                snapshot={"seq": event.seq, "label": event.label},
            )

    def _on_event_post(self, event) -> None:
        self.events_seen += 1
        if self.events_seen % self.interval_events == 0:
            self._sweep()

    # -- quiescent sweeps ----------------------------------------------------------------

    def _sweep(self) -> None:
        ctx = CheckContext(
            checker=self,
            sim=self.sim,
            tree=self.tree,
            churn=self.churn,
            now=self.sim.now,
        )
        for inv in self._quiescent:
            for found in inv.check(ctx):
                self._record(
                    inv.name,
                    ctx.now,
                    found["message"],
                    node_ids=tuple(found.get("node_ids", ())),
                    snapshot=found.get("snapshot", {}),
                )
        self.sweeps += 1

    def finalize(self) -> List[InvariantViolation]:
        """One last full sweep at end of run; returns all violations."""
        if self._attached and not self._finalized:
            self._finalized = True
            self._sweep()
        return self.violations

    # -- shared plumbing ---------------------------------------------------------------

    def _want(self, name: str) -> bool:
        return name in self._enabled

    def _check_lock_windows(
        self, involved, now: float, operation: str
    ) -> None:
        if not self._want("rost-lock-no-double-grant"):
            return
        busy = [
            node.member_id
            for node in involved
            if now < self._lock_windows.get(node.member_id, -math.inf) - _EPS
        ]
        if busy:
            self._record(
                "rost-lock-no-double-grant",
                now,
                f"{operation} granted while {len(busy)} involved members "
                f"still hold a previous switch lock",
                node_ids=tuple(sorted(busy)),
                snapshot={
                    "operation": operation,
                    "held_until": {
                        m: self._lock_windows[m] for m in sorted(busy)
                    },
                },
            )

    def _note_lock_windows(self, involved, now: float) -> None:
        end = now + self._lock_hold_s
        windows = self._lock_windows
        for node in involved:
            prev = windows.get(node.member_id, -math.inf)
            if end > prev:
                windows[node.member_id] = end

    def _record(
        self,
        name: str,
        time: float,
        message: str,
        node_ids: tuple = (),
        snapshot: Optional[dict] = None,
    ) -> None:
        inv: Invariant = self._enabled[name]
        violation = InvariantViolation(
            invariant=inv.name,
            layer=inv.layer,
            time=time,
            message=message,
            node_ids=tuple(node_ids),
            snapshot=snapshot or {},
        )
        self.violations.append(violation)
        if self.strict:
            raise InvariantError(violation)

    @property
    def violation_names(self) -> List[str]:
        """Distinct violated invariant names, first-seen order."""
        seen: List[str] = []
        for violation in self.violations:
            if violation.invariant not in seen:
                seen.append(violation.invariant)
        return seen

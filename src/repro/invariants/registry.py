"""Declarative registry of runtime invariants.

Every invariant the checker can enforce is registered here under a
stable name and a *layer* tag (``sim``, ``tree``, ``rost``, ``recovery``
or ``faults``), so callers can enable subsets and reports can say
exactly which guarantee broke.

Two kinds of invariants exist:

* **quiescent** invariants carry a ``check(ctx)`` callable, run by the
  checker at quiescent points (between events, when no handler is on the
  stack).  The callable receives a :class:`CheckContext` and yields one
  dict per violation (``message`` plus optional ``node_ids`` /
  ``snapshot``);
* **instrumented** invariants have ``check=None`` — they are enforced
  inline by :class:`~repro.invariants.checker.InvariantChecker`'s hooks
  (event tracing, wrapped tree operations, wrapped episode pricing),
  where the transient state they guard is actually visible.

Violations are reported uniformly as :class:`InvariantViolation`
records: virtual time, the invariant name and layer, the implicated
member ids and a small JSON-able snapshot of the relevant state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, Mapping, Optional, Tuple

#: The layers an invariant can belong to, bottom-up.
LAYERS: Tuple[str, ...] = ("sim", "tree", "rost", "recovery", "faults")


@dataclass(frozen=True)
class InvariantViolation:
    """One observed violation: what broke, when, and for whom."""

    invariant: str
    layer: str
    #: Virtual time at which the violation was observed.
    time: float
    message: str
    #: Overlay member ids implicated (empty for kernel-level violations).
    node_ids: Tuple[int, ...] = ()
    #: Small JSON-able snapshot of the state that proves the violation.
    snapshot: Mapping = field(default_factory=dict)

    def __str__(self) -> str:
        ids = f" members={list(self.node_ids)}" if self.node_ids else ""
        return (
            f"[{self.layer}] {self.invariant} violated at t={self.time:.3f}:"
            f" {self.message}{ids}"
        )

    def as_dict(self) -> dict:
        """JSON-ready form (campaign run records embed these)."""
        return {
            "invariant": self.invariant,
            "layer": self.layer,
            "time": self.time,
            "message": self.message,
            "node_ids": list(self.node_ids),
            "snapshot": dict(self.snapshot),
        }


@dataclass
class CheckContext:
    """What a quiescent check sees: the simulation under observation."""

    checker: "object"
    sim: "object"
    tree: "object"
    churn: "object"
    now: float
    #: Per-sweep scratch space so checks can share traversals.
    cache: dict = field(default_factory=dict)


CheckFn = Callable[[CheckContext], Iterator[dict]]


@dataclass(frozen=True)
class Invariant:
    """One registered invariant."""

    name: str
    layer: str
    description: str
    #: Quiescent-point checker; ``None`` for instrumented invariants.
    check: Optional[CheckFn] = None

    @property
    def instrumented(self) -> bool:
        return self.check is None


#: Name -> invariant.  Populated by :mod:`repro.invariants.checks`.
REGISTRY: Dict[str, Invariant] = {}


def register_invariant(inv: Invariant) -> Invariant:
    """Add ``inv`` to the registry (names and layers are validated)."""
    if not inv.name:
        raise ValueError("invariant name must be non-empty")
    if inv.layer not in LAYERS:
        raise ValueError(
            f"unknown invariant layer {inv.layer!r}; expected one of {LAYERS}"
        )
    if inv.name in REGISTRY:
        raise ValueError(f"duplicate invariant name {inv.name!r}")
    REGISTRY[inv.name] = inv
    return inv


def invariant(name: str, layer: str, description: str):
    """Decorator registering a quiescent check function."""

    def decorate(fn: CheckFn) -> CheckFn:
        register_invariant(
            Invariant(name=name, layer=layer, description=description, check=fn)
        )
        return fn

    return decorate


def declare_invariant(name: str, layer: str, description: str) -> Invariant:
    """Register an instrumented invariant (enforced by checker hooks)."""
    return register_invariant(
        Invariant(name=name, layer=layer, description=description, check=None)
    )


def get_invariant(name: str) -> Invariant:
    inv = REGISTRY.get(name)
    if inv is None:
        raise KeyError(
            f"unknown invariant {name!r}; known: {sorted(REGISTRY)}"
        )
    return inv


def all_invariants() -> Tuple[Invariant, ...]:
    """Every registered invariant, sorted by name (deterministic order)."""
    return tuple(REGISTRY[name] for name in sorted(REGISTRY))


def invariants_for(layers: Optional[Iterable[str]] = None) -> Tuple[Invariant, ...]:
    """Registered invariants restricted to ``layers`` (None = all)."""
    if layers is None:
        return all_invariants()
    wanted = set(layers)
    unknown = wanted - set(LAYERS)
    if unknown:
        raise ValueError(f"unknown invariant layers {sorted(unknown)}")
    return tuple(inv for inv in all_invariants() if inv.layer in wanted)

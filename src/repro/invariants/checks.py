"""The built-in invariant suite, one registration per guarantee.

Quiescent checks (functions below) run between events over the whole
simulation state; instrumented invariants (declared at the bottom) are
enforced inline by :class:`~repro.invariants.checker.InvariantChecker`
hooks where the transient state they guard is visible — see
``docs/invariants.md`` for the full catalogue.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from .registry import CheckContext, declare_invariant, invariant

#: Event labels that legitimately leave an ever-attached member detached
#: without a pending recovery rejoin: ROST switch-overflow rejoins and the
#: centralized protocols' eviction re-placements.
_DETACHED_RETRY_LABELS = frozenset(
    {"rost-overflow-retry", "ordered-eviction-rejoin"}
)


def _root_reach(ctx: CheckContext) -> dict:
    """BFS from the root, cached per sweep and shared by the tree checks.

    Returns ``{"order": [(node, depth)...], "seen": {id...},
    "revisits": [id...]}`` — ``revisits`` non-empty means a node was
    reachable twice (a cycle or a duplicated child link), in which case
    the traversal still terminates because each id expands once.
    """
    memo = ctx.cache.get("root-reach")
    if memo is None:
        order = []
        seen = set()
        revisits = []
        queue = deque([(ctx.tree.root, 0)])
        while queue:
            node, depth = queue.popleft()
            if node.member_id in seen:
                revisits.append(node.member_id)
                continue
            seen.add(node.member_id)
            order.append((node, depth))
            queue.extend((child, depth + 1) for child in node.children)
        memo = {"order": order, "seen": seen, "revisits": revisits}
        ctx.cache["root-reach"] = memo
    return memo


@invariant(
    "tree-acyclicity",
    "tree",
    "No member's parent chain revisits a member (the overlay is a forest).",
)
def check_tree_acyclicity(ctx: CheckContext) -> Iterator[dict]:
    members = ctx.tree.members
    terminates: set = set()
    reported: set = set()
    for start in members.values():
        path = []
        path_ids: set = set()
        cur = start
        cycle_id = None
        while cur is not None:
            cid = cur.member_id
            if cid in terminates:
                break
            if cid in path_ids:
                cycle_id = cid
                break
            path.append(cid)
            path_ids.add(cid)
            cur = cur.parent
        # Either way, never rescan these members from another start: a
        # chain into a cycle is reported once, for the cycle itself.
        terminates.update(path_ids)
        if cycle_id is not None and cycle_id not in reported:
            cycle = tuple(path[path.index(cycle_id):])
            reported.update(cycle)
            yield {
                "message": (
                    f"parent chain from member {start.member_id} revisits "
                    f"member {cycle_id}"
                ),
                "node_ids": cycle,
            }


@invariant(
    "tree-single-parent",
    "tree",
    "Every member appears in exactly its parent's children list, with a "
    "consistent backlink.",
)
def check_single_parent(ctx: CheckContext) -> Iterator[dict]:
    members = ctx.tree.members
    listed_in: dict = {}
    for node in members.values():
        for child in node.children:
            listed_in[child.member_id] = listed_in.get(child.member_id, 0) + 1
            if child.parent is not node:
                other = child.parent.member_id if child.parent else None
                yield {
                    "message": (
                        f"member {child.member_id} is a child of "
                        f"{node.member_id} but points at parent {other}"
                    ),
                    "node_ids": (child.member_id, node.member_id),
                }
    for node in members.values():
        count = listed_in.get(node.member_id, 0)
        expected = 0 if node.parent is None else 1
        if count != expected:
            yield {
                "message": (
                    f"member {node.member_id} appears in {count} children "
                    f"lists (expected {expected})"
                ),
                "node_ids": (node.member_id,),
                "snapshot": {"listed_in": count, "has_parent": expected == 1},
            }


@invariant(
    "tree-degree-cap",
    "tree",
    "No member forwards to more children than its bandwidth-derived "
    "out-degree cap allows.",
)
def check_degree_cap(ctx: CheckContext) -> Iterator[dict]:
    for node in ctx.tree.members.values():
        if len(node.children) > node.out_degree_cap:
            yield {
                "message": (
                    f"member {node.member_id} has {len(node.children)} "
                    f"children, cap {node.out_degree_cap}"
                ),
                "node_ids": (node.member_id,),
                "snapshot": {
                    "children": len(node.children),
                    "out_degree_cap": node.out_degree_cap,
                    "bandwidth": node.bandwidth,
                },
            }


@invariant(
    "tree-attachment",
    "tree",
    "Attached flags, layer numbers and the attached-count match "
    "reachability from the root.",
)
def check_attachment(ctx: CheckContext) -> Iterator[dict]:
    tree = ctx.tree
    reach = _root_reach(ctx)
    for node, depth in reach["order"]:
        if tree.members.get(node.member_id) is not node:
            yield {
                "message": f"member {node.member_id} reachable but not registered",
                "node_ids": (node.member_id,),
            }
        if not node.attached:
            yield {
                "message": f"member {node.member_id} reachable but flagged detached",
                "node_ids": (node.member_id,),
            }
        if node.layer != depth:
            yield {
                "message": (
                    f"member {node.member_id} at depth {depth} carries "
                    f"layer {node.layer}"
                ),
                "node_ids": (node.member_id,),
                "snapshot": {"depth": depth, "layer": node.layer},
            }
    seen = reach["seen"]
    if tree.num_attached != len(seen):
        yield {
            "message": (
                f"attached-count drift: counter {tree.num_attached}, "
                f"reachable {len(seen)}"
            ),
            "snapshot": {"counter": tree.num_attached, "reachable": len(seen)},
        }
    for member_id, node in tree.members.items():
        if node.attached and member_id not in seen:
            yield {
                "message": f"member {member_id} flagged attached but unreachable",
                "node_ids": (member_id,),
            }
        if not node.attached and node.layer != -1:
            yield {
                "message": (
                    f"detached member {member_id} carries layer {node.layer}"
                ),
                "node_ids": (member_id,),
            }


@invariant(
    "tree-orphan-recovery",
    "tree",
    "Every detached ever-attached subtree root is inside an active "
    "recovery: a pending rejoin timer or a protocol re-placement retry.",
)
def check_orphan_recovery(ctx: CheckContext) -> Iterator[dict]:
    pending = getattr(ctx.churn, "_pending_rejoins", {})
    unaccounted = []
    for node in ctx.tree.members.values():
        if node.attached or node.is_root or node.parent is not None:
            continue
        if not node.ever_attached:
            continue  # still joining; the join-retry loop owns it
        timer = pending.get(node.member_id)
        if timer is not None and not timer.cancelled:
            continue
        unaccounted.append(node.member_id)
    if not unaccounted:
        return
    # Protocol-level re-placements (switch overflow, eviction rejoins)
    # track their member only through the closure of a labeled retry
    # event, so they are accounted in aggregate.
    allowance = sum(
        1
        for event in ctx.sim.event_queue.live_events()
        if event.label in _DETACHED_RETRY_LABELS
    )
    if len(unaccounted) > allowance:
        yield {
            "message": (
                f"{len(unaccounted)} detached ever-attached subtree roots "
                f"but only {allowance} pending re-placement retries"
            ),
            "node_ids": tuple(sorted(unaccounted)),
            "snapshot": {"allowance": allowance},
        }


@invariant(
    "sim-queue-accounting",
    "sim",
    "The event queue's live counter equals its actual number of pending "
    "non-cancelled events.",
)
def check_queue_accounting(ctx: CheckContext) -> Iterator[dict]:
    queue = ctx.sim.event_queue
    live = sum(1 for _ in queue.live_events())
    if live != len(queue):
        yield {
            "message": (
                f"event-queue accounting drift: counter {len(queue)}, "
                f"live entries {live}"
            ),
            "snapshot": {"counter": len(queue), "live": live},
        }


@invariant(
    "fault-atomic-cofail",
    "faults",
    "Members named in one correlated fault event all departed at the same "
    "virtual instant (no survivor lingers past the event).",
)
def check_atomic_cofail(ctx: CheckContext) -> Iterator[dict]:
    pending = getattr(ctx.checker, "_cofail_pending", None)
    if not pending:
        return
    members = ctx.tree.members
    done = []
    for ids, when in pending.items():
        if ctx.now <= when:
            continue  # same-instant events may still be draining
        done.append(ids)
        survivors = sorted(i for i in ids if i in members)
        if survivors:
            yield {
                "message": (
                    f"co-failure at t={when:.3f} left {len(survivors)} of "
                    f"{len(ids)} victims alive"
                ),
                "node_ids": tuple(survivors),
                "snapshot": {"failed_at": when, "co_failed": sorted(ids)},
            }
    for ids in done:
        del pending[ids]


# -- instrumented invariants (enforced by InvariantChecker hooks) ------------------

declare_invariant(
    "sim-clock-monotonic",
    "sim",
    "Virtual time never moves backwards: every fired event's timestamp is "
    ">= the previous event's and equals the simulator clock.",
)
declare_invariant(
    "sim-no-fire-after-cancel",
    "sim",
    "A cancelled event never fires.",
)
declare_invariant(
    "rost-switch-btp-order",
    "rost",
    "A completed ROST switch never decreases the BTP ordering: the "
    "promoted member's (verified) BTP is >= its demoted ex-parent's.",
)
declare_invariant(
    "rost-lock-no-double-grant",
    "rost",
    "The switch-locking protocol never grants overlapping locks: no "
    "member participates in two switch/promote operations within one "
    "lock-hold window.",
)
declare_invariant(
    "recovery-episode-conservation",
    "recovery",
    "Episode accounting conserves packets: each priced member adds "
    "exactly the episode's gap, and 0 <= repaired <= gap.",
)
declare_invariant(
    "recovery-residual-covers-rate",
    "recovery",
    "When a striped (CER) recovery group's live residual bandwidth sums "
    "to at least the stream rate, the episode's repair coverage is full.",
)
declare_invariant(
    "recovery-backfill-window",
    "recovery",
    "Post-rejoin backfill never delivers sequence numbers outside the new "
    "parent's buffer window (no duplicate / out-of-window delivery).",
)

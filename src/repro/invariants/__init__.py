"""Runtime invariant checking for simulation runs.

The declarative registry (:mod:`~repro.invariants.registry`) names every
guarantee the simulator is supposed to uphold, layer by layer — sim
kernel, overlay tree, ROST switching, recovery pricing, fault injection —
and :class:`InvariantChecker` enforces the suite against any
:class:`~repro.simulation.churn.ChurnSimulation` without modifying
protocol code::

    sim = ChurnSimulation(config, factory, check_invariants=True)
    sim.run()   # raises InvariantError on the first violation

or, accumulating for a report (the campaign ``--check-invariants`` path)::

    checker = InvariantChecker(strict=False)
    sim = ChurnSimulation(config, factory, check_invariants=checker)
    sim.run()
    checker.violations   # structured InvariantViolation records

See ``docs/invariants.md`` for the invariant catalogue and how to add
a new checker.
"""

from .checker import InvariantChecker
from .registry import (
    LAYERS,
    REGISTRY,
    CheckContext,
    Invariant,
    InvariantViolation,
    all_invariants,
    declare_invariant,
    get_invariant,
    invariant,
    invariants_for,
    register_invariant,
)

# Importing the checker module registers the built-in suite (see
# repro.invariants.checks); nothing else to do here.

__all__ = [
    "LAYERS",
    "REGISTRY",
    "CheckContext",
    "Invariant",
    "InvariantChecker",
    "InvariantViolation",
    "all_invariants",
    "declare_invariant",
    "get_invariant",
    "invariant",
    "invariants_for",
    "register_invariant",
]

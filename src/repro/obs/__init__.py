"""Unified observability: structured tracing, metrics, and profiling.

``repro.obs`` observes a run from the *outside*, exactly like
:mod:`repro.invariants`: it chains the engine's ``trace_pre``/``trace_post``
hooks, the churn/recovery observer callbacks, and per-instance wraps of a
handful of overlay operations.  No protocol or kernel code is modified and
nothing is installed unless a channel is explicitly enabled, so the event
hot loop keeps its ``trace_pre is None`` fast path when observability is
off.

Three independent channels (see ``docs/observability.md``):

* **trace** — typed JSONL records (:mod:`repro.obs.trace`,
  :mod:`repro.obs.schema`).  Records carry only virtual time and are
  byte-identical for a given seed at any ``--jobs`` value.
* **metrics** — per-subsystem counters/gauges/histograms
  (:mod:`repro.obs.metrics`), exported into runner/campaign JSON reports.
* **profile** — wall-clock attribution per event type and per pool stage
  (:mod:`repro.obs.profile`).  Wall times never enter the trace channel.
"""

from .attach import ObsAttachment
from .capture import (
    ENV_METRICS,
    ENV_PROFILE,
    ENV_TRACE,
    ENV_TRACE_EVENTS,
    ObsUnit,
    current_capture,
    emit_unit,
    job_capture,
    metrics_enabled,
    obs_active,
    obs_env,
    obs_fingerprint,
    profile_enabled,
    trace_enabled,
    trace_events_enabled,
)
from .metrics import (
    NULL_INSTRUMENT,
    SUBSYSTEMS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    aggregate_units,
    render_metrics_section,
)
from .profile import (
    Profiler,
    drain_stages,
    record_stage,
    render_profile_section,
)
from .schema import (
    RECORD_TYPES,
    TRACE_SCHEMA_VERSION,
    TraceSchemaError,
    validate_line,
    validate_record,
    validate_trace_lines,
)
from .trace import TraceWriter

__all__ = [
    "ENV_METRICS",
    "ENV_PROFILE",
    "ENV_TRACE",
    "ENV_TRACE_EVENTS",
    "NULL_INSTRUMENT",
    "RECORD_TYPES",
    "SUBSYSTEMS",
    "TRACE_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsAttachment",
    "ObsUnit",
    "Profiler",
    "TraceSchemaError",
    "TraceWriter",
    "aggregate_units",
    "current_capture",
    "drain_stages",
    "emit_unit",
    "job_capture",
    "metrics_enabled",
    "obs_active",
    "obs_env",
    "obs_fingerprint",
    "profile_enabled",
    "record_stage",
    "render_metrics_section",
    "render_profile_section",
    "trace_enabled",
    "trace_events_enabled",
    "validate_line",
    "validate_record",
    "validate_trace_lines",
]

"""Trace record schemas and validation.

Every line a :class:`~repro.obs.trace.TraceWriter` emits is one JSON
object with a ``type`` field naming its record type.  The schema is
deliberately strict — unknown fields are rejected — because the trace
channel's contract is *virtual-time determinism*: a wall-clock field
sneaking into a record would silently break byte-identity across
``--jobs`` values and repeat runs.  Wall-time data belongs in the
profile channel (:mod:`repro.obs.profile`), which has no schema here by
design.

Record types (full field semantics in ``docs/observability.md``):

``run_start``      one per observed simulation, emitted at attach time
``event``          one per dispatched engine event (opt-in, high volume)
``fault``          a fault-campaign timer fired (label ``fault:*``)
``switch``         a tree restructuring op (ROST swap or promotion)
``disruption``     a member failed abruptly, detaching a subtree
``episode_open``   a disrupted child entered a recovery episode
``episode_close``  an orphan re-attached; its episode ended
``stripe_outage_open``   a member lost one stripe of a K-tree run
``stripe_outage_close``  that stripe recovered (or the member departed)
``run_end``        one per observed simulation, with run totals
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Tuple

TRACE_SCHEMA_VERSION = 1

_NUM = (int, float)

# type -> {field: allowed types}; every field listed here is required.
_REQUIRED: Dict[str, Dict[str, Tuple[type, ...]]] = {
    "run_start": {
        "v": (int,),
        "kind": (str,),
        "protocol": (str,),
        "population": (int,),
        "seed": (int,),
        "horizon_s": _NUM,
    },
    "event": {"t": _NUM, "seq": (int,), "label": (str,), "priority": (int,)},
    "fault": {"t": _NUM, "label": (str,)},
    "switch": {"t": _NUM, "op": (str,), "member": (int,)},
    "disruption": {
        "t": _NUM,
        "cause": (str,),
        "failed": (int,),
        "subtree_size": (int,),
        "in_window": (bool,),
        "co_failed": (list,),
    },
    "episode_open": {"t": _NUM, "member": (int,), "cause": (str,)},
    "episode_close": {"t": _NUM, "member": (int,)},
    "stripe_outage_open": {
        "t": _NUM,
        "member": (int,),
        "stripe": (int,),
        "cause": (str,),
    },
    "stripe_outage_close": {"t": _NUM, "member": (int,), "stripe": (int,)},
    "run_end": {
        "t": _NUM,
        "events_processed": (int,),
        "disruptions": (int,),
        "switches": (int,),
    },
}

_OPTIONAL: Dict[str, Dict[str, Tuple[type, ...]]] = {
    "run_start": {
        "scenario": (str,),
        "scale": _NUM,
        "replica": (int,),
        "switch_interval_s": _NUM,
        "stripe": (int,),
        "trees": (int,),
    },
}

_SWITCH_OPS = ("swap", "promote")

RECORD_TYPES = tuple(sorted(_REQUIRED))


class TraceSchemaError(ValueError):
    """A trace record or line violates the schema."""


def _check_type(rtype: str, field: str, value: object, allowed: Tuple[type, ...]) -> None:
    # bool is a subclass of int; reject it anywhere an int/float is
    # expected so `"seq": true` cannot slip through.
    if isinstance(value, bool) and bool not in allowed:
        raise TraceSchemaError(
            f"{rtype}.{field}: expected {allowed}, got bool"
        )
    if not isinstance(value, allowed):
        raise TraceSchemaError(
            f"{rtype}.{field}: expected {allowed}, got {type(value).__name__}"
        )


def validate_record(record: object) -> None:
    """Raise :class:`TraceSchemaError` unless ``record`` is schema-valid."""
    if not isinstance(record, dict):
        raise TraceSchemaError(f"record must be an object, got {type(record).__name__}")
    rtype = record.get("type")
    if rtype not in _REQUIRED:
        raise TraceSchemaError(f"unknown record type {rtype!r}")
    required = _REQUIRED[rtype]
    optional = _OPTIONAL.get(rtype, {})
    for field, allowed in required.items():
        if field not in record:
            raise TraceSchemaError(f"{rtype}: missing required field {field!r}")
        _check_type(rtype, field, record[field], allowed)
    for field, value in record.items():
        if field == "type" or field in required:
            continue
        if field not in optional:
            raise TraceSchemaError(f"{rtype}: unexpected field {field!r}")
        _check_type(rtype, field, value, optional[field])
    if rtype == "run_start" and record["v"] != TRACE_SCHEMA_VERSION:
        raise TraceSchemaError(
            f"run_start.v: schema version {record['v']} != {TRACE_SCHEMA_VERSION}"
        )
    if rtype == "switch" and record["op"] not in _SWITCH_OPS:
        raise TraceSchemaError(f"switch.op: {record['op']!r} not in {_SWITCH_OPS}")
    if rtype == "disruption":
        co_failed = record["co_failed"]
        if any(isinstance(m, bool) or not isinstance(m, int) for m in co_failed):
            raise TraceSchemaError("disruption.co_failed: members must be ints")
        if sorted(co_failed) != co_failed:
            # Sorted co-failure sets are part of the determinism contract:
            # the source set is unordered, so emission must canonicalize.
            raise TraceSchemaError("disruption.co_failed: must be sorted")


def validate_line(line: str) -> Dict[str, object]:
    """Parse and validate one JSONL line; returns the record."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceSchemaError(f"invalid JSON: {exc}") from exc
    validate_record(record)
    return record


def validate_trace_lines(lines: Iterable[str]) -> int:
    """Validate an entire trace; returns the number of records.

    Errors are prefixed with the 1-based line number so a failed CI
    validation pass points straight at the offending record.
    """
    count = 0
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            raise TraceSchemaError(f"line {lineno}: blank line in trace")
        try:
            validate_line(line)
        except TraceSchemaError as exc:
            raise TraceSchemaError(f"line {lineno}: {exc}") from None
        count += 1
    return count

"""Wall-clock attribution: per-event-type and per-pool-stage timing.

This is the one observability channel that is *allowed* to be
nondeterministic.  Profile data never enters the trace file or the
``--json`` report; it surfaces only in the ``--profile`` stdout section,
so traced runs stay byte-identical while still telling you which event
type or pool stage is eating the wall clock.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterable, List, Optional

from .capture import profile_enabled


class Profiler:
    """Accumulates (calls, wall seconds) per event key.

    The engine's ``profile`` hook calls :meth:`record` once per
    dispatched event; the key is the event label (or the action's
    qualname for unlabeled events), so cost lands on the subsystem that
    scheduled the work.
    """

    __slots__ = ("_acc",)

    def __init__(self) -> None:
        self._acc: Dict[str, List[float]] = {}

    def record(self, key: str, wall_s: float) -> None:
        entry = self._acc.get(key)
        if entry is None:
            self._acc[key] = [1, wall_s]
        else:
            entry[0] += 1
            entry[1] += wall_s

    def as_dict(self) -> Dict[str, object]:
        return {
            "by_key": {
                key: {"calls": int(calls), "wall_s": round(wall, 6)}
                for key, (calls, wall) in sorted(self._acc.items())
            }
        }


# Coarse pipeline-stage accounting (submit/gather/retry in the pool).
# Module-level because the pool has no per-run attachment to hang state
# on; record_stage() is a no-op unless REPRO_OBS_PROFILE is set.
_stages: Dict[str, List[float]] = {}


def record_stage(name: str, wall_s: float) -> None:
    if not profile_enabled():
        return
    entry = _stages.get(name)
    if entry is None:
        _stages[name] = [1, wall_s]
    else:
        entry[0] += 1
        entry[1] += wall_s


def stage_timer():
    """Start a stage clock; pairs with record_stage(name, clock())."""
    started = perf_counter()
    return lambda: perf_counter() - started


def drain_stages() -> Dict[str, Dict[str, float]]:
    """Return and clear accumulated stage timings."""
    out = {
        name: {"calls": int(calls), "wall_s": round(wall, 6)}
        for name, (calls, wall) in sorted(_stages.items())
    }
    _stages.clear()
    return out


def render_profile_section(
    profile_units: Iterable[Dict[str, object]],
    stages: Optional[Dict[str, Dict[str, float]]] = None,
    top: int = 25,
) -> str:
    """Human-readable ``--profile`` block: hottest event types + stages."""
    merged: Dict[str, List[float]] = {}
    n_units = 0
    for unit in profile_units:
        n_units += 1
        for key, entry in unit.get("by_key", {}).items():
            acc = merged.get(key)
            if acc is None:
                merged[key] = [entry["calls"], entry["wall_s"]]
            else:
                acc[0] += entry["calls"]
                acc[1] += entry["wall_s"]
    lines = [f"== profile ({n_units} runs) =="]
    ranked = sorted(merged.items(), key=lambda kv: (-kv[1][1], kv[0]))
    dropped = len(ranked) - top
    for key, (calls, wall) in ranked[:top]:
        per_call = wall / calls * 1e6 if calls else 0.0
        lines.append(
            f"  {key:<40} calls={int(calls):>8}  wall={wall:9.4f}s"
            f"  {per_call:8.1f}us/call"
        )
    if dropped > 0:
        lines.append(f"  ... {dropped} more event types (raise top= to see them)")
    if stages:
        lines.append("  -- pool stages --")
        for name, entry in stages.items():
            lines.append(
                f"  {name:<40} calls={entry['calls']:>8}"
                f"  wall={entry['wall_s']:9.4f}s"
            )
    return "\n".join(lines)

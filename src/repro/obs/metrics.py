"""Per-subsystem metrics registry: counters, gauges, histograms.

Design constraints (see ISSUE 4 / docs/observability.md):

* **Near-zero cost when disabled.**  Call sites that cannot know at
  attach time whether metrics are on hold :data:`NULL_INSTRUMENT` — a
  module-level null sink whose methods are no-ops — instead of branching
  or looking the instrument up per call.  The event hot loop itself goes
  further: :class:`~repro.obs.attach.ObsAttachment` installs *no hooks at
  all* when every channel is off, so the engine keeps its
  ``trace_pre is None`` fast path.
* **No dict lookups in the hot loop.**  Instruments are resolved once at
  attach/registration time and bound to locals or attributes; ``inc`` /
  ``observe`` touch only slots.
* **Deterministic snapshots.**  Snapshots carry only simulation-derived
  quantities (counts, virtual-time totals); wall-clock data lives in the
  separate profile channel.  Snapshot keys are sorted so serialized
  reports are byte-stable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

#: The subsystems an instrument may register under.  New subsystems must
#: add themselves here and document their metrics in
#: ``docs/observability.md`` (see CONTRIBUTING.md).
SUBSYSTEMS = ("sim", "overlay", "rost", "recovery", "faults", "experiments")


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins numeric value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary: count / total / min / max.

    Full quantile sketches are overkill for run-level reporting and
    would bloat JSON reports; count+total+extrema reconcile exactly and
    merge losslessly across units.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        if self.count == 0:
            self.min = value
            self.max = value
        elif value < self.min:
            self.min = value
        elif value > self.max:
            self.max = value
        self.count += 1
        self.total += value

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


class _NullInstrument:
    """No-op sink standing in for any instrument when metrics are off."""

    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


#: Shared module-level null sink; safe to bind anywhere an instrument is
#: expected.  All mutating methods are no-ops and ``value`` reads as 0.
NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Namespaced instrument factory for one observed run."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, str], Counter] = {}
        self._gauges: Dict[Tuple[str, str], Gauge] = {}
        self._histograms: Dict[Tuple[str, str], Histogram] = {}

    @staticmethod
    def _key(subsystem: str, name: str) -> Tuple[str, str]:
        if subsystem not in SUBSYSTEMS:
            raise ValueError(
                f"unknown subsystem {subsystem!r}; register it in "
                f"repro.obs.metrics.SUBSYSTEMS (one of {SUBSYSTEMS})"
            )
        if not name:
            raise ValueError("metric name must be non-empty")
        return (subsystem, name)

    def counter(self, subsystem: str, name: str) -> Counter:
        key = self._key(subsystem, name)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, subsystem: str, name: str) -> Gauge:
        key = self._key(subsystem, name)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, subsystem: str, name: str) -> Histogram:
        key = self._key(subsystem, name)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Sorted, JSON-ready view of every registered instrument."""
        return {
            "counters": {
                f"{sub}.{name}": int(c.value)
                for (sub, name), c in sorted(self._counters.items())
            },
            "gauges": {
                f"{sub}.{name}": g.value
                for (sub, name), g in sorted(self._gauges.items())
            },
            "histograms": {
                f"{sub}.{name}": h.as_dict()
                for (sub, name), h in sorted(self._histograms.items())
            },
        }


def aggregate_units(units: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Merge per-run metric units into campaign/runner-level totals.

    Counters sum; histograms merge count/total and widen extrema; gauges
    are per-run snapshots and do not aggregate meaningfully, so only
    their count of contributing units is reported.
    """
    counters: Dict[str, int] = {}
    histograms: Dict[str, Dict[str, float]] = {}
    n_units = 0
    for unit in units:
        n_units += 1
        for key, value in unit.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + int(value)
        for key, hist in unit.get("histograms", {}).items():
            merged = histograms.get(key)
            if merged is None:
                histograms[key] = dict(hist)
            elif hist["count"]:
                if not merged["count"] or hist["min"] < merged["min"]:
                    merged["min"] = hist["min"]
                if not merged["count"] or hist["max"] > merged["max"]:
                    merged["max"] = hist["max"]
                merged["count"] += hist["count"]
                merged["total"] += hist["total"]
    return {
        "units": n_units,
        "counters": dict(sorted(counters.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def render_metrics_section(totals: Dict[str, object]) -> str:
    """Human-readable metrics block for the runner's table output."""
    lines: List[str] = [f"== metrics ({totals['units']} runs) =="]
    counters = totals.get("counters", {})
    if counters:
        width = max(len(key) for key in counters)
        for key, value in counters.items():
            lines.append(f"  {key.ljust(width)}  {value}")
    for key, hist in totals.get("histograms", {}).items():
        mean = hist["total"] / hist["count"] if hist["count"] else 0.0
        lines.append(
            f"  {key}  count={hist['count']} mean={mean:.2f} "
            f"min={hist['min']:g} max={hist['max']:g}"
        )
    return "\n".join(lines)

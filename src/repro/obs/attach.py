"""ObsAttachment: wires tracing/metrics/profiling onto one simulation.

Follows the :class:`repro.invariants.InvariantChecker` attachment
pattern exactly — the observation surface is the engine's
``trace_pre``/``trace_post``/``profile`` hooks, the churn simulation's
observer callbacks, and per-instance wraps of a handful of overlay
operations.  Protocol and kernel code is never modified, every hook
chains the previously-installed callback, and when no channel is
enabled :meth:`attach` installs nothing at all, preserving the engine's
``trace_pre is None`` fast path.

Counting is done with plain integer attributes in the hook closures
(cheaper than any instrument indirection); the metrics registry is
populated once at :meth:`finalize`.  The registry is therefore a pure
export surface and the counts stay independent of the legacy
:mod:`repro.metrics` collectors — which is what lets the reconciliation
tests assert the two agree.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .capture import (
    ObsUnit,
    metrics_enabled,
    profile_enabled,
    trace_enabled,
    trace_events_enabled,
)
from .metrics import Histogram, MetricsRegistry
from .profile import Profiler
from .schema import TRACE_SCHEMA_VERSION
from .trace import TraceWriter


def _event_profile_key(event) -> str:
    label = event.label
    if label:
        return label
    action = event.action
    return getattr(action, "__qualname__", type(action).__name__)


class ObsAttachment:
    """One attachment observes one simulation run.

    ``trace``/``trace_events``/``metrics``/``profile`` default to the
    corresponding ``REPRO_OBS_*`` environment flags (the channel the CLI
    uses); tests pass them explicitly.  ``meta`` identifies the run in
    artifacts (protocol, population, seed, scenario, ...) and supplies
    the optional fields of the ``run_start`` record.
    """

    def __init__(
        self,
        meta: Optional[Dict[str, object]] = None,
        trace: Optional[bool] = None,
        trace_events: Optional[bool] = None,
        metrics: Optional[bool] = None,
        profile: Optional[bool] = None,
        trace_path: Optional[str] = None,
    ) -> None:
        self.meta: Dict[str, object] = dict(meta or {})
        self._trace = trace_enabled() if trace is None else trace
        if trace_path is not None:
            self._trace = True
        self._trace_events = (
            trace_events_enabled() if trace_events is None else trace_events
        )
        self._metrics = metrics_enabled() if metrics is None else metrics
        self._profile = profile_enabled() if profile is None else profile
        self.writer: Optional[TraceWriter] = (
            TraceWriter(trace_path) if self._trace else None
        )
        self.registry: Optional[MetricsRegistry] = (
            MetricsRegistry() if self._metrics else None
        )
        self.profiler: Optional[Profiler] = Profiler() if self._profile else None

        # Hot-loop tallies (plain ints; exported to the registry at
        # finalize).  All are virtual-time deterministic.
        self._events_dispatched = 0
        self._fault_activations = 0
        self._disruption_failures = 0
        self._disruption_events = 0  # in-window affected members (legacy mirror)
        self._switches = 0
        self._promotions = 0
        self._opt_reconnections = 0
        self._failure_reconnections = 0
        self._control_messages = 0
        self._subtree_hist = Histogram()
        # scheme name -> [episodes, gap_packets, repaired_packets]
        self._recovery: Dict[str, List[int]] = {}

        self._churn = None
        self._sim = None
        self._finalized = False

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._trace or self._metrics or self._profile

    def attach(self, target) -> "ObsAttachment":
        """Attach to a ChurnSimulation (or anything exposing ``.churn``).

        A :class:`~repro.simulation.streaming.RecoverySimulation` is
        recognised by its ``observer`` attribute and gets the recovery
        episode surface wired automatically.
        """
        if not self.enabled:
            return self
        churn = getattr(target, "churn", None)
        if churn is None:
            churn = target
        self._churn = churn
        self._sim = churn.sim
        self._emit_run_start(churn)
        self._chain_engine_hooks(churn.sim)
        self._chain_observers(churn)
        self._wrap_tree_switches(churn)
        self._wrap_messages(churn)
        observer = getattr(target, "observer", None)
        if observer is not None:
            self.attach_recovery(observer)
        return self

    def attach_engine(self, sim) -> "ObsAttachment":
        """Engine-only attachment for bare :class:`Simulator` users.

        Installs just the event/fault trace hooks and the profiler; no
        overlay surface is touched.  With every channel disabled this is
        a strict no-op (used by the hot-loop overhead regression test).
        """
        if not self.enabled:
            return self
        self._sim = sim
        self._chain_engine_hooks(sim)
        return self

    # -- wiring ------------------------------------------------------------------------

    def _emit_run_start(self, churn) -> None:
        writer = self.writer
        meta = self.meta
        config = churn.config
        meta.setdefault(
            "kind", "recovery" if "scenario" in meta else "churn"
        )
        meta.setdefault(
            "protocol",
            getattr(churn.protocol, "name", None)
            or type(churn.protocol).__name__,
        )
        meta.setdefault("population", int(config.workload.target_population))
        meta.setdefault("seed", int(config.seed))
        if writer is None:
            return
        record: Dict[str, object] = {
            "type": "run_start",
            "v": TRACE_SCHEMA_VERSION,
            "kind": str(meta["kind"]),
            "protocol": str(meta["protocol"]),
            "population": int(meta["population"]),
            "seed": int(meta["seed"]),
            "horizon_s": float(config.horizon_s),
        }
        for optional in (
            "scenario",
            "scale",
            "replica",
            "switch_interval_s",
            "stripe",
            "trees",
        ):
            value = meta.get(optional)
            if value is not None:
                record[optional] = value
        writer.emit(record)

    def _chain_engine_hooks(self, sim) -> None:
        writer = self.writer
        if writer is not None or self._metrics:
            prev_pre = sim.trace_pre
            prev_post = sim.trace_post
            trace_events = self._trace_events and writer is not None

            def pre(event) -> None:
                if prev_pre is not None:
                    prev_pre(event)
                label = event.label
                if trace_events:
                    writer.emit(
                        {
                            "type": "event",
                            "t": float(event.time),
                            "seq": int(event.seq),
                            "label": label,
                            "priority": int(event.priority),
                        }
                    )
                if label and label.startswith("fault:"):
                    self._fault_activations += 1
                    if writer is not None:
                        writer.emit(
                            {
                                "type": "fault",
                                "t": float(event.time),
                                "label": label,
                            }
                        )

            def post(event) -> None:
                if prev_post is not None:
                    prev_post(event)
                self._events_dispatched += 1

            sim.trace_pre = pre
            sim.trace_post = post
        if self.profiler is not None:
            prev_profile = sim.profile
            profiler = self.profiler

            def profile(event, wall_s: float) -> None:
                if prev_profile is not None:
                    prev_profile(event, wall_s)
                profiler.record(_event_profile_key(event), wall_s)

            sim.profile = profile

    def _chain_observers(self, churn) -> None:
        writer = self.writer
        sim = churn.sim
        metrics = churn.metrics

        prev_disruption = churn.disruption_observer

        def on_disruption(event) -> None:
            if prev_disruption is not None:
                prev_disruption(event)
            self._disruption_failures += 1
            if event.in_window:
                self._disruption_events += event.subtree_size - 1
            self._subtree_hist.observe(event.subtree_size)
            if writer is not None:
                writer.emit(
                    {
                        "type": "disruption",
                        "t": float(event.time),
                        "cause": event.cause,
                        "failed": int(event.failed.member_id),
                        "subtree_size": int(event.subtree_size),
                        "in_window": bool(event.in_window),
                        "co_failed": sorted(
                            int(m) for m in event.co_failed_ids
                        ),
                    }
                )
                for child in sorted(
                    event.failed.children, key=lambda n: n.member_id
                ):
                    writer.emit(
                        {
                            "type": "episode_open",
                            "t": float(event.time),
                            "member": int(child.member_id),
                            "cause": event.cause,
                        }
                    )

        churn.disruption_observer = on_disruption

        prev_reattach = churn.reattach_observer

        def on_reattach(now: float, orphan) -> None:
            if prev_reattach is not None:
                prev_reattach(now, orphan)
            if metrics.in_window(now):
                self._failure_reconnections += 1
            if writer is not None:
                writer.emit(
                    {
                        "type": "episode_close",
                        "t": float(now),
                        "member": int(orphan.member_id),
                    }
                )

        churn.reattach_observer = on_reattach

        protocol = churn.protocol
        if hasattr(protocol, "overhead_callback"):
            prev_overhead = protocol.overhead_callback

            def on_overhead(n: int) -> None:
                if prev_overhead is not None:
                    prev_overhead(n)
                if metrics.in_window(sim.now):
                    self._opt_reconnections += n

            protocol.overhead_callback = on_overhead

    def _wrap_tree_switches(self, churn) -> None:
        tree = churn.tree
        sim = churn.sim
        writer = self.writer
        orig_swap = tree.swap_with_parent
        orig_promote = tree.promote_to_grandparent

        def traced_swap(child, overflow_priority):
            result = orig_swap(child, overflow_priority)
            self._switches += 1
            if writer is not None:
                writer.emit(
                    {
                        "type": "switch",
                        "t": float(sim.now),
                        "op": "swap",
                        "member": int(child.member_id),
                    }
                )
            return result

        def traced_promote(node):
            result = orig_promote(node)
            self._promotions += 1
            if writer is not None:
                writer.emit(
                    {
                        "type": "switch",
                        "t": float(sim.now),
                        "op": "promote",
                        "member": int(node.member_id),
                    }
                )
            return result

        tree.swap_with_parent = traced_swap
        tree.promote_to_grandparent = traced_promote

    def _wrap_messages(self, churn) -> None:
        stats = churn.ctx.messages
        # Anything recorded before attach (normally nothing) still counts.
        self._control_messages = stats.total
        orig_record = stats.record

        def counted_record(message_type, count: int = 1) -> None:
            orig_record(message_type, count)
            self._control_messages += count

        stats.record = counted_record

    def attach_recovery(self, observer) -> "ObsAttachment":
        """Wrap the recovery observer's episode pricing (per scheme)."""
        if not (self._trace or self._metrics):
            return self
        orig_apply = observer._apply_episode

        def counted_apply(scheme, now, members, sources, gap_packets, backfill=None):
            result = observer.results[scheme.name]
            repaired_before = result.repaired_packets_total
            orig_apply(scheme, now, members, sources, gap_packets, backfill)
            tally = self._recovery.get(scheme.name)
            if tally is None:
                tally = self._recovery[scheme.name] = [0, 0, 0]
            tally[0] += len(members)
            tally[1] += gap_packets * len(members)
            tally[2] += result.repaired_packets_total - repaired_before

        observer._apply_episode = counted_apply
        return self

    # -- export ------------------------------------------------------------------------

    def _populate_registry(self) -> None:
        registry = self.registry
        if registry is None:
            return
        registry.counter("sim", "events_processed").inc(self._events_dispatched)
        registry.counter("faults", "activations").inc(self._fault_activations)
        if self._churn is not None:
            counter = registry.counter
            counter("overlay", "disruption_failures").inc(self._disruption_failures)
            counter("overlay", "disruption_events").inc(self._disruption_events)
            counter("overlay", "optimization_reconnections").inc(
                self._opt_reconnections
            )
            counter("overlay", "failure_reconnections").inc(
                self._failure_reconnections
            )
            counter("overlay", "control_messages").inc(self._control_messages)
            counter("overlay", "tree_switch_ops").inc(self._switches)
            counter("overlay", "tree_promotions").inc(self._promotions)
            hist = registry.histogram("overlay", "disruption_subtree_size")
            if self._subtree_hist.count:
                hist.count = self._subtree_hist.count
                hist.total = self._subtree_hist.total
                hist.min = self._subtree_hist.min
                hist.max = self._subtree_hist.max
            protocol = self._churn.protocol
            for name in ("switches", "promotions", "lock_failures"):
                if hasattr(protocol, name):
                    counter("rost", name).inc(int(getattr(protocol, name)))
            registry.gauge("sim", "pending_events_final").set(
                float(self._sim.pending_events)
            )
            registry.gauge("overlay", "final_attached").set(
                float(self._churn.tree.num_attached)
            )
        for scheme_name, (episodes, gap, repaired) in sorted(
            self._recovery.items()
        ):
            registry.counter("recovery", f"episodes.{scheme_name}").inc(episodes)
            registry.counter("recovery", f"gap_packets.{scheme_name}").inc(gap)
            registry.counter("recovery", f"repaired_packets.{scheme_name}").inc(
                repaired
            )

    def finalize(self, result=None) -> ObsUnit:
        """Emit the run_end record, snapshot metrics, build the unit.

        Safe to call once; the unit is also handed to the ambient
        :func:`~repro.obs.capture.job_capture` by the *caller* (the
        cached run helpers need to stash the unit for replay, so emission
        stays their responsibility).
        """
        if self._finalized:
            raise ValueError("ObsAttachment.finalize called twice")
        self._finalized = True
        del result  # reserved for future schema additions
        if not self.enabled:
            return ObsUnit(meta=dict(self.meta))
        writer = self.writer
        if writer is not None and self._sim is not None:
            writer.emit(
                {
                    "type": "run_end",
                    "t": float(self._sim.now),
                    "events_processed": int(self._events_dispatched),
                    "disruptions": int(self._disruption_events),
                    "switches": int(self._switches + self._promotions),
                }
            )
        self._populate_registry()
        trace_lines: List[str] = []
        if writer is not None:
            if writer._path is not None:
                writer.close()
            else:
                trace_lines = list(writer.lines)
        return ObsUnit(
            meta=dict(self.meta),
            trace_lines=trace_lines,
            metrics=self.registry.snapshot() if self.registry else {},
            profile=self.profiler.as_dict() if self.profiler else {},
        )

"""JSONL trace sink with bounded buffering and atomic finalization.

Two modes:

* **memory** (``path=None``): lines accumulate in a list.  This is what
  :class:`~repro.obs.attach.ObsAttachment` uses inside experiment jobs —
  the lines ride back to the runner on the result's artifacts and are
  merged into one file in submission order, which is what makes the
  final trace byte-identical at any ``--jobs`` value.
* **file**: lines stream to ``<path>.tmp-<pid>`` in bounded batches and
  the temp file is renamed over ``path`` only on :meth:`close`.  A
  crashed run therefore never leaves a torn half-trace at the final
  path, and readers only ever observe complete traces.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional


class TraceWriter:
    """Serializes typed records to compact JSONL."""

    def __init__(self, path: Optional[str] = None, buffer_records: int = 512) -> None:
        if buffer_records < 1:
            raise ValueError("buffer_records must be >= 1")
        self._buffer_records = buffer_records
        self.records_emitted = 0
        self._path = path
        self._closed = False
        self._lines: List[str] = []
        self._handle = None
        self._tmp_path: Optional[str] = None
        if path is not None:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            self._tmp_path = f"{path}.tmp-{os.getpid()}"
            self._handle = open(self._tmp_path, "w", encoding="utf-8")

    def emit(self, record: Dict[str, object]) -> None:
        """Serialize one record.  Key order is preserved (insertion
        order), separators are compact — both are part of the
        byte-identity contract."""
        if self._closed:
            raise ValueError("TraceWriter is closed")
        self._lines.append(json.dumps(record, separators=(",", ":")))
        self.records_emitted += 1
        if self._handle is not None and len(self._lines) >= self._buffer_records:
            self._flush()

    def _flush(self) -> None:
        if self._lines:
            self._handle.write("".join(line + "\n" for line in self._lines))
            self._lines.clear()

    @property
    def lines(self) -> List[str]:
        """Emitted lines (memory mode only)."""
        if self._path is not None:
            raise ValueError("lines are only retained in memory mode")
        return self._lines

    def close(self) -> None:
        """Flush and atomically publish the trace file (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._handle is not None:
            self._flush()
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            os.replace(self._tmp_path, self._path)

    def abort(self) -> None:
        """Discard the trace without publishing the final path."""
        if self._closed:
            return
        self._closed = True
        if self._handle is not None:
            self._handle.close()
            try:
                os.unlink(self._tmp_path)
            except OSError:
                pass
        self._lines.clear()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def write_trace_lines(path: str, lines: List[str]) -> None:
    """Write pre-serialized trace lines to ``path`` atomically."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = f"{path}.tmp-{os.getpid()}"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write("".join(line + "\n" for line in lines))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)

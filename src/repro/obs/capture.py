"""Flag plumbing and per-job artifact capture for the observability layer.

The CLI's ``--trace`` / ``--metrics`` / ``--profile`` switches travel as
environment variables, the same pattern ``REPRO_CHECK_INVARIANTS`` uses:
the flags must reach pool worker processes and the cached run helpers in
:mod:`repro.experiments.common` alike, and an env var is the only channel
that survives both the ``fork`` and ``spawn`` start methods.

Within one experiment job, every simulation that runs under an
:class:`~repro.obs.attach.ObsAttachment` finalizes into one
:class:`ObsUnit` and emits it into the ambient :class:`JobCapture`.  The
pool chokepoint (:func:`repro.experiments.pool.execute_job`) opens the
capture around the job and attaches the collected artifacts to the job's
:class:`~repro.experiments.registry.ExperimentResult`, so the runner can
merge them in submission order and produce output that is byte-identical
at any ``--jobs`` value.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

ENV_TRACE = "REPRO_OBS_TRACE"
ENV_TRACE_EVENTS = "REPRO_OBS_TRACE_EVENTS"
ENV_METRICS = "REPRO_OBS_METRICS"
ENV_PROFILE = "REPRO_OBS_PROFILE"

_ENV_FLAGS = (ENV_TRACE, ENV_TRACE_EVENTS, ENV_METRICS, ENV_PROFILE)


def _flag(name: str) -> bool:
    return os.environ.get(name, "") not in ("", "0")


def trace_enabled() -> bool:
    return _flag(ENV_TRACE)


def trace_events_enabled() -> bool:
    """Per-event-dispatch records are opt-in on top of ``--trace``.

    A full-scale run dispatches millions of events; the default trace
    keeps only the structural records (switch/disruption/episode/fault)
    and stays small enough to check into CI artifacts.
    """
    return _flag(ENV_TRACE_EVENTS)


def metrics_enabled() -> bool:
    return _flag(ENV_METRICS)


def profile_enabled() -> bool:
    return _flag(ENV_PROFILE)


def obs_active() -> bool:
    return any(_flag(name) for name in _ENV_FLAGS)


def obs_fingerprint() -> Tuple[bool, bool, bool, bool]:
    """The enabled-channel tuple, for inclusion in run cache keys.

    Cached runs in :mod:`repro.experiments.common` store their emitted
    :class:`ObsUnit` next to the result; keying on the fingerprint keeps
    a unit captured with one channel set from being replayed under
    another.  The durable run store folds the same fingerprint into its
    ledger unit keys (:func:`repro.store.keys.unit_key`) for the same
    reason: a ``--resume`` must only replay results whose captured
    artifacts match the channels the resumed invocation has enabled,
    or merged traces would gain/lose records relative to an
    uninterrupted run.
    """
    return tuple(_flag(name) for name in _ENV_FLAGS)


def obs_env() -> Dict[str, str]:
    """The currently-set obs env vars, for explicit worker-init export."""
    return {
        name: os.environ[name] for name in _ENV_FLAGS if name in os.environ
    }


def apply_obs_env(env: Dict[str, str]) -> None:
    """Install exported flags in a worker process (spawn-safe)."""
    for name in _ENV_FLAGS:
        os.environ.pop(name, None)
    os.environ.update(env)


@dataclass
class ObsUnit:
    """Everything one observed simulation run produced.

    ``trace_lines`` are pre-serialized JSONL strings (no trailing
    newline) so replaying a cached unit is byte-exact by construction.
    ``metrics`` is a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    and is fully deterministic; ``profile`` holds wall-clock data and is
    the only nondeterministic field — it never feeds the trace channel.
    """

    meta: Dict[str, object] = field(default_factory=dict)
    trace_lines: List[str] = field(default_factory=list)
    metrics: Dict[str, object] = field(default_factory=dict)
    profile: Dict[str, object] = field(default_factory=dict)


class JobCapture:
    """Collects the ObsUnits emitted while one experiment job runs."""

    def __init__(self) -> None:
        self.units: List[ObsUnit] = []

    def artifacts(self) -> Dict[str, object]:
        """Fold captured units into the artifact dict a result carries.

        Keys are present only when their channel produced something, so
        merging into an existing artifacts dict never clobbers data with
        empty lists.
        """
        out: Dict[str, object] = {}
        trace = [line for unit in self.units for line in unit.trace_lines]
        if trace:
            out["trace"] = trace
        metrics = [
            {"meta": unit.meta, **unit.metrics}
            for unit in self.units
            if unit.metrics
        ]
        if metrics:
            out["metrics"] = metrics
        profile = [
            {"meta": unit.meta, **unit.profile}
            for unit in self.units
            if unit.profile
        ]
        if profile:
            out["profile"] = profile
        return out


_current: Optional[JobCapture] = None


def current_capture() -> Optional[JobCapture]:
    return _current


def emit_unit(unit: ObsUnit) -> None:
    """Hand a finalized unit to the ambient capture (no-op without one)."""
    if _current is not None:
        _current.units.append(unit)


@contextmanager
def job_capture() -> Iterator[Optional[JobCapture]]:
    """Open a capture for one job; yields ``None`` when obs is inactive.

    Nests safely: an inner capture (e.g. a campaign experiment fanning
    out its own jobs in-process) shadows the outer one for its duration
    and restores it afterwards.
    """
    global _current
    if not obs_active():
        yield None
        return
    previous = _current
    capture = JobCapture()
    _current = capture
    try:
        yield capture
    finally:
        _current = previous

"""Minimum-loss-correlation (MLC) recovery group selection (Section 4.1).

The loss correlation of two members is the number of tree edges their
root paths share: ``w(v1, v2) = |path(r, v1) ∩ path(r, v2)|``.  A good
recovery group minimises the pairwise sum of ``w`` so that one upstream
failure is unlikely to knock out several recovery sources at once.

A member cannot see the whole tree; it knows a medium-sized subset of
members (its partial view) together with each one's ancestor list — the
information gossiped during normal multicast operation.  From these root
paths it reconstructs a partial tree (Fig. 3) and runs Algorithm 1:

1. find the first level ``Li`` of the partial tree with
   ``|Li| < K <= |Li+1|``;
2. seed the MLC root set ``G0`` with one random child of each node of
   ``Li`` until ``|G0| >= K``;
3. produce the group ``G`` by picking one random descendant from the
   subtree of each member of ``G0`` (randomisation balances the repair
   load across the subtrees).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from ..errors import RecoveryError
from ..overlay.node import OverlayNode


def naive_root_path_ids(node: OverlayNode) -> List[int]:
    """Reference implementation: walk the parent chain every call.

    Retained (with :func:`naive_loss_correlation` /
    :func:`naive_group_loss_correlation`) as the ground truth the property
    tests check the cached/vectorized paths against.
    """
    path = [node.member_id]
    current = node.parent
    while current is not None:
        path.append(current.member_id)
        current = current.parent
    path.reverse()
    return path


def _root_path(node: OverlayNode) -> tuple:
    """Root path of ``node`` as a tuple, memoized against the tree epoch.

    The owning tree bumps a shared epoch cell on every structural
    mutation; a cache entry is valid iff its snapshot matches.  Rebuilds
    walk up only to the nearest ancestor with a fresh cache and share
    that ancestor's tuple as a prefix, so a burst of queries between
    mutations (one MLC group selection scores dozens of members) costs
    amortised O(new suffix) instead of O(depth) each.
    """
    cell = getattr(node, "_epoch_cell", None)
    if cell is None:
        # Node not registered with a tree (or a test double): no epoch to
        # validate against, fall back to the plain walk.
        return tuple(naive_root_path_ids(node))
    epoch = cell[0]
    if node._path_epoch == epoch:
        return node._path_cache
    chain = []
    current = node
    while current is not None and current._path_epoch != epoch:
        chain.append(current)
        current = current.parent
    path = current._path_cache if current is not None else ()
    for n in reversed(chain):
        path = path + (n.member_id,)
        n._path_cache = path
        n._path_epoch = epoch
    return path


def root_path_ids(node: OverlayNode) -> List[int]:
    """Member ids from the root down to ``node`` (inclusive)."""
    return list(_root_path(node))


def naive_loss_correlation(a: OverlayNode, b: OverlayNode) -> int:
    """Reference w(a, b): scalar prefix scan over freshly walked paths."""
    path_a = naive_root_path_ids(a)
    path_b = naive_root_path_ids(b)
    shared = 0
    # Paths share a prefix starting at the root; each shared non-root hop
    # is a shared edge.
    for ia, ib in zip(path_a, path_b):
        if ia != ib:
            break
        shared += 1
    return max(0, shared - 1)


def loss_correlation(a: OverlayNode, b: OverlayNode) -> int:
    """w(a, b): number of shared tree edges on the two root paths."""
    path_a = _root_path(a)
    path_b = _root_path(b)
    shared = 0
    for ia, ib in zip(path_a, path_b):
        if ia != ib:
            break
        shared += 1
    return max(0, shared - 1)


def naive_group_loss_correlation(nodes: Sequence[OverlayNode]) -> int:
    """Reference pairwise sum: the O(k² · depth) loop the paper implies."""
    total = 0
    for i in range(len(nodes)):
        for j in range(i + 1, len(nodes)):
            total += naive_loss_correlation(nodes[i], nodes[j])
    return total


def group_loss_correlation(nodes: Sequence[OverlayNode]) -> int:
    """Pairwise loss-correlation sum the MLC group minimises.

    Vectorized: pad the k root paths into a (k, maxlen) id matrix and
    count shared prefixes for all pairs at once — prefix length is the
    run of leading positions where both rows match (cumprod of the
    elementwise equality), and each pair contributes
    ``max(prefix - 1, 0)`` shared edges.  Exact integer arithmetic, so
    the result equals the naive pair loop for any input.
    """
    k = len(nodes)
    if k < 2:
        return 0
    paths = [_root_path(n) for n in nodes]
    maxlen = max(len(p) for p in paths)
    arr = np.full((k, maxlen), -1, dtype=np.int64)
    for i, p in enumerate(paths):
        arr[i, : len(p)] = p
    eq = (arr[:, None, :] == arr[None, :, :]) & (arr[:, None, :] != -1)
    prefix = np.cumprod(eq, axis=2).sum(axis=2)
    w = np.maximum(prefix - 1, 0)
    return int(np.triu(w, k=1).sum())


def group_underlay_correlation(
    member_ids: Sequence[int], domain_of: Callable[[int], int]
) -> int:
    """Underlay-level loss correlation: same-stub-domain pair count.

    Algorithm 1 minimises *tree*-edge sharing, but two recovery nodes
    homed in the same transit-stub domain still die together under a
    domain outage (the correlated-failure mode :mod:`repro.faults`
    injects).  ``domain_of`` maps a member id to its stub-domain id;
    negative ids mean "unknown" and never match.
    """
    domains = [domain_of(m) for m in member_ids]
    total = 0
    for i in range(len(domains)):
        if domains[i] < 0:
            continue
        for j in range(i + 1, len(domains)):
            if domains[i] == domains[j]:
                total += 1
    return total


@dataclass
class _ViewNode:
    member_id: int
    children: Set[int] = field(default_factory=set)


class PartialTreeView:
    """A member's reconstruction of the tree from its partial view.

    Built from the root paths of a sample of known members; every node on
    any of those paths is represented (it is a real, addressable member).
    """

    def __init__(self, root_id: int):
        self.root_id = root_id
        self._nodes: Dict[int, _ViewNode] = {root_id: _ViewNode(root_id)}
        # Derived-structure caches.  One episode prices every recovery
        # scheme against the same view, so sorted child lists, the level
        # decomposition and subtree member lists are queried several
        # times per view; they are built lazily once and invalidated on
        # any ``_add_path`` mutation.  Public accessors hand out fresh
        # lists (callers pop/append on them), only the internals are
        # shared.
        self._children_cache: Optional[Dict[int, List[int]]] = None
        self._levels_cache: Optional[List[List[int]]] = None
        self._descendants_cache: Dict[int, List[int]] = {}

    @classmethod
    def from_members(
        cls,
        known: Iterable[OverlayNode],
        exclude: Iterable[int] = (),
    ) -> "PartialTreeView":
        """Reconstruct the view from known members' ancestor lists.

        ``exclude`` removes members (e.g. the requester and its own
        descendants) from the view entirely: a path is truncated at the
        first excluded member, since everything below it is unusable as a
        recovery source.
        """
        excluded = set(exclude)
        root_id: Optional[int] = None
        paths: List[List[int]] = []
        for member in known:
            path = root_path_ids(member)
            if root_id is None:
                root_id = path[0]
            cut = len(path)
            for i, member_id in enumerate(path):
                if member_id in excluded:
                    cut = i
                    break
            if cut >= 2:
                paths.append(path[:cut])
            elif cut == 1:
                paths.append(path[:1])
        if root_id is None:
            raise RecoveryError("cannot build a view from an empty sample")
        view = cls(root_id)
        for path in paths:
            view._add_path(path)
        return view

    def _add_path(self, path: List[int]) -> None:
        if path[0] != self.root_id:
            raise RecoveryError(
                f"path starts at {path[0]}, expected root {self.root_id}"
            )
        for parent_id, child_id in zip(path, path[1:]):
            parent = self._nodes.setdefault(parent_id, _ViewNode(parent_id))
            parent.children.add(child_id)
            self._nodes.setdefault(child_id, _ViewNode(child_id))
        self._children_cache = None
        self._levels_cache = None
        if self._descendants_cache:
            self._descendants_cache = {}

    def _children_sorted(self, member_id: int) -> List[int]:
        """Cached sorted child list — internal, callers must not mutate."""
        cache = self._children_cache
        if cache is None:
            cache = self._children_cache = {
                mid: sorted(node.children) for mid, node in self._nodes.items()
            }
        children = cache.get(member_id)
        if children is None:
            raise RecoveryError(f"member {member_id} not in the partial view")
        return children

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, member_id: int) -> bool:
        return member_id in self._nodes

    def member_ids(self) -> List[int]:
        """All members represented in the view (including the root)."""
        return list(self._nodes)

    def children_of(self, member_id: int) -> List[int]:
        return list(self._children_sorted(member_id))

    def levels(self) -> List[List[int]]:
        """Members per level, level 0 = [root]."""
        if self._levels_cache is None:
            result: List[List[int]] = []
            frontier = [self.root_id]
            while frontier:
                result.append(frontier)
                next_frontier: List[int] = []
                for member_id in frontier:
                    next_frontier.extend(self._children_sorted(member_id))
                frontier = next_frontier
            self._levels_cache = result
        return [list(level) for level in self._levels_cache]

    def descendants_of(self, member_id: int) -> List[int]:
        """All view-members strictly below ``member_id``."""
        cached = self._descendants_cache.get(member_id)
        if cached is None:
            result: List[int] = []
            queue = deque(self._children_sorted(member_id))
            while queue:
                current = queue.popleft()
                result.append(current)
                queue.extend(self._children_sorted(current))
            self._descendants_cache[member_id] = cached = result
        return list(cached)


def naive_view_children(view: PartialTreeView, member_id: int) -> List[int]:
    """Reference child list: sorted from the raw sets on every call."""
    node = view._nodes.get(member_id)
    if node is None:
        raise RecoveryError(f"member {member_id} not in the partial view")
    return sorted(node.children)


def naive_view_levels(view: PartialTreeView) -> List[List[int]]:
    """Reference level decomposition, recomputed from scratch each call.

    Ground truth for the cached :meth:`PartialTreeView.levels`; the
    differential tests interleave queries and ``_add_path`` mutations and
    check the two stay identical.
    """
    result: List[List[int]] = []
    frontier = [view.root_id]
    while frontier:
        result.append(frontier)
        next_frontier: List[int] = []
        for member_id in frontier:
            next_frontier.extend(naive_view_children(view, member_id))
        frontier = next_frontier
    return result


def naive_view_descendants(view: PartialTreeView, member_id: int) -> List[int]:
    """Reference subtree walk for :meth:`PartialTreeView.descendants_of`."""
    result: List[int] = []
    queue = deque(naive_view_children(view, member_id))
    while queue:
        current = queue.popleft()
        result.append(current)
        queue.extend(naive_view_children(view, current))
    return result


def select_mlc_group(
    view: PartialTreeView,
    group_size: int,
    rng: np.random.Generator,
    domain_of: Optional[Callable[[int], int]] = None,
) -> List[int]:
    """Algorithm 1: the minimum-loss-correlation recovery group.

    Returns up to ``group_size`` member ids (fewer if the view is too
    small).  The root itself is never selected — the source serves the
    whole tree and is not a peer recovery node.

    When ``domain_of`` is given, the per-subtree descendant pick (step 4)
    additionally scores candidates by *underlay* loss correlation: among
    each subtree's candidates, one whose stub domain is not already used
    by the group is preferred, so a single domain outage cannot take out
    several recovery nodes at once.  With ``domain_of=None`` the
    selection is byte-identical to the paper's Algorithm 1.
    """
    if group_size < 1:
        raise RecoveryError(f"group_size must be >= 1, got {group_size}")
    levels = view.levels()
    if len(levels) < 2:
        return []

    # Step 2: first level Li with |Li| < K <= |Li+1|.
    anchor = None
    for i in range(len(levels) - 1):
        if len(levels[i]) < group_size <= len(levels[i + 1]):
            anchor = i
            break
    if anchor is None:
        # The tree is narrower than K everywhere (or wider from level 1):
        # anchor at the deepest level that still has children, or level 0.
        anchor = 0
        for i in range(len(levels) - 1):
            if len(levels[i]) < group_size:
                anchor = i

    # Step 3: seed G0 with random children of the anchor level's nodes.
    g0: List[int] = []
    available: Dict[int, List[int]] = {
        vid: view.children_of(vid) for vid in levels[anchor]
    }
    while len(g0) < group_size:
        progress = False
        for vid in levels[anchor]:
            children = available[vid]
            if not children:
                continue
            pick = children.pop(int(rng.integers(0, len(children))))
            g0.append(pick)
            progress = True
            if len(g0) >= group_size:
                break
        if not progress:
            break

    # Step 4: one random descendant (or the subtree root itself) per G0
    # member.  Picking inside the subtree balances repair load.
    group: List[int] = []
    used_domains: Set[int] = set()
    for root_of_subtree in g0:
        pool = view.descendants_of(root_of_subtree)
        pool.append(root_of_subtree)
        if domain_of is not None:
            fresh = [m for m in pool if domain_of(m) not in used_domains]
            if fresh:
                pool = fresh
        pick = pool[int(rng.integers(0, len(pool)))]
        group.append(pick)
        if domain_of is not None:
            domain = domain_of(pick)
            if domain >= 0:
                used_domains.add(domain)
    return group


def select_random_group(
    view: PartialTreeView,
    group_size: int,
    rng: np.random.Generator,
) -> List[int]:
    """Baseline: uniformly random recovery nodes from the same view
    (ignores loss correlation entirely)."""
    candidates = [
        member_id for member_id in view.member_ids() if member_id != view.root_id
    ]
    if not candidates:
        return []
    if len(candidates) <= group_size:
        return list(candidates)
    picks = rng.choice(len(candidates), size=group_size, replace=False)
    return [candidates[int(i)] for i in picks]

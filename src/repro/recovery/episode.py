"""Packet-level starvation model for one disruption episode.

Time is measured relative to the failure instant t0 = 0.  The failed
upstream stops forwarding, so the stream packets generated during the
outage window — the *gap* — can only reach the member through its
recovery group.  Every packet has a playback deadline (its normal arrival
time plus the playback buffer); a packet that misses its deadline is
"meaningless" (Section 4.2) and is skipped, costing its playback slot in
starving time.  The starving-time ratio of Figures 12-14 is the sum of
these lost slots over the member's total viewing time.

Two repair disciplines are modelled:

* **striped** (CER) — the repair request travels down the ordered
  recovery list; each live source with data takes responsibility for a
  sequence-number range proportional to its residual bandwidth
  (``(n mod 100) < 100*eps1`` etc.) and streams its range concurrently
  with the others, until the examined residuals sum to the full rate or
  the list is exhausted;
* **sequential** (single-source, as in PRM/LER/Cooperative Patching) —
  only the first live source with data serves, using its whole residual
  bandwidth; later group members are contacted only if earlier ones are
  dead, data-less or have no residual bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import RecoveryError

#: Rates below this are useless for repair and risk float overflow in the
#: per-packet arrival arithmetic; treat them as "no residual bandwidth".
_MIN_RATE_PPS = 1e-9


@dataclass(frozen=True)
class RepairSource:
    """One recovery-group member as seen by the requester, in contact order."""

    member_id: int
    #: Residual bandwidth it can devote to repair, packets/second.
    rate_pps: float
    #: True unless the source is itself affected by the same failure
    #: (shares the failed upstream) — such a source NACKs the request.
    has_data: bool
    #: Network distance from the requester (used only for ordering).
    delay_ms: float = 0.0


@dataclass(frozen=True)
class BackfillSpec:
    """Post-rejoin backfill from the new parent's playback buffer.

    When the member re-attaches at ``start_s`` (the end of the
    detection+rejoin window), its new parent still holds the most recent
    part of the stream in its own playback buffer: every gap packet with
    sequence >= ``cutoff_seq`` is available from the parent directly,
    deliverable at the parent's residual rate alongside the live stream.
    This is why large playback buffers keep paying off (Fig. 13): once
    the buffer exceeds the outage window, the new parent can replay the
    *entire* gap.
    """

    start_s: float
    rate_pps: float
    #: First gap sequence number still inside the new parent's buffer.
    cutoff_seq: int

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.rate_pps < 0 or self.cutoff_seq < 0:
            raise RecoveryError("backfill parameters must be >= 0")


@dataclass(frozen=True)
class EpisodeOutcome:
    """Result of one episode: what the member's player experienced."""

    gap_packets: int
    repaired_in_time: int
    missed_packets: int
    starving_s: float
    #: Time (relative to the failure) when repair traffic ended.
    repair_end_s: float
    #: Residual-bandwidth fraction of the stream the contacted sources
    #: jointly covered (capped at 1).
    coverage: float


def starvation_episode(
    gap_packets: int,
    packet_rate_pps: float,
    buffer_ahead_s: float,
    detect_s: float,
    request_hop_s: float,
    sources: Sequence[RepairSource],
    striped: bool,
    backfill: Optional[BackfillSpec] = None,
) -> EpisodeOutcome:
    """Price one disruption episode.

    ``gap_packets`` is the number of stream packets generated during the
    outage window; ``buffer_ahead_s`` is how much playable data the member
    held when the failure hit (zero if a previous outage drained it);
    ``detect_s`` is the failure-detection time before the first repair
    request leaves; each forwarding down the recovery list costs
    ``request_hop_s``.  ``backfill``, if given, lets the post-rejoin
    parent replay the gap packets still inside its own buffer for
    whatever the recovery group could not deliver in time.
    """
    if gap_packets < 0:
        raise RecoveryError(f"gap_packets must be >= 0, got {gap_packets}")
    if packet_rate_pps <= 0:
        raise RecoveryError("packet_rate_pps must be > 0")
    if buffer_ahead_s < 0 or detect_s < 0 or request_hop_s < 0:
        raise RecoveryError("buffer/detect/hop times must be >= 0")
    if gap_packets == 0:
        return EpisodeOutcome(0, 0, 0, 0.0, detect_s, 0.0)

    # Deadline of gap packet k: it would normally arrive at k/r and play
    # buffer_ahead_s later.
    k = np.arange(gap_packets)
    deadlines = k / packet_rate_pps + buffer_ahead_s
    arrivals = np.full(gap_packets, np.inf)

    coverage = 0.0
    repair_end = detect_s
    if striped:
        coverage, repair_end = _striped_arrivals(
            arrivals, packet_rate_pps, detect_s, request_hop_s, sources
        )
    else:
        coverage, repair_end = _sequential_arrivals(
            arrivals, packet_rate_pps, detect_s, request_hop_s, sources
        )

    if backfill is not None and backfill.rate_pps > _MIN_RATE_PPS:
        repair_end = max(
            repair_end, _backfill_arrivals(arrivals, deadlines, backfill)
        )

    repaired = int(np.count_nonzero(arrivals <= deadlines))
    missed = gap_packets - repaired
    return EpisodeOutcome(
        gap_packets=gap_packets,
        repaired_in_time=repaired,
        missed_packets=missed,
        starving_s=missed / packet_rate_pps,
        repair_end_s=repair_end,
        coverage=coverage,
    )


def _backfill_arrivals(
    arrivals: np.ndarray, deadlines: np.ndarray, backfill: BackfillSpec
) -> float:
    """Replay buffered gap packets from the new parent, in sequence order,
    for everything the recovery group would miss."""
    gap = len(arrivals)
    eligible = np.zeros(gap, dtype=bool)
    if backfill.cutoff_seq < gap:
        eligible[backfill.cutoff_seq :] = True
    # Only packets the group repair does not already deliver in time.
    eligible &= arrivals > deadlines
    count = int(np.count_nonzero(eligible))
    if count == 0:
        return backfill.start_s
    order = np.arange(1, count + 1)
    replay = backfill.start_s + order / backfill.rate_pps
    arrivals[eligible] = np.minimum(arrivals[eligible], replay)
    return float(replay.max())


def _striped_arrivals(
    arrivals: np.ndarray,
    packet_rate_pps: float,
    detect_s: float,
    request_hop_s: float,
    sources: Sequence[RepairSource],
) -> tuple:
    """CER striping: assign ``(n mod 100)`` ranges by residual bandwidth."""
    gap = len(arrivals)
    mod_fraction = (np.arange(gap) % 100) / 100.0
    cum_fraction = 0.0
    repair_end = detect_s
    hops = 0
    for source in sources:
        start = detect_s + hops * request_hop_s
        hops += 1
        if not source.has_data or source.rate_pps <= _MIN_RATE_PPS:
            continue
        fraction = source.rate_pps / packet_rate_pps
        low = cum_fraction
        high = min(1.0, cum_fraction + fraction)
        mask = (mod_fraction >= low) & (mod_fraction < high)
        count = int(np.count_nonzero(mask))
        if count:
            # The m-th packet of this source's range arrives (m+1)/rate
            # after the source starts serving.
            order = np.arange(1, count + 1)
            arrivals[mask] = start + order / source.rate_pps
            repair_end = max(repair_end, float(arrivals[mask].max()))
        cum_fraction = high
        if cum_fraction >= 1.0:
            break
    return cum_fraction, repair_end


def _sequential_arrivals(
    arrivals: np.ndarray,
    packet_rate_pps: float,
    detect_s: float,
    request_hop_s: float,
    sources: Sequence[RepairSource],
) -> tuple:
    """Single-source repair: the first usable source serves everything."""
    gap = len(arrivals)
    hops = 0
    for source in sources:
        start = detect_s + hops * request_hop_s
        hops += 1
        if not source.has_data or source.rate_pps <= _MIN_RATE_PPS:
            continue
        order = np.arange(1, gap + 1)
        arrivals[:] = start + order / source.rate_pps
        coverage = min(1.0, source.rate_pps / packet_rate_pps)
        return coverage, float(arrivals.max())
    return 0.0, detect_s

"""Per-member playback state used across disruption episodes.

The playback buffer normally holds ``buffer_s`` seconds of data ahead of
the playhead.  When failures arrive back to back — a second upstream
failure before the previous episode's repair finished — the member enters
the new outage with a drained buffer.  :class:`PlaybackState` tracks just
enough state to apply that rule and to accumulate starving time safely
(total starving is capped at the member's viewing time when ratios are
computed).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RecoveryError


@dataclass
class PlaybackState:
    """Rolling playback/outage state of one member under one scheme."""

    buffer_s: float
    join_time_s: float
    #: Absolute time until which the member is still draining/repairing a
    #: previous episode.
    repair_busy_until_s: float = float("-inf")
    starving_s: float = 0.0
    episodes: int = 0

    def __post_init__(self) -> None:
        if self.buffer_s <= 0:
            raise RecoveryError("buffer_s must be > 0")

    def buffer_ahead_at(self, t: float) -> float:
        """Playable data held when a failure hits at absolute time ``t``.

        Full buffer in steady state; empty if the previous episode's
        repair is still in flight; and still filling during the initial
        ``buffer_s`` after join (startup buffering).
        """
        if t < self.repair_busy_until_s:
            return 0.0
        since_join = t - self.join_time_s
        if since_join < self.buffer_s:
            return max(0.0, since_join)
        return self.buffer_s

    def record_episode(self, t: float, starving_s: float, repair_end_s: float) -> None:
        """Account one episode's outcome (``repair_end_s`` is relative to
        the failure time ``t``)."""
        if starving_s < 0:
            raise RecoveryError("negative starving time")
        self.starving_s += starving_s
        self.episodes += 1
        busy_until = t + max(0.0, repair_end_s)
        if busy_until > self.repair_busy_until_s:
            self.repair_busy_until_s = busy_until

    def view_time_at(self, t: float) -> float:
        """Viewing time since playback began (join + initial buffering)."""
        return max(0.0, t - self.join_time_s - self.buffer_s)

    def starving_ratio_at(self, t: float) -> float:
        """Starving time over viewing time, capped at 1."""
        view = self.view_time_at(t)
        if view <= 0:
            return 0.0
        return min(1.0, self.starving_s / view)

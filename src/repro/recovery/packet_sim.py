"""Event-driven, per-packet reference simulator for one recovery episode.

:func:`repro.recovery.episode.starvation_episode` prices episodes with
closed-form vectorised arithmetic — fast enough to run inside every churn
simulation.  This module simulates the *same* episode packet by packet on
the discrete-event kernel: the repair request travels down the recovery
list, each source enqueues its assigned range and transmits at its
residual rate, and the requester checks every packet against its playback
deadline.  The two implementations must agree exactly; the test suite
holds them to that (property-based, over random episodes).

Besides serving as the verification oracle, the event-driven simulator
also reports per-packet arrival times, which the examples use to plot
repair timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import RecoveryError
from ..sim.engine import Simulator
from .episode import BackfillSpec, EpisodeOutcome, RepairSource

#: Keep in sync with repro.recovery.episode._MIN_RATE_PPS.
_MIN_RATE_PPS = 1e-9


@dataclass
class PacketRecord:
    """Fate of one gap packet."""

    sequence: int
    deadline_s: float
    arrival_s: Optional[float]  # None = never repaired
    source_id: Optional[int]

    @property
    def in_time(self) -> bool:
        return self.arrival_s is not None and self.arrival_s <= self.deadline_s


class EpisodeSimulator:
    """Simulate one disruption episode at packet granularity."""

    def __init__(
        self,
        gap_packets: int,
        packet_rate_pps: float,
        buffer_ahead_s: float,
        detect_s: float,
        request_hop_s: float,
        sources: Sequence[RepairSource],
        striped: bool,
        backfill: Optional[BackfillSpec] = None,
    ):
        if gap_packets < 0:
            raise RecoveryError(f"gap_packets must be >= 0, got {gap_packets}")
        if packet_rate_pps <= 0:
            raise RecoveryError("packet_rate_pps must be > 0")
        self.gap_packets = gap_packets
        self.packet_rate_pps = packet_rate_pps
        self.buffer_ahead_s = buffer_ahead_s
        self.detect_s = detect_s
        self.request_hop_s = request_hop_s
        self.sources = list(sources)
        self.striped = striped
        self.backfill = backfill
        self.records: List[PacketRecord] = [
            PacketRecord(
                sequence=k,
                deadline_s=k / packet_rate_pps + buffer_ahead_s,
                arrival_s=None,
                source_id=None,
            )
            for k in range(gap_packets)
        ]

    # -- request routing ---------------------------------------------------------

    def _assignments(self) -> List[tuple]:
        """[(source, start_time, [sequences])] in contact order."""
        plans: List[tuple] = []
        hops = 0
        if self.striped:
            # (k % 100) / 100.0 vectorized; the stripe [low, high) picks the
            # same indices as the scalar scan (the boundary floats are
            # computed identically, only the comparison loop is batched).
            mod = (np.arange(self.gap_packets) % 100) / 100.0
            cum = 0.0
            for source in self.sources:
                start = self.detect_s + hops * self.request_hop_s
                hops += 1
                if not source.has_data or source.rate_pps <= _MIN_RATE_PPS:
                    continue
                low = cum
                high = min(1.0, cum + source.rate_pps / self.packet_rate_pps)
                assigned = np.nonzero((mod >= low) & (mod < high))[0].tolist()
                plans.append((source, start, assigned))
                cum = high
                if cum >= 1.0:
                    break
        else:
            for source in self.sources:
                start = self.detect_s + hops * self.request_hop_s
                hops += 1
                if not source.has_data or source.rate_pps <= _MIN_RATE_PPS:
                    continue
                plans.append((source, start, list(range(self.gap_packets))))
                break
        return plans

    # -- simulation ----------------------------------------------------------------

    def run(self) -> EpisodeOutcome:
        if self.gap_packets == 0:
            # Nothing was lost; mirror the vectorised model's early return.
            return EpisodeOutcome(0, 0, 0, 0.0, self.detect_s, 0.0)
        sim = Simulator()
        coverage = 0.0
        repair_end = self.detect_s

        def transmit(source: RepairSource, queue: List[int]) -> None:
            if not queue:
                return
            sequence = queue.pop(0)
            record = self.records[sequence]
            record.arrival_s = sim.now
            record.source_id = source.member_id
            sim.schedule_in(
                1.0 / source.rate_pps, lambda: transmit(source, queue)
            )

        for source, start, assigned in self._assignments():
            coverage = min(
                1.0, coverage + source.rate_pps / self.packet_rate_pps
            ) if self.striped else min(1.0, source.rate_pps / self.packet_rate_pps)
            queue = list(assigned)
            # the first packet leaves one transmission period after the
            # request reaches the source
            sim.schedule_at(
                start + 1.0 / source.rate_pps,
                lambda s=source, q=queue: transmit(s, q),
            )
        sim.run()
        primary_arrivals = [
            r.arrival_s for r in self.records if r.arrival_s is not None
        ]
        if primary_arrivals:
            repair_end = max(repair_end, max(primary_arrivals))

        # Second phase: the new parent replays, in sequence order, every
        # buffered gap packet the group repair did not deliver in time.
        spec = self.backfill
        if spec is not None and spec.rate_pps > _MIN_RATE_PPS:
            eligible = [
                r
                for r in self.records
                if r.sequence >= spec.cutoff_seq and not r.in_time
            ]
            repair_end = max(
                repair_end, spec.start_s + len(eligible) / spec.rate_pps
            )
            replay_sim = Simulator()

            def replay(queue: List[PacketRecord]) -> None:
                if not queue:
                    return
                record = queue.pop(0)
                if record.arrival_s is None or replay_sim.now < record.arrival_s:
                    record.arrival_s = replay_sim.now
                    record.source_id = -1  # the new parent
                replay_sim.schedule_in(1.0 / spec.rate_pps, lambda: replay(queue))

            replay_sim.schedule_at(
                spec.start_s + 1.0 / spec.rate_pps,
                lambda q=list(eligible): replay(q),
            )
            replay_sim.run()

        repaired = sum(1 for r in self.records if r.in_time)
        missed = self.gap_packets - repaired
        return EpisodeOutcome(
            gap_packets=self.gap_packets,
            repaired_in_time=repaired,
            missed_packets=missed,
            starving_s=missed / self.packet_rate_pps,
            repair_end_s=repair_end,
            coverage=coverage,
        )


def simulate_episode(
    gap_packets: int,
    packet_rate_pps: float,
    buffer_ahead_s: float,
    detect_s: float,
    request_hop_s: float,
    sources: Sequence[RepairSource],
    striped: bool,
    backfill: Optional[BackfillSpec] = None,
) -> EpisodeOutcome:
    """Functional entry point mirroring
    :func:`repro.recovery.episode.starvation_episode`."""
    return EpisodeSimulator(
        gap_packets=gap_packets,
        packet_rate_pps=packet_rate_pps,
        buffer_ahead_s=buffer_ahead_s,
        detect_s=detect_s,
        request_hop_s=request_hop_s,
        sources=sources,
        striped=striped,
        backfill=backfill,
    ).run()

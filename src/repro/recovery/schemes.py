"""Recovery scheme descriptors: what Figures 12-14 compare.

A scheme fixes (a) how recovery nodes are selected (MLC vs uniform
random), (b) how many are used, (c) whether repair is striped across
residual bandwidths (CER) or served by a single source at a time, and
(d) the playback buffer size.  Scheme evaluation itself happens in
:class:`repro.simulation.streaming.RecoverySimulation`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RecoveryError


@dataclass(frozen=True)
class RecoveryScheme:
    """One point in the recovery design space."""

    name: str
    group_size: int
    #: Minimum-loss-correlation selection (Algorithm 1) vs uniform random.
    use_mlc: bool
    #: CER residual-bandwidth striping vs single-source-at-a-time repair.
    striped: bool
    #: Playback buffer in seconds.
    buffer_s: float
    #: Whether descendants rely on upstream recovery via ELN (the paper's
    #: behaviour).  When False, every affected member recovers
    #: independently with its own group (ELN ablation).
    eln: bool = True
    #: Extend MLC selection with underlay loss correlation: prefer
    #: recovery nodes in distinct transit-stub domains, so a correlated
    #: domain outage (see :mod:`repro.faults`) cannot kill several
    #: recovery sources at once.  Only meaningful with ``use_mlc``.
    domain_aware: bool = False

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise RecoveryError(f"group_size must be >= 1, got {self.group_size}")
        if self.buffer_s <= 0:
            raise RecoveryError(f"buffer_s must be > 0, got {self.buffer_s}")
        if self.domain_aware and not self.use_mlc:
            raise RecoveryError("domain_aware requires use_mlc")


def cer_scheme(
    group_size: int,
    buffer_s: float = 5.0,
    eln: bool = True,
    domain_aware: bool = False,
) -> RecoveryScheme:
    """The paper's CER: MLC-selected group, striped repair."""
    name = f"cer-k{group_size}-b{buffer_s:g}"
    if not eln:
        name += "-noeln"
    if domain_aware:
        name += "-da"
    return RecoveryScheme(
        name=name,
        group_size=group_size,
        use_mlc=True,
        striped=True,
        buffer_s=buffer_s,
        eln=eln,
        domain_aware=domain_aware,
    )


def single_source_scheme(
    group_size: int, buffer_s: float = 5.0, use_mlc: bool = False
) -> RecoveryScheme:
    """The baseline of Fig. 14: recovery from one source at a time.

    ``group_size`` > 1 provides fallbacks only (contacted when an earlier
    node is dead, affected or has no residual bandwidth).
    """
    return RecoveryScheme(
        name=f"ss-k{group_size}-b{buffer_s:g}" + ("-mlc" if use_mlc else ""),
        group_size=group_size,
        use_mlc=use_mlc,
        striped=False,
        buffer_s=buffer_s,
    )

"""Packet-error recovery: the CER protocol and its baselines (Section 4).

* :mod:`repro.recovery.mlc` — partial-tree knowledge and the
  minimum-loss-correlation group selection (Algorithm 1);
* :mod:`repro.recovery.episode` — the packet-level starvation model for
  one disruption episode (deadlines, striped/sequential repair);
* :mod:`repro.recovery.schemes` — CER and single-source recovery schemes
  parameterised by group size, selection policy and buffer size;
* :mod:`repro.recovery.eln` — Explicit Loss Notification: deciding whether
  a loss originates at the parent (rejoin) or upstream (wait for upstream
  recovery);
* :mod:`repro.recovery.buffer` — per-member playback-buffer state.
"""

from .buffer import PlaybackState
from .eln import ElnTracker, LossOrigin
from .episode import EpisodeOutcome, RepairSource, starvation_episode
from .mlc import PartialTreeView, loss_correlation, select_mlc_group
from .schemes import RecoveryScheme, cer_scheme, single_source_scheme

__all__ = [
    "ElnTracker",
    "EpisodeOutcome",
    "LossOrigin",
    "PartialTreeView",
    "PlaybackState",
    "RecoveryScheme",
    "RepairSource",
    "cer_scheme",
    "loss_correlation",
    "select_mlc_group",
    "single_source_scheme",
    "starvation_episode",
]

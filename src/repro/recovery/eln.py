"""Explicit Loss Notification (Section 4.2).

When a member detects a missing packet it must decide whether the loss
originated at its own parent (then it must rejoin) or further upstream
(then its parent will forward repaired data and the member must *not*
duplicate the recovery or rejoin).  The paper's mechanism: a member that
detects a loss sends a notification packet carrying just the missed
sequence number to its children, which propagate it downstream; a member
that keeps receiving ELNs knows its parent is alive.  A member that sees
a sequence gap larger than a threshold with *neither* data nor ELN
packets concludes its parent (or the link to it) failed and rejoins.

:class:`ElnTracker` is the per-member decision state machine; it is
exercised directly by the unit tests and drives the ``eln`` flag handling
in the recovery simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Set

from ..errors import RecoveryError


class LossOrigin(enum.Enum):
    """What a member concludes about a detected loss."""

    NONE = "none"  # stream healthy
    UPSTREAM = "upstream"  # ancestor failure — wait for upstream recovery
    PARENT = "parent"  # parent failure/congestion — rejoin


@dataclass
class ElnTracker:
    """Per-member ELN state machine.

    Feed it packet arrivals (:meth:`on_data`) and loss notifications from
    the parent (:meth:`on_eln`); query :meth:`origin` to learn what the
    member should do.  ``gap_threshold`` is the paper's "sequence gap > 3"
    rule.
    """

    gap_threshold: int = 3
    _highest_seen: int = -1
    _eln_sequences: Set[int] = field(default_factory=set)
    _data_sequences: Set[int] = field(default_factory=set)

    def on_data(self, sequence: int) -> None:
        """A stream (or repaired) packet arrived from the parent."""
        if sequence < 0:
            raise RecoveryError(f"negative sequence {sequence}")
        self._data_sequences.add(sequence)
        if sequence > self._highest_seen:
            self._highest_seen = sequence

    def on_eln(self, sequence: int) -> None:
        """The parent notified us it is missing ``sequence`` itself.

        The loss therefore does not originate at the parent; the member
        relays the notification downstream and waits for upstream repair.
        """
        if sequence < 0:
            raise RecoveryError(f"negative sequence {sequence}")
        self._eln_sequences.add(sequence)
        if sequence > self._highest_seen:
            self._highest_seen = sequence

    def missing_below(self, sequence: int) -> List[int]:
        """Sequences below ``sequence`` seen neither as data nor as ELN."""
        return [
            s
            for s in range(sequence)
            if s not in self._data_sequences and s not in self._eln_sequences
        ]

    def origin(self, next_expected: int) -> LossOrigin:
        """Classify the stream state given the next sequence the member
        expects to consume.

        * every sequence accounted for (data or ELN) -> NONE / UPSTREAM;
        * a contiguous silent gap larger than ``gap_threshold`` (no data
          *and* no ELN) -> PARENT failure: launch the rejoin.
        """
        silent_gap = 0
        upstream = False
        for sequence in range(next_expected, self._highest_seen + 1):
            if sequence in self._data_sequences:
                silent_gap = 0
            elif sequence in self._eln_sequences:
                upstream = True
                silent_gap = 0
            else:
                silent_gap += 1
                if silent_gap > self.gap_threshold:
                    return LossOrigin.PARENT
        # A totally silent parent (nothing at all for > threshold packets)
        # also indicates parent failure; callers express that by passing a
        # next_expected beyond the highest sequence seen.
        if next_expected > self._highest_seen + self.gap_threshold:
            return LossOrigin.PARENT
        return LossOrigin.UPSTREAM if upstream else LossOrigin.NONE

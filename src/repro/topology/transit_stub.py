"""Transit-stub topology generation (GT-ITM replacement).

The generator builds the two-level hierarchy the paper's simulator ran on:

* a *transit core* of ``transit_domains`` domains, each a connected random
  graph of ``transit_nodes_per_domain`` nodes; domains are interconnected
  by a connected random domain-level graph, every transit edge drawing its
  delay uniformly from the paper's [15, 25] ms range;
* per transit node, ``stub_domains_per_transit`` *stub domains*, each a
  connected random graph of ``stub_nodes_per_domain`` nodes with [2, 4] ms
  edges, attached to its transit node through a single gateway stub node
  over a [5, 9] ms access edge.

With the default :class:`~repro.config.TopologyConfig` this yields exactly
240 transit + 15360 stub = 15600 nodes, the population of the paper.

Connectivity is guaranteed by construction (random spanning tree first,
then extra random edges), so every delay query is finite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from ..config import TopologyConfig
from ..errors import TopologyError
from .graph import Graph


@dataclass(frozen=True)
class StubDomain:
    """Metadata of one stub domain."""

    domain_id: int
    #: Global node ids of the domain members, in local index order.
    nodes: Tuple[int, ...]
    #: Global node id of the gateway (a member of ``nodes``).
    gateway: int
    #: Global node id of the transit node the gateway attaches to.
    transit_node: int
    #: Delay of the gateway <-> transit access edge, ms.
    access_delay_ms: float


@dataclass
class TransitStubTopology:
    """A generated underlay: the flat graph plus hierarchy metadata.

    ``delay oracle`` construction (:class:`repro.topology.routing.DelayOracle`)
    consumes the metadata; the flat :class:`Graph` is retained for
    verification and for callers that want raw shortest paths.
    """

    config: TopologyConfig
    graph: Graph
    transit_nodes: Tuple[int, ...]
    stub_domains: Tuple[StubDomain, ...]
    #: For each node id: -1 if transit, else the id of its stub domain.
    node_domain: np.ndarray = field(repr=False)

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def stub_nodes(self) -> List[int]:
        """All stub node ids (ascending)."""
        return [n for d in self.stub_domains for n in d.nodes]

    def is_transit(self, node: int) -> bool:
        return self.node_domain[node] < 0

    def domain_of(self, node: int) -> StubDomain:
        """The stub domain containing ``node`` (transit nodes have none)."""
        d = int(self.node_domain[node])
        if d < 0:
            raise TopologyError(f"node {node} is a transit node, not in a stub domain")
        return self.stub_domains[d]


def _random_connected_graph(
    graph: Graph,
    nodes: Sequence[int],
    extra_edge_prob: float,
    delay_range: Tuple[float, float],
    rng: np.random.Generator,
) -> None:
    """Wire ``nodes`` into a connected random subgraph.

    A uniformly shuffled spanning tree guarantees connectivity; each
    remaining pair gains an edge with probability ``extra_edge_prob``.
    Edge delays draw uniformly from ``delay_range``.
    """
    lo, hi = delay_range
    order = list(nodes)
    rng.shuffle(order)
    for i in range(1, len(order)):
        # Attach to a random earlier node: a uniform random recursive tree.
        j = int(rng.integers(0, i))
        graph.add_edge(order[i], order[j], float(rng.uniform(lo, hi)))
    if extra_edge_prob <= 0 or len(order) < 3:
        return
    for a in range(len(order)):
        for b in range(a + 1, len(order)):
            if graph.has_edge(order[a], order[b]):
                continue
            if rng.random() < extra_edge_prob:
                graph.add_edge(order[a], order[b], float(rng.uniform(lo, hi)))


def generate_transit_stub(config: TopologyConfig) -> TransitStubTopology:
    """Generate a transit-stub underlay from ``config`` (deterministic in
    ``config.seed``)."""
    rng = np.random.default_rng(config.seed)

    num_transit = config.total_transit_nodes
    total_nodes = config.total_nodes
    graph = Graph(total_nodes)
    node_domain = np.full(total_nodes, -1, dtype=np.int32)

    # --- transit core -----------------------------------------------------
    transit_by_domain: List[List[int]] = []
    next_id = 0
    for _ in range(config.transit_domains):
        members = list(range(next_id, next_id + config.transit_nodes_per_domain))
        next_id += config.transit_nodes_per_domain
        transit_by_domain.append(members)
        _random_connected_graph(
            graph,
            members,
            config.transit_edge_prob,
            config.transit_transit_delay_ms,
            rng,
        )

    # Domain-level interconnection: spanning tree over domains plus a few
    # extra domain pairs, each realized as one edge between random member
    # transit nodes.
    lo, hi = config.transit_transit_delay_ms
    domain_order = list(range(config.transit_domains))
    rng.shuffle(domain_order)
    for i in range(1, len(domain_order)):
        j = int(rng.integers(0, i))
        a = int(rng.choice(transit_by_domain[domain_order[i]]))
        b = int(rng.choice(transit_by_domain[domain_order[j]]))
        graph.add_edge(a, b, float(rng.uniform(lo, hi)))
    if config.transit_domains >= 3:
        for a_dom in range(config.transit_domains):
            for b_dom in range(a_dom + 1, config.transit_domains):
                if rng.random() < 0.3:
                    a = int(rng.choice(transit_by_domain[a_dom]))
                    b = int(rng.choice(transit_by_domain[b_dom]))
                    if not graph.has_edge(a, b):
                        graph.add_edge(a, b, float(rng.uniform(lo, hi)))

    # --- stub domains ------------------------------------------------------
    stub_domains: List[StubDomain] = []
    ts_lo, ts_hi = config.transit_stub_delay_ms
    for transit_node in range(num_transit):
        for _ in range(config.stub_domains_per_transit):
            members = tuple(range(next_id, next_id + config.stub_nodes_per_domain))
            next_id += config.stub_nodes_per_domain
            _random_connected_graph(
                graph,
                members,
                config.stub_edge_prob,
                config.stub_stub_delay_ms,
                rng,
            )
            gateway = int(rng.choice(members))
            access = float(rng.uniform(ts_lo, ts_hi))
            graph.add_edge(gateway, transit_node, access)
            domain = StubDomain(
                domain_id=len(stub_domains),
                nodes=members,
                gateway=gateway,
                transit_node=transit_node,
                access_delay_ms=access,
            )
            node_domain[list(members)] = domain.domain_id
            stub_domains.append(domain)

    if next_id != total_nodes:
        raise TopologyError(
            f"generator wired {next_id} nodes, expected {total_nodes}"
        )

    return TransitStubTopology(
        config=config,
        graph=graph,
        transit_nodes=tuple(range(num_transit)),
        stub_domains=tuple(stub_domains),
        node_domain=node_domain,
    )

"""Hierarchical shortest-path delay oracle for transit-stub topologies.

Because stub domains are leaves hanging off a single gateway/access edge,
every shortest path decomposes exactly as::

    stub u --(intra-domain)--> gateway --(access)--> transit core
           --(core shortest path)--> transit --(access)--> gateway
           --(intra-domain)--> stub v

so after precomputing (a) per-domain all-pairs distances and (b) transit
core all-pairs distances, any pairwise delay is an O(1) lookup.  The
decomposition is *exact* for the graphs produced by
:func:`~repro.topology.transit_stub.generate_transit_stub` (verified
against flat Dijkstra in the test suite).

Precompute cost at paper scale: 960 Floyd-Warshall passes on 16x16
matrices + 240 Dijkstras on the 240-node core — well under a second.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..errors import TopologyError
from .graph import Graph
from .transit_stub import TransitStubTopology


def _floyd_warshall(matrix: np.ndarray) -> np.ndarray:
    """In-place Floyd-Warshall on a dense adjacency matrix (inf = absent)."""
    n = matrix.shape[0]
    for k in range(n):
        np.minimum(matrix, matrix[:, k : k + 1] + matrix[k : k + 1, :], out=matrix)
    return matrix


class DelayOracle:
    """O(1) pairwise underlay delay queries for a transit-stub topology."""

    def __init__(self, topology: TransitStubTopology):
        self._topology = topology
        self._num_transit = len(topology.transit_nodes)
        self._intra: List[np.ndarray] = []
        self._local_index: Dict[int, int] = {}
        self._build_intra_domain()
        self._core = self._build_core()

    # -- construction -------------------------------------------------------

    def _build_intra_domain(self) -> None:
        graph = self._topology.graph
        for domain in self._topology.stub_domains:
            nodes = domain.nodes
            n = len(nodes)
            index = {node: i for i, node in enumerate(nodes)}
            for node, i in index.items():
                self._local_index[node] = i
            matrix = np.full((n, n), np.inf)
            np.fill_diagonal(matrix, 0.0)
            for node in nodes:
                i = index[node]
                for neighbor, weight in graph.neighbors(node):
                    j = index.get(neighbor)
                    if j is not None and weight < matrix[i, j]:
                        matrix[i, j] = weight
                        matrix[j, i] = weight
            self._intra.append(_floyd_warshall(matrix))

    def _build_core(self) -> np.ndarray:
        """All-pairs shortest paths over the transit-only subgraph."""
        graph = self._topology.graph
        core = Graph(self._num_transit)
        seen = set()
        for u in range(self._num_transit):
            for v, weight in graph.neighbors(u):
                if v < self._num_transit and (v, u) not in seen:
                    core.add_edge(u, v, weight)
                    seen.add((u, v))
        matrix = np.empty((self._num_transit, self._num_transit))
        for u in range(self._num_transit):
            matrix[u, :] = core.shortest_paths_from(u)
        if not np.isfinite(matrix).all():
            raise TopologyError("transit core is disconnected")
        return matrix

    # -- queries --------------------------------------------------------------

    def delay_ms(self, u: int, v: int) -> float:
        """Exact shortest-path delay between any two underlay nodes, ms."""
        if u == v:
            return 0.0
        topo = self._topology
        u_transit = topo.is_transit(u)
        v_transit = topo.is_transit(v)
        if u_transit and v_transit:
            return float(self._core[u, v])
        if u_transit:
            return self._transit_to_stub(u, v)
        if v_transit:
            return self._transit_to_stub(v, u)
        du = topo.domain_of(u)
        dv = topo.domain_of(v)
        if du.domain_id == dv.domain_id:
            return float(
                self._intra[du.domain_id][self._local_index[u], self._local_index[v]]
            )
        return (
            self._stub_to_gateway(u)
            + du.access_delay_ms
            + float(self._core[du.transit_node, dv.transit_node])
            + dv.access_delay_ms
            + self._stub_to_gateway(v)
        )

    def delays_from(self, source: int, targets: Sequence[int]) -> np.ndarray:
        """Vector of delays from ``source`` to each of ``targets``."""
        return np.array([self.delay_ms(source, t) for t in targets])

    def _stub_to_gateway(self, node: int) -> float:
        domain = self._topology.domain_of(node)
        return float(
            self._intra[domain.domain_id][
                self._local_index[node], self._local_index[domain.gateway]
            ]
        )

    def _transit_to_stub(self, transit: int, stub: int) -> float:
        domain = self._topology.domain_of(stub)
        return (
            self._stub_to_gateway(stub)
            + domain.access_delay_ms
            + float(self._core[domain.transit_node, transit])
        )

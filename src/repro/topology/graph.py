"""A minimal undirected weighted graph with shortest-path utilities.

Kept intentionally simple: adjacency lists over integer node ids.  The
hierarchical :class:`~repro.topology.routing.DelayOracle` answers the hot
queries; this class is the ground-truth reference (flat Dijkstra) used in
tests and for small ad-hoc graphs.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, Iterator, List, Tuple

from ..errors import TopologyError


class Graph:
    """Undirected weighted graph over integer node ids ``0..n-1``."""

    def __init__(self, num_nodes: int = 0):
        if num_nodes < 0:
            raise TopologyError(f"num_nodes must be >= 0, got {num_nodes}")
        self._adj: List[List[Tuple[int, float]]] = [[] for _ in range(num_nodes)]
        self._num_edges = 0

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def add_node(self) -> int:
        """Append a new node; returns its id."""
        self._adj.append([])
        return len(self._adj) - 1

    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add an undirected edge; parallel edges are allowed (Dijkstra
        simply uses the lighter one)."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise TopologyError(f"self-loop on node {u}")
        if weight < 0:
            raise TopologyError(f"negative edge weight {weight}")
        self._adj[u].append((v, weight))
        self._adj[v].append((u, weight))
        self._num_edges += 1

    def neighbors(self, u: int) -> Iterator[Tuple[int, float]]:
        """Iterate ``(neighbor, weight)`` pairs of ``u``."""
        self._check_node(u)
        return iter(self._adj[u])

    def degree(self, u: int) -> int:
        self._check_node(u)
        return len(self._adj[u])

    def has_edge(self, u: int, v: int) -> bool:
        self._check_node(u)
        self._check_node(v)
        return any(w == v for w, _ in self._adj[u])

    def shortest_paths_from(self, source: int) -> List[float]:
        """Dijkstra from ``source``: list of distances (inf if unreachable)."""
        self._check_node(source)
        dist = [math.inf] * self.num_nodes
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v, w in self._adj[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return dist

    def shortest_path(self, source: int, target: int) -> float:
        """Distance between two nodes (inf if disconnected)."""
        self._check_node(target)
        return self.shortest_paths_from(source)[target]

    def is_connected(self) -> bool:
        """True for the empty graph and any graph with one reachable component."""
        if self.num_nodes == 0:
            return True
        seen = [False] * self.num_nodes
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v, _ in self._adj[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self.num_nodes

    def to_arrays(self) -> Dict[str, object]:
        """Flatten the adjacency lists into dense arrays for serialization.

        The per-node neighbor order is preserved exactly, so a round trip
        through :meth:`from_arrays` reproduces the graph byte-for-byte —
        including parallel edges and iteration order, which downstream
        deterministic code may observe.
        """
        import numpy as np

        counts = np.fromiter(
            (len(neighbors) for neighbors in self._adj),
            dtype=np.int64,
            count=len(self._adj),
        )
        total = int(counts.sum())
        targets = np.empty(total, dtype=np.int64)
        weights = np.empty(total, dtype=np.float64)
        offset = 0
        for neighbors in self._adj:
            for v, w in neighbors:
                targets[offset] = v
                weights[offset] = w
                offset += 1
        return {
            "adj_counts": counts,
            "adj_targets": targets,
            "adj_weights": weights,
            "num_edges": np.int64(self._num_edges),
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, object]) -> "Graph":
        """Rebuild a graph serialized with :meth:`to_arrays`."""
        counts = arrays["adj_counts"]
        targets = arrays["adj_targets"]
        weights = arrays["adj_weights"]
        graph = cls(len(counts))
        offset = 0
        for u, count in enumerate(counts):
            end = offset + int(count)
            graph._adj[u] = [
                (int(v), float(w))
                for v, w in zip(targets[offset:end], weights[offset:end])
            ]
            offset = end
        graph._num_edges = int(arrays["num_edges"])
        return graph

    def subgraph_distances(self, nodes: Iterable[int]) -> Dict[int, List[float]]:
        """All-pairs distances among ``nodes`` through the *full* graph.

        Returns ``{node: distances-list}`` — one Dijkstra per listed node.
        """
        return {u: self.shortest_paths_from(u) for u in nodes}

    def _check_node(self, u: int) -> None:
        if not 0 <= u < len(self._adj):
            raise TopologyError(f"unknown node id {u} (graph has {len(self._adj)})")

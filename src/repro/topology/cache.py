"""Two-tier cache for generated underlays and their delay oracles.

Every experiment run over the same topology parameters regenerates an
identical transit-stub underlay and repeats the Floyd-Warshall/Dijkstra
precompute of :class:`~repro.topology.routing.DelayOracle`.  At paper
scale that is seconds of pure recomputation per run — and a parallel
sweep multiplies it by the worker count.  This module makes the artefact
content-addressed instead:

* **memory tier** — an LRU of ``(topology, oracle)`` pairs keyed by a
  hash of the full :class:`~repro.config.TopologyConfig` (parameters and
  seed), so repeat runs inside one process pay nothing;
* **disk tier** (optional) — one ``.npz`` file per key holding the flat
  graph, the hierarchy metadata and the oracle's distance matrices, so
  *other* processes — pool workers, repeat CLI invocations — load the
  matrices instead of recomputing or repickling oracles.  Enabled by
  setting the ``REPRO_CACHE_DIR`` environment variable (the experiment
  pool sets it automatically for its workers).

Disk writes are atomic (write to a temp file, then ``os.replace``), so a
killed run can never leave a truncated cache entry; a corrupt or
unreadable entry is treated as a miss and regenerated.  Loaded artefacts
are bit-identical to freshly generated ones — the test suite locks this.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import tempfile
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from ..config import TopologyConfig
from . import shm
from .graph import Graph
from .routing import DelayOracle
from .transit_stub import StubDomain, TransitStubTopology, generate_transit_stub

#: Environment variable naming the on-disk cache directory (unset = no disk tier).
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
#: Environment variable overriding the memory-tier capacity.
ENV_CACHE_SLOTS = "REPRO_CACHE_MEM"
#: Default number of (topology, oracle) pairs kept in memory.
DEFAULT_MEMORY_SLOTS = 8
#: Bumped whenever the on-disk layout changes; stale files are ignored.
FORMAT_VERSION = 1


def topology_cache_key(config: TopologyConfig) -> str:
    """Content key: a hash over every generator parameter plus the seed."""
    payload = repr(
        (FORMAT_VERSION, sorted(dataclasses.asdict(config).items()))
    ).encode()
    return hashlib.sha256(payload).hexdigest()[:24]


def _topology_to_arrays(topology: TransitStubTopology) -> Dict[str, np.ndarray]:
    domains = topology.stub_domains
    arrays = dict(topology.graph.to_arrays())
    arrays.update(
        node_domain=topology.node_domain,
        num_transit=np.int64(len(topology.transit_nodes)),
        domain_nodes=np.array([d.nodes for d in domains], dtype=np.int64),
        domain_gateways=np.array([d.gateway for d in domains], dtype=np.int64),
        domain_transits=np.array([d.transit_node for d in domains], dtype=np.int64),
        domain_access=np.array([d.access_delay_ms for d in domains], dtype=np.float64),
    )
    return arrays


def _topology_from_arrays(
    config: TopologyConfig, arrays: Dict[str, np.ndarray]
) -> TransitStubTopology:
    graph = Graph.from_arrays(arrays)
    domain_nodes = arrays["domain_nodes"]
    domains = tuple(
        StubDomain(
            domain_id=i,
            nodes=tuple(int(n) for n in domain_nodes[i]),
            gateway=int(arrays["domain_gateways"][i]),
            transit_node=int(arrays["domain_transits"][i]),
            access_delay_ms=float(arrays["domain_access"][i]),
        )
        for i in range(len(domain_nodes))
    )
    return TransitStubTopology(
        config=config,
        graph=graph,
        transit_nodes=tuple(range(int(arrays["num_transit"]))),
        stub_domains=domains,
        node_domain=np.array(arrays["node_domain"], dtype=np.int32),
    )


class TopologyCache:
    """Content-keyed LRU of underlays, with an optional ``.npz`` disk tier."""

    def __init__(
        self,
        memory_slots: Optional[int] = None,
        disk_dir: Optional[str] = None,
    ):
        if memory_slots is None:
            memory_slots = int(os.environ.get(ENV_CACHE_SLOTS, DEFAULT_MEMORY_SLOTS))
        self._memory_slots = max(1, memory_slots)
        #: Explicit directory; None means "follow REPRO_CACHE_DIR per call".
        self._disk_dir = disk_dir
        self._memory: "OrderedDict[str, Tuple[TransitStubTopology, DelayOracle]]" = (
            OrderedDict()
        )
        self.memory_hits = 0
        self.shm_hits = 0
        self.disk_hits = 0
        self.misses = 0

    # -- tiers ---------------------------------------------------------------

    @property
    def disk_dir(self) -> Optional[str]:
        """The active disk-tier directory, or None when disabled."""
        if self._disk_dir is not None:
            return self._disk_dir
        return os.environ.get(ENV_CACHE_DIR) or None

    def clear_memory(self) -> None:
        """Drop the in-memory tier (the disk tier is left untouched)."""
        self._memory.clear()

    def _entry_path(self, key: str) -> Optional[str]:
        directory = self.disk_dir
        if not directory:
            return None
        return os.path.join(directory, f"topology-{key}.npz")

    # -- the lookup ----------------------------------------------------------

    def get(
        self, config: TopologyConfig
    ) -> Tuple[TransitStubTopology, DelayOracle]:
        """The (topology, oracle) pair for ``config``, computed at most once.

        Lookup order: memory LRU, then the shared-memory tier (zero-copy
        attach, active only inside a pool session), then the disk tier,
        then a full generate + precompute (which populates every tier).
        """
        key = topology_cache_key(config)
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self.memory_hits += 1
            return cached

        pair = self._load_from_shm(key, config)
        if pair is not None:
            self.shm_hits += 1
        else:
            pair = self._load_from_disk(key, config)
            if pair is None:
                self.misses += 1
                topology = generate_transit_stub(config)
                pair = (topology, DelayOracle(topology))
                self._store_to_disk(key, pair)
            else:
                self.disk_hits += 1
            # First process to materialise the artefact publishes it for
            # the rest of the pool session (losing the race is fine — the
            # winner's copy is identical, derived from the same key).
            self._store_to_shm(key, pair)

        self._memory[key] = pair
        while len(self._memory) > self._memory_slots:
            self._memory.popitem(last=False)
        return pair

    # -- shared-memory tier ----------------------------------------------------

    def _load_from_shm(
        self, key: str, config: TopologyConfig
    ) -> Optional[Tuple[TransitStubTopology, DelayOracle]]:
        arrays = shm.attach(key)
        if arrays is None:
            return None
        try:
            topology = _topology_from_arrays(config, arrays)
            # copy=False: the oracle's distance matrices stay views into
            # the shared pages — the whole point of the tier.
            oracle = DelayOracle.from_matrices(
                topology,
                {"intra": arrays["oracle_intra"], "core": arrays["oracle_core"]},
                copy=False,
            )
            return topology, oracle
        except Exception:
            # Torn/foreign segment content: fall through to the disk tier.
            return None

    def _store_to_shm(
        self, key: str, pair: Tuple[TransitStubTopology, DelayOracle]
    ) -> None:
        if not shm.shm_enabled():
            return
        topology, oracle = pair
        arrays = _topology_to_arrays(topology)
        matrices = oracle.to_matrices()
        arrays["oracle_intra"] = matrices["intra"]
        arrays["oracle_core"] = matrices["core"]
        shm.publish(key, arrays)

    # -- disk tier -----------------------------------------------------------

    def _load_from_disk(
        self, key: str, config: TopologyConfig
    ) -> Optional[Tuple[TransitStubTopology, DelayOracle]]:
        path = self._entry_path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with np.load(path) as data:
                arrays = {name: data[name] for name in data.files}
            topology = _topology_from_arrays(config, arrays)
            oracle = DelayOracle.from_matrices(
                topology, {"intra": arrays["oracle_intra"], "core": arrays["oracle_core"]}
            )
            return topology, oracle
        except Exception:
            # Corrupt/truncated/stale entry: regenerate rather than fail.
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def _store_to_disk(
        self, key: str, pair: Tuple[TransitStubTopology, DelayOracle]
    ) -> None:
        path = self._entry_path(key)
        if path is None:
            return
        topology, oracle = pair
        arrays = _topology_to_arrays(topology)
        matrices = oracle.to_matrices()
        arrays["oracle_intra"] = matrices["intra"]
        arrays["oracle_core"] = matrices["core"]
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".npz.tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    np.savez(handle, **arrays)
                os.replace(tmp_path, path)
            finally:
                if os.path.exists(tmp_path):
                    os.remove(tmp_path)
        except OSError:
            # A read-only or full cache directory must never fail the run.
            pass


#: Process-wide cache shared by the experiment harness.
_default_cache: Optional[TopologyCache] = None


def default_cache() -> TopologyCache:
    """The process-wide :class:`TopologyCache` (created on first use)."""
    global _default_cache
    if _default_cache is None:
        _default_cache = TopologyCache()
    return _default_cache


def clear_default_cache() -> None:
    """Reset the process-wide cache's memory tier and statistics."""
    global _default_cache
    _default_cache = None

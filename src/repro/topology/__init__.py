"""Network underlay: transit-stub topology generation and delay queries.

This subpackage replaces the GT-ITM tool the paper used.  It provides:

* :mod:`repro.topology.graph` — a small undirected weighted graph with
  Dijkstra / connectivity utilities (the reference implementation that the
  fast oracle is verified against);
* :mod:`repro.topology.transit_stub` — the generator producing the paper's
  15600-node two-level hierarchy with its exact delay ranges;
* :mod:`repro.topology.routing` — a hierarchical shortest-path oracle
  answering pairwise delay queries in O(1) after a cheap precompute.
"""

from .euclidean import EuclideanUnderlay, generate_euclidean
from .graph import Graph
from .routing import DelayOracle
from .transit_stub import TransitStubTopology, generate_transit_stub

__all__ = [
    "DelayOracle",
    "EuclideanUnderlay",
    "Graph",
    "TransitStubTopology",
    "generate_euclidean",
    "generate_transit_stub",
]

"""Zero-copy sharing of topology/oracle arrays via POSIX shared memory.

A parallel sweep at high ``--jobs`` makes every worker load (or worse,
recompute) its own copy of the underlay arrays — the delay oracle's
distance matrices dominate, at paper scale tens of MB per worker.  This
module lets the first process that materialises a topology *publish* its
arrays into one ``multiprocessing.shared_memory`` segment; every other
worker *attaches* and maps the same physical pages read-only, so N
workers hold one copy total and attachment costs microseconds instead of
an ``.npz`` parse.

Lifecycle
---------

* The experiment pool opens a **session** before forking workers: it
  picks a unique token and exports it as ``REPRO_SHM_SESSION``.  All
  segment names are derived from it (``rpt<session>-<cache key>``), so
  concurrent sweeps on one machine never collide.
* Any process in the session may :func:`publish` a keyed array bundle.
  Creation is exclusive; losing a publish race (another worker created
  the segment first) is not an error — the loser simply attaches.
* :func:`attach` maps a published bundle and returns **read-only** numpy
  views.  The mapped :class:`~multiprocessing.shared_memory.SharedMemory`
  object is kept alive in a per-process registry so the views can never
  outlive their buffer.
* The pool closes the session in a ``finally``: :func:`cleanup_session`
  unlinks every segment with the session prefix — by scanning
  ``/dev/shm`` rather than trusting bookkeeping, so segments published
  by a worker that later **crashed** are reclaimed too.  A crashed
  worker can never leak: the parent outlives it and sweeps the prefix.

Python 3.8–3.12 ``resource_tracker`` registers *attached* segments as if
the attaching process owned them, and would unlink them (with a noisy
warning) when that process exits — wrong for our parent-owned lifecycle,
so both :func:`publish` and :func:`attach` unregister their handle from
the tracker; ownership rests solely with the session sweep.

Set ``REPRO_SHM=0`` to disable the tier entirely (e.g. on a machine with
a tiny ``/dev/shm``); everything falls back to the disk cache.
"""

from __future__ import annotations

import os
import pickle
import secrets
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Session token exported by the pool; empty/unset = no shm tier.
ENV_SHM_SESSION = "REPRO_SHM_SESSION"
#: Kill switch: set to "0" to disable shared-memory publishing/attaching.
ENV_SHM_ENABLE = "REPRO_SHM"

_NAME_PREFIX = "rpt"
_ALIGN = 64

#: Attached/published segments kept alive for the life of this process
#: (numpy views into a closed SharedMemory buffer would be fatal).
_keepalive: Dict[str, object] = {}


def shm_available() -> bool:
    """True when the platform shared-memory primitive is importable."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:
        return False
    return True


def shm_enabled() -> bool:
    """True when a session is open and the kill switch is not set."""
    if os.environ.get(ENV_SHM_ENABLE, "1") == "0":
        return False
    return bool(os.environ.get(ENV_SHM_SESSION)) and shm_available()


def new_session_token() -> str:
    """A short unique token naming one pool run's segment family."""
    return secrets.token_hex(4)


def segment_name(key: str, session: Optional[str] = None) -> str:
    """The shared-memory segment name for a cache key in a session."""
    if session is None:
        session = os.environ.get(ENV_SHM_SESSION, "")
    return f"{_NAME_PREFIX}{session}-{key}"


def _untrack(shm) -> None:
    """Stop resource_tracker from unlinking a segment it does not own."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _pack_layout(
    arrays: Dict[str, np.ndarray]
) -> Tuple[bytes, List[Tuple[str, str, tuple, int]], int]:
    """Compute the segment layout: header bytes, entries, total size."""
    entries: List[Tuple[str, str, tuple, int]] = []
    offset = 0
    # Array offsets are relative to the end of the (length-prefixed) header.
    for name, arr in arrays.items():
        arr = _contiguous(arr)
        entries.append((name, arr.dtype.str, arr.shape, offset))
        offset += (arr.nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
    header = pickle.dumps(entries, protocol=4)
    return header, entries, offset


def _contiguous(a) -> np.ndarray:
    """C-contiguous view/copy preserving shape (0-d scalars included —
    ``ascontiguousarray`` would promote them to 1-d)."""
    arr = np.asarray(a)
    return arr if arr.ndim == 0 else np.ascontiguousarray(arr)


def publish(key: str, arrays: Dict[str, np.ndarray]) -> bool:
    """Publish an array bundle under ``key`` in the current session.

    Returns True when this process created the segment, False when it
    already existed (another worker won the race — the existing copy is
    byte-identical by construction, both sides derived it from the same
    content key) or when the tier is disabled.  Never raises for
    resource exhaustion: a full ``/dev/shm`` degrades to the disk tier.
    """
    if not shm_enabled():
        return False
    from multiprocessing import shared_memory

    header, entries, payload_size = _pack_layout(arrays)
    total = 8 + len(header) + payload_size
    name = segment_name(key)
    try:
        shm = shared_memory.SharedMemory(name=name, create=True, size=total)
    except FileExistsError:
        return False
    except OSError:
        return False
    _untrack(shm)
    base = 8 + len(header)
    shm.buf[:8] = len(header).to_bytes(8, "little")
    shm.buf[8:base] = header
    for (name_, dtype, shape, offset), src in zip(
        entries, (_contiguous(a) for a in arrays.values())
    ):
        dst = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf,
                         offset=base + offset)
        dst[...] = src
    _keepalive[name] = shm
    return True


def attach(key: str) -> Optional[Dict[str, np.ndarray]]:
    """Map a published bundle; None when absent or the tier is disabled.

    The returned arrays are zero-copy read-only views into the shared
    pages; they stay valid for the life of this process (the segment
    handle is pinned in a module registry).
    """
    if not shm_enabled():
        return None
    from multiprocessing import shared_memory

    name = segment_name(key)
    shm = _keepalive.get(name)
    if shm is None:
        try:
            shm = shared_memory.SharedMemory(name=name, create=False)
        except (FileNotFoundError, OSError):
            return None
        _untrack(shm)
        _keepalive[name] = shm
    try:
        header_len = int.from_bytes(bytes(shm.buf[:8]), "little")
        entries = pickle.loads(bytes(shm.buf[8 : 8 + header_len]))
        base = 8 + header_len
        arrays: Dict[str, np.ndarray] = {}
        for name_, dtype, shape, offset in entries:
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf,
                              offset=base + offset)
            view.flags.writeable = False
            arrays[name_] = view
        return arrays
    except Exception:
        # Torn or foreign segment: treat as a miss, fall back to disk.
        return None


def cleanup_session(session: Optional[str] = None) -> int:
    """Unlink every segment belonging to ``session``; returns the count.

    Scans ``/dev/shm`` for the session prefix so segments created by
    since-dead workers are reclaimed too.  Safe to call repeatedly and
    from processes that never published anything.
    """
    if session is None:
        session = os.environ.get(ENV_SHM_SESSION, "")
    if not session or not shm_available():
        return 0
    from multiprocessing import shared_memory

    prefix = f"{_NAME_PREFIX}{session}-"
    removed = 0
    # Release our own handles first so unlink fully frees the pages.
    for name in [n for n in _keepalive if n.startswith(prefix)]:
        try:
            _keepalive.pop(name).close()
        except Exception:
            pass
    shm_dir = "/dev/shm"
    names: List[str] = []
    if os.path.isdir(shm_dir):
        names = [n for n in os.listdir(shm_dir) if n.startswith(prefix)]
    for name in names:
        try:
            seg = shared_memory.SharedMemory(name=name, create=False)
        except (FileNotFoundError, OSError):
            continue
        # No _untrack here: this attach registers with resource_tracker
        # and unlink() unregisters — they balance out exactly.
        try:
            seg.close()
            seg.unlink()
            removed += 1
        except (FileNotFoundError, OSError):
            pass
    return removed


def active_segments(session: Optional[str] = None) -> List[str]:
    """Names of live segments for a session (diagnostics and tests)."""
    if session is None:
        session = os.environ.get(ENV_SHM_SESSION, "")
    prefix = f"{_NAME_PREFIX}{session}-"
    shm_dir = "/dev/shm"
    if not session or not os.path.isdir(shm_dir):
        return []
    return sorted(n for n in os.listdir(shm_dir) if n.startswith(prefix))

"""A Euclidean latency-plane underlay — the lightweight alternative
substrate.

Hosts are points in a 2-D plane (the classic network-coordinates
abstraction, cf. Vivaldi/GNP): pairwise delay is the Euclidean distance
(in milliseconds) plus each endpoint's access-link delay.  Delays are
symmetric, satisfy the triangle inequality, and cost O(1) per query at
*any* scale with O(n) memory — no graph, no precompute.

The figures all run on the paper's transit-stub underlay; the plane
model exists to (a) check that the protocol conclusions do not hinge on
transit-stub structure and (b) let users simulate populations far beyond
what an explicit router graph supports.  It duck-types both the topology
(``stub_nodes``) and the oracle (``delay_ms``) sides of the simulation
API, so ``ChurnSimulation(config, proto, topology=plane, oracle=plane)``
just works.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..errors import TopologyError


@dataclass
class EuclideanUnderlay:
    """Latency plane: positions and per-host access delays, both in ms."""

    positions: np.ndarray = field(repr=False)
    access_delay_ms: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.positions.ndim != 2 or self.positions.shape[1] != 2:
            raise TopologyError(
                f"positions must be (n, 2), got {self.positions.shape}"
            )
        if self.access_delay_ms.shape != (self.positions.shape[0],):
            raise TopologyError("access_delay_ms must have one entry per host")
        if np.any(self.access_delay_ms < 0):
            raise TopologyError("access delays must be >= 0")

    @property
    def num_nodes(self) -> int:
        return self.positions.shape[0]

    @property
    def stub_nodes(self) -> List[int]:
        """Every host can carry a member (duck-typing the transit-stub API)."""
        return list(range(self.num_nodes))

    def delay_ms(self, a: int, b: int) -> float:
        """Plane distance plus both access links; zero to self."""
        if not (0 <= a < self.num_nodes and 0 <= b < self.num_nodes):
            raise TopologyError(f"unknown host id in ({a}, {b})")
        if a == b:
            return 0.0
        diff = self.positions[a] - self.positions[b]
        return float(
            np.hypot(diff[0], diff[1])
            + self.access_delay_ms[a]
            + self.access_delay_ms[b]
        )

    def delays_from(self, source: int, targets) -> np.ndarray:
        return np.array([self.delay_ms(source, t) for t in targets])


def generate_euclidean(
    num_hosts: int,
    seed: int = 1,
    plane_side_ms: float = 60.0,
    access_delay_range_ms: Tuple[float, float] = (2.0, 9.0),
) -> EuclideanUnderlay:
    """Uniform host positions in a square of side ``plane_side_ms``.

    The defaults give pairwise delays in roughly the same range as the
    paper's transit-stub topology (tens of milliseconds coast-to-coast
    plus a few milliseconds of access link on each side).
    """
    if num_hosts < 1:
        raise TopologyError(f"num_hosts must be >= 1, got {num_hosts}")
    if plane_side_ms <= 0:
        raise TopologyError("plane_side_ms must be > 0")
    lo, hi = access_delay_range_ms
    if lo < 0 or hi < lo:
        raise TopologyError("need 0 <= lo <= hi access delays")
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0.0, plane_side_ms, size=(num_hosts, 2))
    access = rng.uniform(lo, hi, size=num_hosts)
    return EuclideanUnderlay(positions=positions, access_delay_ms=access)

"""Statistics helpers: summaries, CDFs and confidence intervals."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

#: Two-sided 95% critical values of Student's t for small sample sizes
#: (df 1..30); beyond 30 we use the normal value 1.96.  Hard-coding the
#: table keeps scipy optional.
_T_95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def t_critical_95(df: int) -> float:
    """Two-sided 95% Student-t critical value for ``df`` degrees of freedom.

    ``df == 0`` (a single-sample input) returns ``inf``: one observation
    pins nothing down, so the limiting interval is unbounded rather than
    an error — callers that feed ``data.size - 1`` straight in no longer
    have to special-case singletons.  Negative ``df`` is still a bug.
    """
    if df < 0:
        raise ValueError(f"degrees of freedom must be >= 0, got {df}")
    if df == 0:
        return math.inf
    if df <= len(_T_95):
        return _T_95[df - 1]
    return 1.96


def confidence_interval_95(values: Sequence[float]) -> float:
    """Half-width of the 95% confidence interval of the mean.

    Returns 0 for fewer than two samples (no dispersion estimate) and
    *exactly* 0 for an all-identical sample: pairwise-summation noise in
    ``np.std`` can otherwise produce a ~1e-17 width, which downstream
    consumers (e.g. :mod:`repro.validate` gate tolerances) would treat as
    a real dispersion estimate.  A NaN anywhere in the sample propagates
    to a NaN width.
    """
    data = np.asarray(values, dtype=float)
    if data.size < 2:
        return 0.0
    if np.all(data == data[0]):
        return 0.0
    sem = data.std(ddof=1) / math.sqrt(data.size)
    return float(t_critical_95(data.size - 1) * sem)


def bootstrap_ci_95(
    values: Sequence[float], n_resamples: int = 2000, seed: int = 0
) -> Tuple[float, float]:
    """Percentile-bootstrap 95% CI of the mean: ``(lo, hi)``.

    Deterministic for a given ``seed`` (the resampling RNG is private),
    so committed baselines are reproducible.  Degenerate samples follow
    :func:`mean_and_ci`'s conventions: an empty sample yields
    ``(nan, nan)`` and a singleton collapses to a zero-width interval.
    """
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        return math.nan, math.nan
    if data.size == 1 or bool(np.all(data == data[0])):
        # All-identical samples collapse to an exactly zero-width
        # interval (resampled means would reintroduce ~1-ulp noise).
        value = float(data[0])
        return value, value
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, data.size, size=(n_resamples, data.size))
    means = data[indices].mean(axis=1)
    return (
        float(np.percentile(means, 2.5)),
        float(np.percentile(means, 97.5)),
    )


def within_tolerance(a: float, b: float, rtol: float = 0.0, atol: float = 0.0) -> bool:
    """NaN-aware, *symmetric* tolerance comparison of two scalars.

    ``NaN`` equals only ``NaN`` (the experiment reports use it for empty
    cells), infinities must match exactly (same sign), and finite values
    pass iff ``|a - b| <= atol + rtol * max(|a|, |b|)``.  Using the max
    of the magnitudes — not one side's — makes the predicate symmetric:
    ``within_tolerance(a, b) == within_tolerance(b, a)`` always.
    """
    if rtol < 0 or atol < 0:
        raise ValueError(f"tolerances must be >= 0, got rtol={rtol}, atol={atol}")
    a = float(a)
    b = float(b)
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= atol + rtol * max(abs(a), abs(b))


def mean_and_ci(values: Sequence[float]) -> Tuple[float, float]:
    """(mean, 95% CI half-width); mean is NaN for an empty sample."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        return math.nan, 0.0
    return float(data.mean()), confidence_interval_95(data)


def cdf_points(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: sorted values and cumulative fractions in (0, 1]."""
    data = np.sort(np.asarray(values, dtype=float))
    if data.size == 0:
        return data, data
    fractions = np.arange(1, data.size + 1) / data.size
    return data, fractions


def cdf_at(values: Sequence[float], thresholds: Sequence[float]) -> List[float]:
    """Fraction of ``values`` <= each threshold (the paper's Fig. 5 rows)."""
    data = np.sort(np.asarray(values, dtype=float))
    if data.size == 0:
        return [math.nan for _ in thresholds]
    return [float(np.searchsorted(data, t, side="right") / data.size) for t in thresholds]


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p90: float
    p99: float
    maximum: float


def describe(values: Sequence[float]) -> Summary:
    """Summarise a sample (all-NaN summary when empty)."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        nan = math.nan
        return Summary(0, nan, nan, nan, nan, nan, nan, nan)
    return Summary(
        count=int(data.size),
        mean=float(data.mean()),
        std=float(data.std(ddof=1)) if data.size > 1 else 0.0,
        minimum=float(data.min()),
        p50=float(np.percentile(data, 50)),
        p90=float(np.percentile(data, 90)),
        p99=float(np.percentile(data, 99)),
        maximum=float(data.max()),
    )

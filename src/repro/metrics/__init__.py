"""Metrics: per-run collectors and statistics helpers.

:mod:`repro.metrics.collectors` accumulates the raw events a churn run
produces (disruptions, reconnections, delay samples, population integral);
:mod:`repro.metrics.stats` provides means/CDFs/confidence intervals; and
:mod:`repro.metrics.report` renders aligned text tables in the shape of
the paper's figures.
"""

from .collectors import ChurnMetrics, TimeSeries
from .stats import (
    bootstrap_ci_95,
    cdf_points,
    confidence_interval_95,
    describe,
    mean_and_ci,
    within_tolerance,
)

__all__ = [
    "ChurnMetrics",
    "TimeSeries",
    "bootstrap_ci_95",
    "cdf_points",
    "confidence_interval_95",
    "describe",
    "mean_and_ci",
    "within_tolerance",
]

"""Plain-text table rendering for experiment output.

Every experiment prints its figure as an aligned table (series down the
rows, the x-axis across the columns), so benchmark logs read like the
paper's plots.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_value(value: object, precision: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        magnitude = abs(value)
        if magnitude != 0 and (magnitude >= 1e5 or magnitude < 10 ** (-precision)):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    title: str,
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
) -> str:
    """Render an aligned text table with a title rule."""
    formatted: List[List[str]] = [[str(h) for h in header]]
    for row in rows:
        formatted.append([format_value(cell, precision) for cell in row])
    widths = [
        max(len(formatted[r][c]) for r in range(len(formatted)))
        for c in range(len(header))
    ]
    lines = [title, "=" * max(len(title), 8)]
    for r, row in enumerate(formatted):
        lines.append(
            "  ".join(cell.rjust(widths[c]) for c, cell in enumerate(row))
        )
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_series_table(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Sequence[tuple],
    precision: int = 3,
) -> str:
    """Table with one row per named series: ``(name, [y-values...])``."""
    header = [x_label] + [str(x) for x in x_values]
    rows = []
    for name, values in series:
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(x_values)} x points"
            )
        rows.append([name, *values])
    return render_table(title, header, rows, precision)

"""Event collectors populated by the churn simulation driver.

:class:`ChurnMetrics` accumulates exactly the raw quantities the paper's
Figures 4-11 are computed from.  All counters respect the measurement
window: events before ``window_start`` (warm-up) or after ``window_end``
are ignored, matching the paper's "steady state" methodology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .stats import mean_and_ci


def exact_num(value):
    """Normalize a number for an exact JSON payload.

    Preserves the int/float distinction — JSON keeps it, and the figure
    code downstream is type-sensitive (a probe count serialized as
    ``0.0`` would make a replayed result differ from a fresh one by a
    single trailing ``.0`` in ``--json``).  Plain ints stay ints;
    everything else (incl. numpy scalars) becomes a Python float, which
    ``repr``-round-trips bit-for-bit.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    return float(value)


@dataclass
class TimeSeries:
    """An append-only (time, value) series (probe member figures 6 & 9)."""

    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, t: float, value: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError(f"time going backwards: {t} after {self.times[-1]}")
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def as_pairs(self) -> List[Tuple[float, float]]:
        return list(zip(self.times, self.values))

    def to_payload(self) -> dict:
        """JSON-ready exact form (floats round-trip bit-for-bit)."""
        return {
            "times": [exact_num(t) for t in self.times],
            "values": [exact_num(v) for v in self.values],
        }

    @classmethod
    def from_payload(cls, data: dict) -> "TimeSeries":
        return cls(times=list(data["times"]), values=list(data["values"]))


class ChurnMetrics:
    """Raw metric accumulation for one churn run.

    The driver calls the ``record_*`` methods; experiments read the
    ``avg_*`` properties after the run.
    """

    def __init__(
        self, window_start: float, window_end: float, mean_lifetime_s: float = math.nan
    ):
        if window_end <= window_start:
            raise ValueError("window_end must be > window_start")
        self.window_start = window_start
        self.window_end = window_end
        #: Mean member lifetime; converts per-node-second event rates into
        #: the paper's per-lifetime metrics.
        self.mean_lifetime_s = mean_lifetime_s
        #: Disruption events (one per affected descendant per failure).
        self.disruption_events = 0
        #: Parent changes caused by the optimizing mechanism (Fig. 10).
        self.optimization_reconnections = 0
        #: Parent changes caused by failure recovery (rejoins).
        self.failure_reconnections = 0
        #: Per-departed-member lifetime disruption counts (Figs 4, 5).
        self.disruptions_per_departed: List[int] = []
        #: Per-departed-member optimization reconnections (Fig. 10).
        self.reconnections_per_departed: List[int] = []
        #: Attached-population time integral (node-seconds) over the window.
        self.node_seconds = 0.0
        self._last_population_time = window_start
        self._last_population = 0
        #: Periodic whole-tree delay/stretch samples (Figs 7, 8).
        self.delay_samples_ms: List[float] = []
        self.stretch_samples: List[float] = []
        #: Sessions that never managed to attach before departing.
        self.rejected_sessions = 0
        self.join_retries = 0
        #: Number of member departures observed inside the window.
        self.departures_in_window = 0
        self.arrivals_in_window = 0

    # -- recording -------------------------------------------------------------

    def in_window(self, t: float) -> bool:
        return self.window_start <= t <= self.window_end

    def record_population(self, t: float, population: int) -> None:
        """Integrate attached population over the window (call on changes)."""
        t_clamped = min(max(t, self.window_start), self.window_end)
        if t_clamped > self._last_population_time:
            self.node_seconds += self._last_population * (
                t_clamped - self._last_population_time
            )
            self._last_population_time = t_clamped
        self._last_population = population

    def record_disruptions(self, t: float, affected: int) -> None:
        if self.in_window(t):
            self.disruption_events += affected

    def record_optimization_reconnections(self, t: float, count: int) -> None:
        if self.in_window(t):
            self.optimization_reconnections += count

    def record_failure_reconnection(self, t: float) -> None:
        if self.in_window(t):
            self.failure_reconnections += 1

    def record_departure(
        self,
        t: float,
        disruptions: int,
        optimization_reconnections: int,
        full_observation: bool = True,
    ) -> None:
        """Record a member departure.

        ``full_observation`` is False for members of the stationary
        initial population, whose pre-simulation disruptions were not
        observed; they count toward departure totals but not toward the
        per-lifetime distributions.
        """
        if self.in_window(t):
            self.departures_in_window += 1
            if full_observation:
                self.disruptions_per_departed.append(disruptions)
                self.reconnections_per_departed.append(optimization_reconnections)

    def record_arrival(self, t: float) -> None:
        if self.in_window(t):
            self.arrivals_in_window += 1

    def record_tree_sample(self, delay_ms: float, stretch: float) -> None:
        self.delay_samples_ms.append(delay_ms)
        self.stretch_samples.append(stretch)

    # -- serialization ------------------------------------------------------------

    def to_payload(self) -> dict:
        """Every accumulated field, JSON-ready and exact.

        Includes the population-integral bookkeeping
        (``_last_population_time`` / ``_last_population``) so a rebuilt
        instance is state-identical, not merely derived-metric-identical.
        """
        return {
            "window_start": self.window_start,
            "window_end": self.window_end,
            "mean_lifetime_s": self.mean_lifetime_s,
            "disruption_events": int(self.disruption_events),
            "optimization_reconnections": int(self.optimization_reconnections),
            "failure_reconnections": int(self.failure_reconnections),
            "disruptions_per_departed": [int(x) for x in self.disruptions_per_departed],
            "reconnections_per_departed": [
                int(x) for x in self.reconnections_per_departed
            ],
            "node_seconds": exact_num(self.node_seconds),
            "last_population_time": exact_num(self._last_population_time),
            "last_population": int(self._last_population),
            "delay_samples_ms": [exact_num(x) for x in self.delay_samples_ms],
            "stretch_samples": [exact_num(x) for x in self.stretch_samples],
            "rejected_sessions": int(self.rejected_sessions),
            "join_retries": int(self.join_retries),
            "departures_in_window": int(self.departures_in_window),
            "arrivals_in_window": int(self.arrivals_in_window),
        }

    @classmethod
    def from_payload(cls, data: dict) -> "ChurnMetrics":
        metrics = cls(
            data["window_start"], data["window_end"], data["mean_lifetime_s"]
        )
        metrics.disruption_events = data["disruption_events"]
        metrics.optimization_reconnections = data["optimization_reconnections"]
        metrics.failure_reconnections = data["failure_reconnections"]
        metrics.disruptions_per_departed = list(data["disruptions_per_departed"])
        metrics.reconnections_per_departed = list(data["reconnections_per_departed"])
        metrics.node_seconds = data["node_seconds"]
        metrics._last_population_time = data["last_population_time"]
        metrics._last_population = data["last_population"]
        metrics.delay_samples_ms = list(data["delay_samples_ms"])
        metrics.stretch_samples = list(data["stretch_samples"])
        metrics.rejected_sessions = data["rejected_sessions"]
        metrics.join_retries = data["join_retries"]
        metrics.departures_in_window = data["departures_in_window"]
        metrics.arrivals_in_window = data["arrivals_in_window"]
        return metrics

    # -- derived metrics ----------------------------------------------------------

    @property
    def avg_disruptions_per_node(self) -> float:
        """Average disruptions a member experiences during its lifetime.

        Rate-based: disruption events per attached node-second in the
        window, scaled by the mean lifetime.  Unbiased under stationary
        initialisation, where per-departure counting would miss the
        pre-simulation exposure of initial members.
        """
        return self.disruption_rate_per_node_second() * self.mean_lifetime_s

    @property
    def avg_disruptions_per_departed(self) -> float:
        """Mean per-lifetime disruption count over fully-observed members
        (the direct estimator; agrees with the rate-based one in steady
        state up to lifetime-truncation effects)."""
        mean, _ = mean_and_ci(self.disruptions_per_departed)
        return mean

    @property
    def avg_optimization_reconnections_per_node(self) -> float:
        """Fig. 10's protocol-overhead metric (rate-based, per lifetime)."""
        if self.node_seconds <= 0:
            return math.nan
        return (
            self.optimization_reconnections / self.node_seconds
        ) * self.mean_lifetime_s

    def disruption_rate_per_node_second(self) -> float:
        """Disruption events per attached node-second."""
        if self.node_seconds <= 0:
            return math.nan
        return self.disruption_events / self.node_seconds

    @property
    def avg_service_delay_ms(self) -> float:
        mean, _ = mean_and_ci(self.delay_samples_ms)
        return mean

    @property
    def avg_stretch(self) -> float:
        mean, _ = mean_and_ci(self.stretch_samples)
        return mean

    @property
    def mean_population(self) -> float:
        span = self.window_end - self.window_start
        return self.node_seconds / span if span > 0 else math.nan


class ResilienceMetrics:
    """Fault-resilience accounting for one run (see :mod:`repro.faults`).

    Splits every failure-driven quantity by *cause* — ``"churn"`` for
    ordinary workload departures vs ``"fault:<kind>"`` for injected
    faults — so a campaign can compare correlated-failure damage against
    the independent-loss baseline on the same run:

    * **disruptions** — events and affected-member counts per cause, plus
      per-member disruption totals;
    * **MTTR** — mean time to repair: how long an orphan stayed detached
      between a disruption and its successful re-attachment;
    * **delivered-data ratio** — attached (streaming) node-seconds over
      attached + detached node-seconds inside the measurement window.

    The churn driver does not know this class; the fault campaign wires
    it through the ``disruption_observer`` / ``reattach_observer`` /
    ``departure_observer`` hooks.
    """

    def __init__(self, window_start: float, window_end: float):
        if window_end <= window_start:
            raise ValueError("window_end must be > window_start")
        self.window_start = window_start
        self.window_end = window_end
        #: Faults that actually fired: (time, kind, detail-dict).
        self.faults_fired: List[Tuple[float, str, dict]] = []
        #: Disruption events per cause (one event per failed member).
        self.disruption_events: Dict[str, int] = {}
        #: Members losing the stream per cause (failed + descendants).
        self.members_affected: Dict[str, int] = {}
        #: Per-member disruption counts over the whole run.
        self.disruptions_per_member: Dict[int, int] = {}
        #: Repair-time samples per cause, seconds.
        self.repair_times: Dict[str, List[float]] = {}
        #: Detached (non-streaming) node-seconds inside the window.
        self.detached_seconds = 0.0
        #: Stream content lost to link degradation (loss_rate x member x
        #: seconds, clipped to the window) while members stayed attached.
        self.stream_loss_seconds = 0.0
        #: member_id -> (detach time, cause) for currently-open outages.
        self._open_outages: Dict[int, Tuple[float, str]] = {}
        #: member_id -> closed (start, end) outage intervals, unclipped
        #: (consumers — e.g. the multi-tree stripe accounting — clip to
        #: their own observation windows).
        self.outage_intervals: Dict[int, List[Tuple[float, float]]] = {}
        #: Optional hooks: ``outage_opened(t, member_id, cause)`` fires
        #: only when a genuinely new outage opens (re-marks of an already
        #: detached member keep the earliest mark and stay silent);
        #: ``outage_closed(start, end, member_id, cause)`` fires on every
        #: actual close — reattach, departure, or end-of-run ``finish``.
        self.outage_opened: Optional[Callable[[float, int, str], None]] = None
        self.outage_closed: Optional[
            Callable[[float, float, int, str], None]
        ] = None

    # -- recording -------------------------------------------------------------

    def record_fault(self, t: float, kind: str, detail: dict) -> None:
        self.faults_fired.append((t, kind, dict(detail)))

    def record_disruption(self, t: float, cause: str, member_ids) -> None:
        """One failure event: ``member_ids`` are the failed member and its
        descendants (everyone whose stream stopped)."""
        member_ids = list(member_ids)
        self.disruption_events[cause] = self.disruption_events.get(cause, 0) + 1
        self.members_affected[cause] = (
            self.members_affected.get(cause, 0) + len(member_ids)
        )
        for member_id in member_ids:
            self.disruptions_per_member[member_id] = (
                self.disruptions_per_member.get(member_id, 0) + 1
            )

    def mark_detached(self, t: float, member_id: int, cause: str) -> None:
        """An orphan lost its parent at ``t`` (keeps the earliest mark)."""
        if member_id in self._open_outages:
            return
        self._open_outages[member_id] = (t, cause)
        if self.outage_opened is not None:
            self.outage_opened(t, member_id, cause)

    def record_reattach(self, t: float, member_id: int) -> None:
        opened = self._open_outages.pop(member_id, None)
        if opened is None:
            return
        start, cause = opened
        self.repair_times.setdefault(cause, []).append(t - start)
        self._account_detached(start, t)
        self._close_interval(start, t, member_id, cause)

    def record_stream_loss(
        self, start: float, end: float, members: int, loss_rate: float
    ) -> None:
        """Account partial stream loss over ``[start, end]`` for ``members``
        attached members (link degradation, not detachment)."""
        lo = max(start, self.window_start)
        hi = min(end, self.window_end)
        if hi > lo and members > 0 and loss_rate > 0:
            self.stream_loss_seconds += (hi - lo) * members * loss_rate

    def record_departure(self, t: float, member_id: int) -> None:
        """A member left; close any outage it never repaired."""
        opened = self._open_outages.pop(member_id, None)
        if opened is not None:
            start, cause = opened
            self._account_detached(start, t)
            self._close_interval(start, t, member_id, cause)

    def finish(self, t: float) -> None:
        """End of run: members still detached stayed so through ``t``."""
        for member_id in sorted(self._open_outages):
            start, cause = self._open_outages[member_id]
            self._account_detached(start, t)
            self._close_interval(start, t, member_id, cause)
        self._open_outages.clear()

    def _account_detached(self, start: float, end: float) -> None:
        lo = max(start, self.window_start)
        hi = min(end, self.window_end)
        if hi > lo:
            self.detached_seconds += hi - lo

    def _close_interval(
        self, start: float, end: float, member_id: int, cause: str
    ) -> None:
        if end > start:
            self.outage_intervals.setdefault(member_id, []).append((start, end))
        if self.outage_closed is not None:
            self.outage_closed(start, end, member_id, cause)

    # -- derived metrics ----------------------------------------------------------

    def mttr_s(self, cause: Optional[str] = None) -> float:
        """Mean time to repair, overall or for one cause."""
        if cause is None:
            samples = [s for times in self.repair_times.values() for s in times]
        else:
            samples = self.repair_times.get(cause, [])
        mean, _ = mean_and_ci(samples)
        return mean

    def delivered_data_ratio(self, attached_node_seconds: float) -> float:
        """Streaming time over total (streaming + repairing) member time.

        Stream content lost to link degradation counts against the
        delivered part even though the members stayed attached.
        """
        total = attached_node_seconds + self.detached_seconds
        if total <= 0:
            return math.nan
        delivered = max(0.0, attached_node_seconds - self.stream_loss_seconds)
        return delivered / total

    def as_dict(self) -> dict:
        """JSON-ready summary (cause-keyed; report schema of campaigns)."""
        return {
            "faults_fired": len(self.faults_fired),
            "disruption_events": dict(sorted(self.disruption_events.items())),
            "members_affected": dict(sorted(self.members_affected.items())),
            "disrupted_members": len(self.disruptions_per_member),
            "max_disruptions_per_member": max(
                self.disruptions_per_member.values(), default=0
            ),
            "mttr_s": {
                cause: self.mttr_s(cause)
                for cause in sorted(self.repair_times)
            },
            "detached_seconds": self.detached_seconds,
            "stream_loss_seconds": self.stream_loss_seconds,
        }

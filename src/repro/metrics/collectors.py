"""Event collectors populated by the churn simulation driver.

:class:`ChurnMetrics` accumulates exactly the raw quantities the paper's
Figures 4-11 are computed from.  All counters respect the measurement
window: events before ``window_start`` (warm-up) or after ``window_end``
are ignored, matching the paper's "steady state" methodology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

from .stats import mean_and_ci


@dataclass
class TimeSeries:
    """An append-only (time, value) series (probe member figures 6 & 9)."""

    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, t: float, value: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError(f"time going backwards: {t} after {self.times[-1]}")
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def as_pairs(self) -> List[Tuple[float, float]]:
        return list(zip(self.times, self.values))


class ChurnMetrics:
    """Raw metric accumulation for one churn run.

    The driver calls the ``record_*`` methods; experiments read the
    ``avg_*`` properties after the run.
    """

    def __init__(
        self, window_start: float, window_end: float, mean_lifetime_s: float = math.nan
    ):
        if window_end <= window_start:
            raise ValueError("window_end must be > window_start")
        self.window_start = window_start
        self.window_end = window_end
        #: Mean member lifetime; converts per-node-second event rates into
        #: the paper's per-lifetime metrics.
        self.mean_lifetime_s = mean_lifetime_s
        #: Disruption events (one per affected descendant per failure).
        self.disruption_events = 0
        #: Parent changes caused by the optimizing mechanism (Fig. 10).
        self.optimization_reconnections = 0
        #: Parent changes caused by failure recovery (rejoins).
        self.failure_reconnections = 0
        #: Per-departed-member lifetime disruption counts (Figs 4, 5).
        self.disruptions_per_departed: List[int] = []
        #: Per-departed-member optimization reconnections (Fig. 10).
        self.reconnections_per_departed: List[int] = []
        #: Attached-population time integral (node-seconds) over the window.
        self.node_seconds = 0.0
        self._last_population_time = window_start
        self._last_population = 0
        #: Periodic whole-tree delay/stretch samples (Figs 7, 8).
        self.delay_samples_ms: List[float] = []
        self.stretch_samples: List[float] = []
        #: Sessions that never managed to attach before departing.
        self.rejected_sessions = 0
        self.join_retries = 0
        #: Number of member departures observed inside the window.
        self.departures_in_window = 0
        self.arrivals_in_window = 0

    # -- recording -------------------------------------------------------------

    def in_window(self, t: float) -> bool:
        return self.window_start <= t <= self.window_end

    def record_population(self, t: float, population: int) -> None:
        """Integrate attached population over the window (call on changes)."""
        t_clamped = min(max(t, self.window_start), self.window_end)
        if t_clamped > self._last_population_time:
            self.node_seconds += self._last_population * (
                t_clamped - self._last_population_time
            )
            self._last_population_time = t_clamped
        self._last_population = population

    def record_disruptions(self, t: float, affected: int) -> None:
        if self.in_window(t):
            self.disruption_events += affected

    def record_optimization_reconnections(self, t: float, count: int) -> None:
        if self.in_window(t):
            self.optimization_reconnections += count

    def record_failure_reconnection(self, t: float) -> None:
        if self.in_window(t):
            self.failure_reconnections += 1

    def record_departure(
        self,
        t: float,
        disruptions: int,
        optimization_reconnections: int,
        full_observation: bool = True,
    ) -> None:
        """Record a member departure.

        ``full_observation`` is False for members of the stationary
        initial population, whose pre-simulation disruptions were not
        observed; they count toward departure totals but not toward the
        per-lifetime distributions.
        """
        if self.in_window(t):
            self.departures_in_window += 1
            if full_observation:
                self.disruptions_per_departed.append(disruptions)
                self.reconnections_per_departed.append(optimization_reconnections)

    def record_arrival(self, t: float) -> None:
        if self.in_window(t):
            self.arrivals_in_window += 1

    def record_tree_sample(self, delay_ms: float, stretch: float) -> None:
        self.delay_samples_ms.append(delay_ms)
        self.stretch_samples.append(stretch)

    # -- derived metrics ----------------------------------------------------------

    @property
    def avg_disruptions_per_node(self) -> float:
        """Average disruptions a member experiences during its lifetime.

        Rate-based: disruption events per attached node-second in the
        window, scaled by the mean lifetime.  Unbiased under stationary
        initialisation, where per-departure counting would miss the
        pre-simulation exposure of initial members.
        """
        return self.disruption_rate_per_node_second() * self.mean_lifetime_s

    @property
    def avg_disruptions_per_departed(self) -> float:
        """Mean per-lifetime disruption count over fully-observed members
        (the direct estimator; agrees with the rate-based one in steady
        state up to lifetime-truncation effects)."""
        mean, _ = mean_and_ci(self.disruptions_per_departed)
        return mean

    @property
    def avg_optimization_reconnections_per_node(self) -> float:
        """Fig. 10's protocol-overhead metric (rate-based, per lifetime)."""
        if self.node_seconds <= 0:
            return math.nan
        return (
            self.optimization_reconnections / self.node_seconds
        ) * self.mean_lifetime_s

    def disruption_rate_per_node_second(self) -> float:
        """Disruption events per attached node-second."""
        if self.node_seconds <= 0:
            return math.nan
        return self.disruption_events / self.node_seconds

    @property
    def avg_service_delay_ms(self) -> float:
        mean, _ = mean_and_ci(self.delay_samples_ms)
        return mean

    @property
    def avg_stretch(self) -> float:
        mean, _ = mean_and_ci(self.stretch_samples)
        return mean

    @property
    def mean_population(self) -> float:
        span = self.window_end - self.window_start
        return self.node_seconds / span if span > 0 else math.nan

"""Dependency-free SVG line charts for experiment results.

The reproduction environment has no plotting stack; this module renders
the figures' series as self-contained SVG documents (a few kilobytes,
viewable in any browser) so ``python -m repro.experiments ... --svg DIR``
can emit actual figures next to the text tables.

Deliberately small: line charts with nice-number axis ticks, a legend,
and optional log-y — exactly what Figures 4–14 need.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence
from xml.sax.saxutils import escape

#: A colour-blind-friendly categorical palette (Okabe-Ito).
PALETTE = (
    "#0072B2",  # blue
    "#D55E00",  # vermillion
    "#009E73",  # green
    "#CC79A7",  # purple
    "#E69F00",  # orange
    "#56B4E9",  # sky
    "#F0E442",  # yellow
    "#000000",  # black
)

MARGIN_LEFT = 70
MARGIN_RIGHT = 20
MARGIN_TOP = 40
MARGIN_BOTTOM = 80


def nice_ticks(low: float, high: float, max_ticks: int = 6) -> List[float]:
    """Round tick positions covering [low, high] (inclusive-ish)."""
    if not (math.isfinite(low) and math.isfinite(high)):
        return [0.0, 1.0]
    if high <= low:
        high = low + 1.0
    span = high - low
    raw_step = span / max(1, max_ticks - 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for factor in (1, 2, 2.5, 5, 10):
        step = factor * magnitude
        if span / step <= max_ticks - 1:
            break
    start = math.floor(low / step) * step
    ticks = []
    value = start
    while value <= high + step * 0.51:
        ticks.append(round(value, 10))
        value += step
    return ticks


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:g}"
    if abs(value) >= 1:
        return f"{value:g}"
    return f"{value:.3g}"


class _Scale:
    def __init__(self, low: float, high: float, pixel_low: float, pixel_high: float, log: bool):
        self.log = log
        if log:
            low = math.log10(low)
            high = math.log10(high)
        if high <= low:
            high = low + 1.0
        self.low, self.high = low, high
        self.pixel_low, self.pixel_high = pixel_low, pixel_high

    def __call__(self, value: float) -> float:
        v = math.log10(value) if self.log else value
        frac = (v - self.low) / (self.high - self.low)
        return self.pixel_low + frac * (self.pixel_high - self.pixel_low)


def line_chart(
    title: str,
    x_label: str,
    y_label: str,
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 720,
    height: int = 440,
    log_y: bool = False,
) -> str:
    """Render a line chart as an SVG document string."""
    if not x_values:
        raise ValueError("need at least one x value")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(x_values)} x values"
            )
    xs = [float(x) for x in x_values]
    all_y = [
        float(y)
        for ys in series.values()
        for y in ys
        if y == y and math.isfinite(float(y)) and (not log_y or y > 0)
    ]
    if not all_y:
        all_y = [0.0, 1.0]
    y_min = min(all_y)
    y_max = max(all_y)
    if not log_y:
        y_min = min(0.0, y_min)
    plot_w_low, plot_w_high = MARGIN_LEFT, width - MARGIN_RIGHT
    plot_h_low, plot_h_high = height - MARGIN_BOTTOM, MARGIN_TOP
    x_scale = _Scale(min(xs), max(xs), plot_w_low, plot_w_high, log=False)
    y_scale = _Scale(
        y_min if not log_y else max(min(all_y), 1e-12),
        y_max,
        plot_h_low,
        plot_h_high,
        log=log_y,
    )

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="20" text-anchor="middle" '
        f'font-size="14" font-weight="bold">{escape(title)}</text>',
    ]

    # Axes and ticks.
    if log_y:
        low_exp = math.floor(math.log10(max(min(all_y), 1e-12)))
        high_exp = math.ceil(math.log10(y_max))
        y_ticks = [10.0**e for e in range(low_exp, high_exp + 1)]
    else:
        y_ticks = nice_ticks(y_min, y_max)
    for tick in y_ticks:
        py = y_scale(tick)
        parts.append(
            f'<line x1="{plot_w_low}" y1="{py:.1f}" x2="{plot_w_high}" '
            f'y2="{py:.1f}" stroke="#dddddd"/>'
        )
        parts.append(
            f'<text x="{plot_w_low - 6}" y="{py + 4:.1f}" text-anchor="end">'
            f"{_format_tick(tick)}</text>"
        )
    for tick in nice_ticks(min(xs), max(xs)):
        if tick < min(xs) - 1e-9 or tick > max(xs) + 1e-9:
            continue
        px = x_scale(tick)
        parts.append(
            f'<line x1="{px:.1f}" y1="{plot_h_low}" x2="{px:.1f}" '
            f'y2="{plot_h_low + 4}" stroke="#333333"/>'
        )
        parts.append(
            f'<text x="{px:.1f}" y="{plot_h_low + 18}" text-anchor="middle">'
            f"{_format_tick(tick)}</text>"
        )
    parts.append(
        f'<line x1="{plot_w_low}" y1="{plot_h_low}" x2="{plot_w_high}" '
        f'y2="{plot_h_low}" stroke="#333333"/>'
    )
    parts.append(
        f'<line x1="{plot_w_low}" y1="{plot_h_low}" x2="{plot_w_low}" '
        f'y2="{plot_h_high}" stroke="#333333"/>'
    )
    parts.append(
        f'<text x="{(plot_w_low + plot_w_high) / 2}" y="{height - 44}" '
        f'text-anchor="middle">{escape(x_label)}</text>'
    )
    parts.append(
        f'<text x="16" y="{(plot_h_low + plot_h_high) / 2}" text-anchor="middle" '
        f'transform="rotate(-90 16 {(plot_h_low + plot_h_high) / 2})">'
        f"{escape(y_label)}</text>"
    )

    # Series polylines + point markers.
    for index, (name, ys) in enumerate(series.items()):
        colour = PALETTE[index % len(PALETTE)]
        points = []
        for x, y in zip(xs, ys):
            y = float(y)
            if y != y or not math.isfinite(y) or (log_y and y <= 0):
                continue
            points.append(f"{x_scale(x):.1f},{y_scale(y):.1f}")
        if points:
            parts.append(
                f'<polyline fill="none" stroke="{colour}" stroke-width="2" '
                f'points="{" ".join(points)}"/>'
            )
            for point in points:
                px, py = point.split(",")
                parts.append(
                    f'<circle cx="{px}" cy="{py}" r="3" fill="{colour}"/>'
                )

    # Legend along the bottom.
    legend_y = height - 24
    legend_x = MARGIN_LEFT
    for index, name in enumerate(series):
        colour = PALETTE[index % len(PALETTE)]
        parts.append(
            f'<rect x="{legend_x}" y="{legend_y - 9}" width="12" height="12" '
            f'fill="{colour}"/>'
        )
        parts.append(
            f'<text x="{legend_x + 16}" y="{legend_y + 1}">{escape(name)}</text>'
        )
        legend_x += 16 + 8 * len(name) + 24
    parts.append("</svg>")
    return "\n".join(parts)


def experiment_chart(result, log_y: bool = False) -> str:
    """Render an :class:`~repro.experiments.registry.ExperimentResult`
    whose ``data`` carries a ``series`` mapping."""
    series = result.data.get("series")
    if not isinstance(series, dict) or not series:
        raise ValueError(f"experiment {result.experiment_id} has no series data")
    for key, x_label in (
        ("sizes", "network size"),
        ("minutes", "time (minutes)"),
        ("intervals_s", "switching interval (s)"),
        ("thresholds", "disruptions (<=)"),
        ("buffers_s", "buffer (s)"),
    ):
        if key in result.data:
            x_values = result.data[key]
            break
    else:
        x_values = list(range(len(next(iter(series.values())))))
        x_label = "index"
    return line_chart(
        title=result.title,
        x_label=x_label,
        y_label="value",
        x_values=x_values,
        series=series,
        log_y=log_y,
    )

"""Content-addressed artifact store with verified reads and quarantine.

Layout under the store root::

    objects/<aa>/<digest>      # payload bytes, named by their SHA-256
    quarantine/<digest>.<pid>  # corrupted payloads, moved aside on read

Writes are atomic (temp file in the destination directory + ``fsync`` +
``os.replace``), so a ``kill -9`` mid-publication leaves at worst an
orphaned temp file — never a live object with torn bytes.  Reads hash
the payload and compare against the name: a mismatch (bit rot, torn
copy, truncation by an external tool) moves the object into
``quarantine/`` and reports a miss, so the caller re-executes the unit
instead of trusting bad bytes.
"""

from __future__ import annotations

import os
import tempfile
from typing import Iterator, List, Optional

from ..errors import StoreError
from .keys import content_digest
from .locks import FileLock

_HEX = set("0123456789abcdef")


def _is_digest(name: str) -> bool:
    return len(name) == 64 and set(name) <= _HEX


class ArtifactStore:
    """Immutable blobs named by their own SHA-256."""

    def __init__(self, root: str, lock: Optional[FileLock] = None):
        self.root = root
        self.objects_dir = os.path.join(root, "objects")
        self.quarantine_dir = os.path.join(root, "quarantine")
        self._lock = lock or FileLock(os.path.join(root, ".lock"))
        os.makedirs(self.objects_dir, exist_ok=True)
        os.makedirs(self.quarantine_dir, exist_ok=True)

    def _path(self, digest: str) -> str:
        return os.path.join(self.objects_dir, digest[:2], digest)

    # -- writes ------------------------------------------------------------------

    def put(self, data: bytes) -> str:
        """Store ``data``; returns its digest.  Idempotent: storing bytes
        that already exist is a no-op (content addressing dedups)."""
        digest = content_digest(data)
        path = self._path(digest)
        if os.path.exists(path):
            return digest
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        with self._lock:
            if os.path.exists(path):  # lost the publication race: same bytes
                return digest
            fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".put-")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_path, path)
            finally:
                if os.path.exists(tmp_path):
                    os.remove(tmp_path)
        return digest

    # -- verified reads ----------------------------------------------------------

    def get(self, digest: str) -> Optional[bytes]:
        """The payload for ``digest``, or ``None`` on miss *or* corruption.

        A corrupt object (stored bytes no longer hash to their name) is
        moved into ``quarantine/`` so the slot frees up for a re-executed
        unit to republish good bytes, and the evidence survives for
        post-mortems.
        """
        path = self._path(digest)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return None
        if content_digest(data) != digest:
            self._quarantine(digest, path)
            return None
        return data

    def _quarantine(self, digest: str, path: str) -> None:
        destination = os.path.join(
            self.quarantine_dir, f"{digest}.{os.getpid()}"
        )
        try:
            os.replace(path, destination)
        except OSError:  # pragma: no cover - racing quarantiners
            pass

    # -- maintenance -------------------------------------------------------------

    def contains(self, digest: str) -> bool:
        return os.path.exists(self._path(digest))

    def digests(self) -> Iterator[str]:
        for shard in sorted(os.listdir(self.objects_dir)):
            shard_dir = os.path.join(self.objects_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if _is_digest(name):
                    yield name

    def quarantined(self) -> List[str]:
        return sorted(os.listdir(self.quarantine_dir))

    def delete(self, digest: str) -> bool:
        """Remove one object (``gc`` uses this); True if it existed."""
        if not _is_digest(digest):
            raise StoreError(f"not a content digest: {digest!r}")
        with self._lock:
            try:
                os.remove(self._path(digest))
                return True
            except FileNotFoundError:
                return False

    def purge_quarantine(self) -> int:
        """Delete quarantined payloads; returns how many were removed."""
        removed = 0
        with self._lock:
            for name in self.quarantined():
                os.remove(os.path.join(self.quarantine_dir, name))
                removed += 1
        return removed

"""``python -m repro.store`` — inspect and maintain a durable run store.

Examples::

    python -m repro.store --store runs/ ls
    python -m repro.store --store runs/ show 3
    python -m repro.store --store runs/ show 6e7f2a1c
    python -m repro.store --store runs/ diff 3 7
    python -m repro.store diff BENCH_PR6.json BENCH_CI.json --section kernel
    python -m repro.store --store runs/ gc --purge-quarantine
    python -m repro.store --store runs/ export 3 --dest triage/

``diff`` walks two reports (stored runs by id, or plain JSON files such
as the ``BENCH_*.json`` timing baselines) and prints every leaf that
changed, with relative deltas on numeric values — the campaign/figure
regression-triage loop in one command.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from typing import Iterator, List, Optional, Tuple

from ..errors import StoreError
from .runstore import ENV_STORE_DIR, RunStore


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-store",
        description="Inspect/maintain a repro durable run store "
        "(see docs/store.md).",
    )
    parser.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="DIR",
        help=f"store directory (default: ${ENV_STORE_DIR})",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("ls", help="list recorded runs and unit totals")

    show = sub.add_parser("show", help="show one run (#id) or unit (key prefix)")
    show.add_argument("target", help="run id (number) or unit-key hex prefix")

    diff = sub.add_parser(
        "diff", help="compare two runs' reports (or two JSON files)"
    )
    diff.add_argument("a", help="run id or JSON file path")
    diff.add_argument("b", help="run id or JSON file path")
    diff.add_argument(
        "--section",
        type=str,
        default=None,
        help="restrict to one top-level key (e.g. summary, kernel)",
    )

    gc = sub.add_parser("gc", help="drop artifacts no ledger row references")
    gc.add_argument(
        "--purge-quarantine",
        action="store_true",
        help="also delete quarantined (corrupt) payloads",
    )

    export = sub.add_parser("export", help="copy one run's outputs to a dir")
    export.add_argument("run_id", type=int)
    export.add_argument("--dest", type=str, required=True)
    return parser


def _open_store(args) -> RunStore:
    path = args.store or os.environ.get(ENV_STORE_DIR)
    if not path:
        raise StoreError(
            f"no store directory: pass --store or set ${ENV_STORE_DIR}"
        )
    if not os.path.isdir(path):
        raise StoreError(f"store directory does not exist: {path}")
    return RunStore(path)


def _stamp(epoch: float) -> str:
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(epoch))


# -- ls / show --------------------------------------------------------------------


def _cmd_ls(store: RunStore) -> int:
    totals = store.ledger.totals()
    print(
        f"store {store.root}: {totals['units']} units "
        f"({totals['executions']} executions, {totals['hits']} replays), "
        f"{totals['runs']} runs, "
        f"{len(store.artifacts.quarantined())} quarantined"
    )
    runs = store.ledger.runs()
    if runs:
        print()
        print(f"{'run':>4}  {'recorded':19}  {'units':>5}  {'replayed':>8}  name")
        for row in runs:
            print(
                f"{row['run_id']:>4}  {_stamp(row['created_at']):19}  "
                f"{row['units_total']:>5}  {row['units_replayed']:>8}  "
                f"{row['name']}"
            )
    by_experiment: dict = {}
    for unit in store.ledger.units():
        by_experiment[unit["experiment_id"]] = (
            by_experiment.get(unit["experiment_id"], 0) + 1
        )
    if by_experiment:
        print()
        for experiment_id in sorted(by_experiment):
            print(f"{by_experiment[experiment_id]:>6} x {experiment_id}")
    return 0


def _cmd_show(store: RunStore, target: str) -> int:
    if target.isdigit():
        row, report_text, _ = store.run_report(int(target))
        print(f"run #{row['run_id']}: {row['name']}")
        print(f"recorded:  {_stamp(row['created_at'])}")
        print(f"command:   {row['command']}")
        print(f"params:    {row['params_json']}")
        print(
            f"units:     {row['units_total']} total, "
            f"{row['units_replayed']} replayed from the ledger"
        )
        if report_text:
            print()
            print(report_text.rstrip("\n"))
        return 0
    matches = [
        unit
        for unit in store.ledger.units()
        if unit["unit_key"].startswith(target)
    ]
    if not matches:
        raise StoreError(f"no run id or unit-key prefix matches {target!r}")
    if len(matches) > 1:
        raise StoreError(
            f"ambiguous unit-key prefix {target!r} "
            f"({len(matches)} matches); give more hex digits"
        )
    unit = matches[0]
    print(f"unit {unit['unit_key']}")
    print(f"experiment: {unit['experiment_id']}")
    print(f"scale/seed: {unit['scale']:g} / {unit['seed']}")
    print(f"params:     {unit['params_json']}")
    print(f"artifact:   {unit['artifact']}")
    print(
        f"executions: {unit['executions']}   replays: {unit['hits']}   "
        f"recorded: {_stamp(unit['created_at'])}"
    )
    return 0


# -- diff -------------------------------------------------------------------------


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def iter_report_diff(
    a, b, path: str = "", rtol: float = 0.0, atol: float = 0.0
) -> Iterator[Tuple[str, str]]:
    """Yield ``(leaf_path, human description)`` for every difference.

    Structure-aware: dicts recurse over the key union, lists pairwise;
    numeric leaves get a relative delta, NaN==NaN counts as equal (the
    campaign reports use NaN for empty cells).  ``rtol``/``atol`` relax
    the numeric comparison (see
    :func:`repro.metrics.stats.within_tolerance`); the defaults keep the
    store CLI's exact-equality contract.  Non-numeric leaves always
    compare exactly.
    """
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b), key=str):
            where = f"{path}.{key}" if path else str(key)
            if key not in a:
                yield where, f"only in B: {b[key]!r}"
            elif key not in b:
                yield where, f"only in A: {a[key]!r}"
            else:
                yield from iter_report_diff(a[key], b[key], where, rtol, atol)
        return
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            yield path, f"length {len(a)} -> {len(b)}"
            return
        for index, (item_a, item_b) in enumerate(zip(a, b)):
            yield from iter_report_diff(
                item_a, item_b, f"{path}[{index}]", rtol, atol
            )
        return
    if _is_number(a) and _is_number(b):
        from ..metrics.stats import within_tolerance

        if within_tolerance(a, b, rtol=rtol, atol=atol):
            return
        if a and not math.isnan(a) and not math.isinf(a):
            delta = 100.0 * (b - a) / abs(a)
            yield path, f"{a:g} -> {b:g} ({delta:+.1f}%)"
        else:
            yield path, f"{a:g} -> {b:g}"
        return
    if a != b:
        yield path, f"{a!r} -> {b!r}"


def _load_side(store: Optional[RunStore], ref: str) -> Tuple[str, dict]:
    """A diff operand: a stored run id, or any JSON file on disk."""
    if os.path.isfile(ref):
        with open(ref) as handle:
            return ref, json.load(handle)
    if ref.isdigit():
        if store is None:
            raise StoreError(
                f"run id {ref} needs a store; pass --store or ${ENV_STORE_DIR}"
            )
        row, _, json_data = store.run_report(int(ref))
        if json_data is None:
            raise StoreError(
                f"run #{ref} has no JSON report artifact (or it is corrupt)"
            )
        return f"run #{ref} ({row['name']})", json_data
    raise StoreError(f"diff operand {ref!r} is neither a run id nor a file")


def _cmd_diff(args) -> int:
    store = None
    if args.a.isdigit() or args.b.isdigit():
        store = _open_store(args)
    label_a, data_a = _load_side(store, args.a)
    label_b, data_b = _load_side(store, args.b)
    if args.section is not None:
        try:
            data_a = data_a[args.section]
            data_b = data_b[args.section]
        except (KeyError, TypeError):
            raise StoreError(
                f"section {args.section!r} missing from one of the reports"
            ) from None
    print(f"A: {label_a}")
    print(f"B: {label_b}")
    differences = list(iter_report_diff(data_a, data_b))
    for where, description in differences:
        print(f"  {where}: {description}")
    if not differences:
        print("  reports are identical")
        return 0
    print(f"{len(differences)} difference(s)")
    return 1


# -- gc / export ------------------------------------------------------------------


def _cmd_gc(store: RunStore, purge_quarantine: bool) -> int:
    outcome = store.gc(purge_quarantine=purge_quarantine)
    print(
        f"gc: removed {outcome['removed']} unreferenced object(s), "
        f"purged {outcome['quarantine_purged']} quarantined"
    )
    return 0


def _cmd_export(store: RunStore, run_id: int, dest: str) -> int:
    row, report_text, json_data = store.run_report(run_id)
    os.makedirs(dest, exist_ok=True)
    meta = dict(row)
    meta["params"] = json.loads(row["params_json"])
    del meta["params_json"]
    written: List[str] = []
    with open(os.path.join(dest, "run.json"), "w") as handle:
        json.dump(meta, handle, indent=2)
        handle.write("\n")
    written.append("run.json")
    if report_text is not None:
        with open(os.path.join(dest, "report.txt"), "w") as handle:
            handle.write(report_text)
        written.append("report.txt")
    if json_data is not None:
        with open(os.path.join(dest, "data.json"), "w") as handle:
            json.dump(json_data, handle, indent=2, default=str)
        written.append("data.json")
    print(f"exported run #{run_id} -> {dest} ({', '.join(written)})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "diff":
            return _cmd_diff(args)
        store = _open_store(args)
        if args.command == "ls":
            return _cmd_ls(store)
        if args.command == "show":
            return _cmd_show(store, args.target)
        if args.command == "gc":
            return _cmd_gc(store, args.purge_quarantine)
        return _cmd_export(store, args.run_id, args.dest)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

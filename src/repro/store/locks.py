"""Advisory file locking for concurrent store writers.

Pool workers record unit completions into one shared store, and nothing
stops two independent CLI invocations from pointing ``--store`` at the
same directory — so every mutating section (ledger writes, artifact
publication) runs under an advisory ``flock`` on a sidecar lock file.

The lock is *advisory* on purpose: readers never take it (reads are
safe against torn state by construction — artifacts publish via
temp-file + rename and SQLite reads are transactional), so a wedged
writer can never block triage commands like ``repro.store ls``.

On platforms without ``fcntl`` the lock degrades to a no-op; SQLite's
own database-level locking still serializes ledger writers there, and
artifact publication stays atomic via ``os.replace``.
"""

from __future__ import annotations

import os
from typing import Optional

try:  # pragma: no cover - import guard exercised only off-POSIX
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None


class FileLock:
    """A reentrant advisory lock bound to one lock-file path.

    Usable as a context manager::

        with FileLock(os.path.join(root, ".lock")):
            ...  # mutate ledger/objects

    Reentrancy matters because a ledger method that takes the lock may
    be called from a store method that already holds it.
    """

    def __init__(self, path: str):
        self.path = path
        self._handle: Optional[int] = None
        self._depth = 0

    def acquire(self) -> None:
        if self._depth > 0:
            self._depth += 1
            return
        if fcntl is not None:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            self._handle = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            fcntl.flock(self._handle, fcntl.LOCK_EX)
        self._depth = 1

    def release(self) -> None:
        if self._depth == 0:
            raise RuntimeError("release() without acquire()")
        self._depth -= 1
        if self._depth > 0:
            return
        if self._handle is not None:
            fcntl.flock(self._handle, fcntl.LOCK_UN)
            os.close(self._handle)
            self._handle = None

    @property
    def held(self) -> bool:
        return self._depth > 0

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

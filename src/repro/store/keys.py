"""Canonical hashing for the durable run store.

Two kinds of digest, both SHA-256 hex:

* **Unit keys** identify one unit of work — the canonical JSON of
  ``(experiment name, scale, seed, sorted kwargs, obs fingerprint,
  schema version)``.  The kwargs carry everything that shapes a run
  (campaign spec JSON, scenario, protocol/scheme, feature flags), so two
  jobs collide exactly when re-running one would reproduce the other's
  bytes.  The observability fingerprint is part of the key for the same
  reason it keys the in-process run caches: a result captured with
  tracing enabled carries different artifacts than one captured without,
  and replaying across the two would corrupt merged traces.
* **Content digests** name stored artifact payloads — the hash of the
  exact bytes on disk, which is what makes the object store
  content-addressed and every read verifiable.

Canonical JSON is ``sort_keys=True`` with compact separators and
``default=str`` (the same fallback the runner's ``--json`` output uses),
so a key never depends on dict insertion order or on the Python
representation of an exotic parameter type.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Sequence, Tuple

#: Version of the unit-key layout *and* the ledger schema.  Bumping it
#: invalidates every stored unit (keys stop matching) and makes opening
#: an old ledger fail loudly (:class:`repro.errors.StoreSchemaError`).
STORE_SCHEMA_VERSION = 1


def canonical_json(value) -> str:
    """Deterministic JSON used for hashing (never for artifact bodies)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=str)


def content_digest(data: bytes) -> str:
    """The content address of an artifact payload."""
    return hashlib.sha256(data).hexdigest()


def unit_key(
    experiment_id: str,
    scale: float,
    seed: int,
    kwargs: Iterable[Tuple[str, object]] = (),
    obs_fingerprint: Sequence[bool] = (),
) -> str:
    """The ledger key of one (experiment, params, seed, scheme) unit."""
    doc = {
        "schema": STORE_SCHEMA_VERSION,
        "experiment": experiment_id,
        "scale": scale,
        "seed": seed,
        "kwargs": {str(k): v for k, v in kwargs},
        "obs": list(obs_fingerprint),
    }
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()

"""The durable run store: ledger + artifact store behind one facade.

A store is a directory::

    <root>/ledger.sqlite   # schema-versioned unit/run ledger
    <root>/objects/...     # content-addressed result payloads
    <root>/quarantine/     # corrupted payloads moved aside on read
    <root>/.lock           # advisory lock shared by all writers

Activation travels through the environment, the same channel the obs
flags and ``--check-invariants`` use, because it must reach pool worker
processes under both ``fork`` and ``spawn``:

* ``REPRO_STORE_DIR`` — record every completed unit into this store at
  the :func:`repro.experiments.pool.execute_job` chokepoint;
* ``REPRO_STORE_RESUME`` — additionally *replay* units the ledger
  already has (skip execution, reconstruct the result — including its
  captured obs artifacts — from the stored payload).

Replay is what makes ``--resume`` byte-exact: a completed unit's table
string, data dict and artifact lists come back from the store in the
very bytes the original execution produced, so merged reports and
traces cannot tell a resumed run from an uninterrupted one.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Tuple

from ..errors import StoreError
from .artifacts import ArtifactStore
from .keys import STORE_SCHEMA_VERSION, canonical_json, unit_key
from .ledger import Ledger
from .locks import FileLock

ENV_STORE_DIR = "REPRO_STORE_DIR"
ENV_STORE_RESUME = "REPRO_STORE_RESUME"

_ENV_VARS = (ENV_STORE_DIR, ENV_STORE_RESUME)


class RunStore:
    """One store directory; cheap to construct, safe to share via path."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.lock = FileLock(os.path.join(self.root, ".lock"))
        self.artifacts = ArtifactStore(self.root, lock=self.lock)
        self.ledger = Ledger(
            os.path.join(self.root, "ledger.sqlite"), lock=self.lock
        )

    # -- unit identity -----------------------------------------------------------

    def job_key(self, job) -> str:
        """The ledger key for one pool job (see :mod:`repro.store.keys`).

        Takes any object with the :class:`~repro.experiments.pool.
        ExperimentJob` attributes; the obs fingerprint is folded in so
        traced and untraced captures of the same parameters never
        cross-replay.
        """
        from ..obs.capture import obs_fingerprint

        return unit_key(
            job.experiment_id,
            job.scale,
            job.seed,
            job.kwargs,
            obs_fingerprint(),
        )

    # -- record / replay ---------------------------------------------------------

    def record_result(self, key: str, job, result) -> str:
        """Persist one completed unit; returns the payload digest.

        The payload is the result's JSON form (``default=str``, matching
        the runner's ``--json`` conversion) so anything the final report
        derives from it round-trips to the same bytes.  Publication is
        artifact-first: the ledger row commits only after the payload is
        durably on disk, so a kill between the two leaves an unreferenced
        object (reclaimed by ``gc``), never a dangling ledger row.
        """
        payload = dict(result.to_payload())
        payload["store_schema"] = STORE_SCHEMA_VERSION
        data = json.dumps(payload, separators=(",", ":"), default=str).encode(
            "utf-8"
        )
        digest = self.artifacts.put(data)
        self.ledger.record_unit(
            key,
            experiment_id=job.experiment_id,
            scale=job.scale,
            seed=job.seed,
            params_json=canonical_json(dict(job.kwargs)),
            artifact=digest,
        )
        return digest

    def replay(self, key: str):
        """The stored result for ``key``, or ``None`` on miss/corruption.

        A hit bumps the unit's ledger ``hits`` counter (the resume tests
        assert on it).  A corrupt or truncated payload quarantines the
        object, drops the now-unservable ledger row, and reports a miss —
        the caller re-executes and republishes.
        """
        from ..experiments.registry import ExperimentResult

        row = self.ledger.lookup_unit(key)
        if row is None:
            return None
        data = self.artifacts.get(row["artifact"])
        if data is None:
            self.ledger.forget_unit(key)
            return None
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StoreError(
                f"artifact {row['artifact']} passed hash verification but "
                f"is not a result payload: {exc}"
            ) from exc
        self.ledger.record_hit(key)
        return ExperimentResult.from_payload(payload)

    def has_unit(self, key: str) -> bool:
        """Ledger-only membership test; never bumps the ``hits`` counter.

        The sweep-unit planner uses this to decide which jobs still need
        their simulation units scheduled: replay accounting must reflect
        actual replays, not planning probes.
        """
        return self.ledger.lookup_unit(key) is not None

    # -- simulation units (sweep-unit scheduler) ---------------------------------

    def record_sim_unit(self, key: str, unit, payload_json: str) -> str:
        """Persist one executed simulation unit's exact payload.

        Same artifact-first publication order as :meth:`record_result`.
        The ledger row's ``experiment_id`` is ``sim:churn`` /
        ``sim:recovery``, so figure-level rows and simulation-unit rows
        share one ledger without colliding, and the acceptance assert
        (*each deduped unit executes exactly once*) can filter on the
        prefix and read the ``executions`` counters.
        """
        doc = unit.store_doc()
        digest = self.artifacts.put(payload_json.encode("utf-8"))
        self.ledger.record_unit(
            key,
            experiment_id=f"sim:{doc['unit']}",
            scale=doc["settings"]["scale"],
            seed=doc["settings"]["seed"],
            params_json=canonical_json(doc),
            artifact=digest,
        )
        return digest

    def replay_sim_unit(self, key: str) -> Optional[str]:
        """The stored payload JSON for a simulation unit, or ``None``.

        Follows :meth:`replay`'s contract: a hit bumps the ledger
        counter; a missing/corrupt artifact drops the row and reports a
        miss so the caller re-simulates.
        """
        row = self.ledger.lookup_unit(key)
        if row is None:
            return None
        data = self.artifacts.get(row["artifact"])
        if data is None:
            self.ledger.forget_unit(key)
            return None
        self.ledger.record_hit(key)
        return data.decode("utf-8")

    # -- run records -------------------------------------------------------------

    def record_run(
        self,
        name: str,
        command: str,
        params: Dict[str, object],
        report_text: Optional[str],
        json_data: Optional[dict],
        units_total: int,
        units_replayed: int,
    ) -> int:
        """Link one completed CLI invocation to its final outputs."""
        report_digest = None
        if report_text is not None:
            report_digest = self.artifacts.put(report_text.encode("utf-8"))
        json_digest = None
        if json_data is not None:
            json_digest = self.artifacts.put(
                json.dumps(json_data, indent=2, default=str).encode("utf-8")
            )
        return self.ledger.record_run(
            name=name,
            command=command,
            params_json=canonical_json(params),
            report_artifact=report_digest,
            json_artifact=json_digest,
            units_total=units_total,
            units_replayed=units_replayed,
        )

    def run_report(self, run_id: int) -> Tuple[dict, Optional[str], Optional[dict]]:
        """A run row plus its verified report text and JSON data."""
        row = self.ledger.get_run(run_id)
        report_text = None
        if row.get("report_artifact"):
            data = self.artifacts.get(row["report_artifact"])
            report_text = data.decode("utf-8") if data is not None else None
        json_data = None
        if row.get("json_artifact"):
            data = self.artifacts.get(row["json_artifact"])
            json_data = json.loads(data.decode("utf-8")) if data else None
        return row, report_text, json_data

    # -- maintenance -------------------------------------------------------------

    def gc(self, purge_quarantine: bool = False) -> Dict[str, int]:
        """Drop unreferenced objects (and optionally quarantined ones)."""
        referenced = set(self.ledger.referenced_artifacts())
        removed = 0
        with self.lock:
            for digest in list(self.artifacts.digests()):
                if digest not in referenced:
                    self.artifacts.delete(digest)
                    removed += 1
        quarantined = (
            self.artifacts.purge_quarantine() if purge_quarantine else 0
        )
        return {"removed": removed, "quarantine_purged": quarantined}


# -- environment plumbing (reaches pool workers like the obs flags) ---------------

_active: Dict[Tuple[int, str], RunStore] = {}


def active_store() -> Optional[RunStore]:
    """The store named by ``REPRO_STORE_DIR``, or ``None``.

    Cached per ``(pid, path)``: a forked worker builds its own instance
    instead of inheriting the parent's (no SQLite connections are held
    open, but the lock file descriptor must not be shared either).
    """
    path = os.environ.get(ENV_STORE_DIR)
    if not path:
        return None
    cache_key = (os.getpid(), os.path.abspath(path))
    store = _active.get(cache_key)
    if store is None:
        store = RunStore(path)
        _active.clear()  # at most one live store per process
        _active[cache_key] = store
    return store


def resume_enabled() -> bool:
    return os.environ.get(ENV_STORE_RESUME, "") not in ("", "0")


def store_env() -> Dict[str, str]:
    """The currently-set store env vars, for explicit worker-init export."""
    return {
        name: os.environ[name] for name in _ENV_VARS if name in os.environ
    }


def apply_store_env(env: Dict[str, str]) -> None:
    """Install exported store settings in a worker process (spawn-safe)."""
    for name in _ENV_VARS:
        os.environ.pop(name, None)
    os.environ.update(env)

"""Durable run store: ledger-backed, checkpointed, resumable experiments.

See :mod:`repro.store.runstore` for the architecture and
``docs/store.md`` for the schema, hashing rules and resume semantics.
Command-line access: ``python -m repro.store {ls,show,diff,gc,export}``.
"""

from ..errors import StoreError, StoreSchemaError
from .artifacts import ArtifactStore
from .keys import STORE_SCHEMA_VERSION, canonical_json, content_digest, unit_key
from .ledger import Ledger
from .locks import FileLock
from .runstore import (
    ENV_STORE_DIR,
    ENV_STORE_RESUME,
    RunStore,
    active_store,
    apply_store_env,
    resume_enabled,
    store_env,
)

__all__ = [
    "ArtifactStore",
    "ENV_STORE_DIR",
    "ENV_STORE_RESUME",
    "FileLock",
    "Ledger",
    "RunStore",
    "STORE_SCHEMA_VERSION",
    "StoreError",
    "StoreSchemaError",
    "active_store",
    "apply_store_env",
    "canonical_json",
    "content_digest",
    "resume_enabled",
    "store_env",
    "unit_key",
]

"""Schema-versioned SQLite run ledger.

Two tables:

* ``units`` — one row per completed unit of work, keyed by the
  canonical :func:`repro.store.keys.unit_key`.  ``executions`` counts
  how many times the unit actually ran (a resumed campaign must keep
  this at 1 for every unit that finished before the kill) and ``hits``
  counts ledger replays, which is what the resume tests assert on.
* ``runs`` — one row per completed CLI invocation, linking the exact
  command, parameters and seed to the content digests of the final
  report text and JSON data.  ``repro.store diff`` loads two rows'
  JSON artifacts for regression triage.

Writers open a connection per operation (safe under ``fork`` — no
connection ever crosses a process boundary) and serialize through both
SQLite's database lock and the store-wide advisory file lock.  Each
unit commits in its own transaction, so a ``kill -9`` loses at most the
in-flight unit; everything already committed is durable and a resumed
run skips it.
"""

from __future__ import annotations

import os
import sqlite3
import time
from typing import Dict, List, Optional

from ..errors import StoreError, StoreSchemaError
from .keys import STORE_SCHEMA_VERSION
from .locks import FileLock

_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS units (
    unit_key      TEXT PRIMARY KEY,
    experiment_id TEXT NOT NULL,
    scale         REAL NOT NULL,
    seed          INTEGER NOT NULL,
    params_json   TEXT NOT NULL,
    artifact      TEXT NOT NULL,
    executions    INTEGER NOT NULL DEFAULT 1,
    hits          INTEGER NOT NULL DEFAULT 0,
    created_at    REAL NOT NULL,
    updated_at    REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id          INTEGER PRIMARY KEY AUTOINCREMENT,
    name            TEXT NOT NULL,
    command         TEXT NOT NULL,
    params_json     TEXT NOT NULL,
    report_artifact TEXT,
    json_artifact   TEXT,
    units_total     INTEGER NOT NULL DEFAULT 0,
    units_replayed  INTEGER NOT NULL DEFAULT 0,
    created_at      REAL NOT NULL
);
"""


class Ledger:
    """The SQLite ledger under ``<store>/ledger.sqlite``."""

    def __init__(self, path: str, lock: Optional[FileLock] = None):
        self.path = path
        self._lock = lock or FileLock(
            os.path.join(os.path.dirname(path) or ".", ".lock")
        )
        self._ensure_schema()

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        return conn

    def _ensure_schema(self) -> None:
        with self._lock:
            conn = self._connect()
            try:
                with conn:
                    conn.executescript(_SCHEMA)
                    row = conn.execute(
                        "SELECT value FROM store_meta WHERE key='schema_version'"
                    ).fetchone()
                    if row is None:
                        conn.execute(
                            "INSERT INTO store_meta(key, value) VALUES(?, ?)",
                            ("schema_version", str(STORE_SCHEMA_VERSION)),
                        )
                    elif row["value"] != str(STORE_SCHEMA_VERSION):
                        raise StoreSchemaError(
                            row["value"], str(STORE_SCHEMA_VERSION)
                        )
            finally:
                conn.close()

    # -- units -------------------------------------------------------------------

    def record_unit(
        self,
        unit_key: str,
        experiment_id: str,
        scale: float,
        seed: int,
        params_json: str,
        artifact: str,
    ) -> None:
        """Commit one completed unit (re-execution bumps ``executions``)."""
        now = time.time()
        with self._lock:
            conn = self._connect()
            try:
                with conn:
                    conn.execute(
                        """
                        INSERT INTO units(unit_key, experiment_id, scale, seed,
                                          params_json, artifact, executions,
                                          hits, created_at, updated_at)
                        VALUES(?, ?, ?, ?, ?, ?, 1, 0, ?, ?)
                        ON CONFLICT(unit_key) DO UPDATE SET
                            artifact = excluded.artifact,
                            executions = units.executions + 1,
                            updated_at = excluded.updated_at
                        """,
                        (
                            unit_key,
                            experiment_id,
                            scale,
                            seed,
                            params_json,
                            artifact,
                            now,
                            now,
                        ),
                    )
            finally:
                conn.close()

    def lookup_unit(self, unit_key: str) -> Optional[Dict[str, object]]:
        conn = self._connect()
        try:
            row = conn.execute(
                "SELECT * FROM units WHERE unit_key = ?", (unit_key,)
            ).fetchone()
            return dict(row) if row is not None else None
        finally:
            conn.close()

    def record_hit(self, unit_key: str) -> None:
        """Count one replay of a completed unit (resume-path bookkeeping)."""
        with self._lock:
            conn = self._connect()
            try:
                with conn:
                    conn.execute(
                        "UPDATE units SET hits = hits + 1, updated_at = ? "
                        "WHERE unit_key = ?",
                        (time.time(), unit_key),
                    )
            finally:
                conn.close()

    def forget_unit(self, unit_key: str) -> bool:
        """Drop one unit row (``gc`` of corrupted artifacts uses this)."""
        with self._lock:
            conn = self._connect()
            try:
                with conn:
                    cursor = conn.execute(
                        "DELETE FROM units WHERE unit_key = ?", (unit_key,)
                    )
                    return cursor.rowcount > 0
            finally:
                conn.close()

    def units(
        self, experiment_id: Optional[str] = None
    ) -> List[Dict[str, object]]:
        conn = self._connect()
        try:
            if experiment_id is None:
                rows = conn.execute(
                    "SELECT * FROM units ORDER BY created_at, unit_key"
                ).fetchall()
            else:
                rows = conn.execute(
                    "SELECT * FROM units WHERE experiment_id = ? "
                    "ORDER BY created_at, unit_key",
                    (experiment_id,),
                ).fetchall()
            return [dict(row) for row in rows]
        finally:
            conn.close()

    def totals(self) -> Dict[str, int]:
        """Aggregate counters (the runner prints session deltas of these)."""
        conn = self._connect()
        try:
            row = conn.execute(
                "SELECT COUNT(*) AS units, "
                "COALESCE(SUM(executions), 0) AS executions, "
                "COALESCE(SUM(hits), 0) AS hits FROM units"
            ).fetchone()
            runs = conn.execute("SELECT COUNT(*) AS runs FROM runs").fetchone()
            return {
                "units": row["units"],
                "executions": row["executions"],
                "hits": row["hits"],
                "runs": runs["runs"],
            }
        finally:
            conn.close()

    # -- runs --------------------------------------------------------------------

    def record_run(
        self,
        name: str,
        command: str,
        params_json: str,
        report_artifact: Optional[str],
        json_artifact: Optional[str],
        units_total: int,
        units_replayed: int,
    ) -> int:
        with self._lock:
            conn = self._connect()
            try:
                with conn:
                    cursor = conn.execute(
                        """
                        INSERT INTO runs(name, command, params_json,
                                         report_artifact, json_artifact,
                                         units_total, units_replayed,
                                         created_at)
                        VALUES(?, ?, ?, ?, ?, ?, ?, ?)
                        """,
                        (
                            name,
                            command,
                            params_json,
                            report_artifact,
                            json_artifact,
                            units_total,
                            units_replayed,
                            time.time(),
                        ),
                    )
                    return int(cursor.lastrowid)
            finally:
                conn.close()

    def runs(self) -> List[Dict[str, object]]:
        conn = self._connect()
        try:
            rows = conn.execute("SELECT * FROM runs ORDER BY run_id").fetchall()
            return [dict(row) for row in rows]
        finally:
            conn.close()

    def get_run(self, run_id: int) -> Dict[str, object]:
        conn = self._connect()
        try:
            row = conn.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        finally:
            conn.close()
        if row is None:
            raise StoreError(f"no run #{run_id} in ledger {self.path}")
        return dict(row)

    def referenced_artifacts(self) -> List[str]:
        """Every digest a ledger row still points at (the gc root set)."""
        conn = self._connect()
        try:
            digests = {
                row["artifact"]
                for row in conn.execute("SELECT artifact FROM units")
            }
            for row in conn.execute(
                "SELECT report_artifact, json_artifact FROM runs"
            ):
                digests.add(row["report_artifact"])
                digests.add(row["json_artifact"])
            digests.discard(None)
            return sorted(digests)
        finally:
            conn.close()

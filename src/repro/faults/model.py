"""Typed fault primitives for correlated-failure stress testing.

The paper evaluates ROST/CER under *independent* member churn; real
deployments also see *correlated* events — an access-network outage takes
every member of a transit-stub domain down at once, a flash crowd doubles
the audience in a minute, a regional degradation inflates underlay
delays.  Each primitive here is one such event, declaratively:

* :class:`NodeCrash` — kill N members at one instant (uniformly random,
  the root's children, or the highest-fanout members);
* :class:`StubDomainOutage` — kill every overlay member homed in one or
  more transit-stub domains simultaneously (the correlated-loss case MLC
  group selection is supposed to defend against);
* :class:`LinkDegradation` — inflate underlay delays (and account stream
  loss) on paths touching the given domains for a window;
* :class:`FlashCrowd` — a join surge of new sessions drawn from the
  workload's bandwidth/lifetime distributions;
* :class:`ChurnSurge` — compress the remaining lifetimes of current
  members, multiplying the departure rate.

Primitives are frozen dataclasses with a JSON/TOML-able spec round-trip
(:meth:`Fault.to_spec` / :func:`fault_from_spec`).  They carry *when* and
*what*; the actual engine mechanics live in
:class:`repro.faults.injector.FaultInjector`, which each primitive drives
through its :meth:`Fault.inject` hook (duck-typed — this module never
imports the injector).

Timing is either absolute (``at_s``) or a fraction of the run horizon
(``at_frac``), so one campaign spec applies unchanged across scales.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Tuple, Type

import numpy as np

from ..errors import FaultError

#: Spec-kind registry: ``kind`` string -> primitive class.
FAULT_KINDS: Dict[str, Type["Fault"]] = {}


def register_fault(cls: Type["Fault"]) -> Type["Fault"]:
    """Class decorator adding a primitive to the spec-kind registry."""
    if not cls.kind:
        raise FaultError(f"{cls.__name__} must define a non-empty kind")
    if cls.kind in FAULT_KINDS:
        raise FaultError(f"duplicate fault kind {cls.kind!r}")
    FAULT_KINDS[cls.kind] = cls
    return cls


@dataclass(frozen=True, kw_only=True)
class Fault:
    """Base primitive: when to fire, spec round-trip, injection hook."""

    kind: ClassVar[str] = ""

    #: Absolute fire time in simulated seconds ...
    at_s: Optional[float] = None
    #: ... or a fraction of the run horizon (exactly one must be given).
    at_frac: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.at_s is None) == (self.at_frac is None):
            raise FaultError(
                f"{self.kind or type(self).__name__}: give exactly one of "
                f"at_s / at_frac (got at_s={self.at_s}, at_frac={self.at_frac})"
            )
        if self.at_s is not None and self.at_s < 0:
            raise FaultError(f"at_s must be >= 0, got {self.at_s}")
        if self.at_frac is not None and not 0.0 <= self.at_frac <= 1.0:
            raise FaultError(f"at_frac must be in [0, 1], got {self.at_frac}")

    @property
    def cause(self) -> str:
        """The cause tag carried by disruptions this fault triggers."""
        return f"fault:{self.kind}"

    def fire_time(self, horizon_s: float) -> float:
        """Resolve the fire time against a concrete run horizon."""
        if self.at_s is not None:
            return self.at_s
        return self.at_frac * horizon_s

    def to_spec(self) -> dict:
        """JSON/TOML-ready dict; defaults are omitted for brevity."""
        spec: dict = {"kind": self.kind}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value == f.default:
                continue
            spec[f.name] = list(value) if isinstance(value, tuple) else value
        return spec

    def inject(self, injector, rng: np.random.Generator) -> dict:
        """Fire through ``injector`` (a :class:`FaultInjector`); return a
        JSON-able detail dict for the injection log."""
        raise NotImplementedError


@register_fault
@dataclass(frozen=True, kw_only=True)
class NodeCrash(Fault):
    """Kill ``count`` members at one instant (always abrupt)."""

    kind = "node-crash"

    count: int = 1
    #: ``random`` (uniform over attached members), ``root-children`` (the
    #: members directly under the source — repeated decapitation), or
    #: ``high-degree`` (largest current fan-out first — worst case).
    selector: str = "random"
    #: Explicit victims; overrides ``selector``/``count`` when non-empty.
    member_ids: Tuple[int, ...] = ()

    SELECTORS: ClassVar[Tuple[str, ...]] = ("random", "root-children", "high-degree")

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.count < 1:
            raise FaultError(f"count must be >= 1, got {self.count}")
        if self.selector not in self.SELECTORS:
            raise FaultError(
                f"unknown selector {self.selector!r}; expected one of "
                f"{self.SELECTORS}"
            )

    def inject(self, injector, rng: np.random.Generator) -> dict:
        if self.member_ids:
            victims = injector.members_by_id(self.member_ids)
        elif self.selector == "root-children":
            children = sorted(injector.root_children(), key=lambda n: n.member_id)
            victims = children[: self.count]
        elif self.selector == "high-degree":
            candidates = injector.attached_members()
            candidates.sort(key=lambda n: (-len(n.children), n.member_id))
            victims = candidates[: self.count]
        else:
            candidates = injector.attached_members()
            k = min(self.count, len(candidates))
            picks = rng.choice(len(candidates), size=k, replace=False) if k else []
            victims = [candidates[int(i)] for i in sorted(int(p) for p in picks)]
        killed = injector.kill(victims, cause=self.cause)
        return {"selector": self.selector, "killed": killed}


@register_fault
@dataclass(frozen=True, kw_only=True)
class StubDomainOutage(Fault):
    """Kill every member homed in the chosen transit-stub domains at once.

    Models an access-network / regional outage: loss is correlated at the
    underlay level, which is exactly what tree-level MLC selection cannot
    see (and what the ``domain_aware`` scheme extension defends against).
    The multicast source itself never fails (it is assumed to sit in a
    managed facility), even if its domain is hit.
    """

    kind = "stub-domain-outage"

    #: How many domains go dark (the currently most-populated ones, ties
    #: broken by domain id — deterministic and maximally damaging).
    domains: int = 1
    #: Explicit domain ids; overrides ``domains`` when non-empty.
    domain_ids: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.domains < 1:
            raise FaultError(f"domains must be >= 1, got {self.domains}")

    def inject(self, injector, rng: np.random.Generator) -> dict:
        if self.domain_ids:
            chosen = tuple(int(d) for d in self.domain_ids)
        else:
            population = injector.attached_domain_population()
            ranked = sorted(population, key=lambda d: (-population[d], d))
            chosen = tuple(ranked[: self.domains])
        victims = injector.members_in_domains(chosen)
        killed = injector.kill(victims, cause=self.cause)
        return {"domains": list(chosen), "killed": killed}


@register_fault
@dataclass(frozen=True, kw_only=True)
class LinkDegradation(Fault):
    """Inflate underlay path delays (and account stream loss) for a window.

    Paths with an endpoint in ``domain_ids`` (every path when empty) see
    their oracle delay multiplied by ``delay_factor`` for ``duration_s``
    seconds.  ``loss_rate`` is the fraction of the stream the affected
    members lose meanwhile; it feeds the delivered-data ratio without
    tearing the tree down.
    """

    kind = "link-degradation"

    duration_s: float = 60.0
    delay_factor: float = 3.0
    loss_rate: float = 0.0
    domain_ids: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration_s <= 0:
            raise FaultError(f"duration_s must be > 0, got {self.duration_s}")
        if self.delay_factor < 1.0:
            raise FaultError(
                f"delay_factor must be >= 1, got {self.delay_factor}"
            )
        if not 0.0 <= self.loss_rate <= 1.0:
            raise FaultError(f"loss_rate must be in [0, 1], got {self.loss_rate}")

    def inject(self, injector, rng: np.random.Generator) -> dict:
        affected = injector.degrade(
            domain_ids=self.domain_ids or None,
            delay_factor=self.delay_factor,
            loss_rate=self.loss_rate,
            duration_s=self.duration_s,
        )
        return {
            "affected_members": affected,
            "duration_s": self.duration_s,
            "delay_factor": self.delay_factor,
            "loss_rate": self.loss_rate,
        }


@register_fault
@dataclass(frozen=True, kw_only=True)
class FlashCrowd(Fault):
    """A join surge: ``size`` new sessions starting at the fire time.

    Arrival offsets are ``|N(0, spread_s)|`` (a one-sided burst whose
    front edge is the fire time); bandwidths and lifetimes draw from the
    workload's configured distributions unless ``bandwidth`` pins every
    burst member to one value (useful for controlled tests).
    """

    kind = "flash-crowd"

    size: int = 50
    spread_s: float = 60.0
    bandwidth: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.size < 1:
            raise FaultError(f"size must be >= 1, got {self.size}")
        if self.spread_s < 0:
            raise FaultError(f"spread_s must be >= 0, got {self.spread_s}")
        if self.bandwidth is not None and self.bandwidth < 0:
            raise FaultError(f"bandwidth must be >= 0, got {self.bandwidth}")

    def inject(self, injector, rng: np.random.Generator) -> dict:
        arrivals = injector.spawn_arrivals(
            size=self.size,
            spread_s=self.spread_s,
            rng=rng,
            bandwidth=self.bandwidth,
        )
        return {"arrivals": arrivals}


@register_fault
@dataclass(frozen=True, kw_only=True)
class ChurnSurge(Fault):
    """Compress the remaining lifetimes of current members.

    Every attached member (or a ``fraction`` of them) has its remaining
    session time multiplied by ``lifetime_factor``; the early departures
    are abrupt and tagged with this fault's cause.  Models a mass loss of
    interest — the event everyone tuned in for just ended.
    """

    kind = "churn-surge"

    lifetime_factor: float = 0.25
    fraction: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.lifetime_factor <= 1.0:
            raise FaultError(
                f"lifetime_factor must be in (0, 1], got {self.lifetime_factor}"
            )
        if not 0.0 < self.fraction <= 1.0:
            raise FaultError(f"fraction must be in (0, 1], got {self.fraction}")

    def inject(self, injector, rng: np.random.Generator) -> dict:
        compressed = injector.compress_lifetimes(
            factor=self.lifetime_factor,
            fraction=self.fraction,
            rng=rng,
            cause=self.cause,
        )
        return {"compressed": compressed}


def fault_from_spec(spec: dict) -> Fault:
    """Build a primitive from its spec dict (inverse of ``to_spec``)."""
    if not isinstance(spec, dict):
        raise FaultError(f"fault spec must be a mapping, got {type(spec).__name__}")
    data = dict(spec)
    kind = data.pop("kind", None)
    if kind is None:
        raise FaultError(f"fault spec missing 'kind': {spec!r}")
    cls = FAULT_KINDS.get(kind)
    if cls is None:
        raise FaultError(
            f"unknown fault kind {kind!r}; known kinds: {sorted(FAULT_KINDS)}"
        )
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise FaultError(f"{kind}: unknown spec keys {unknown}; known: {sorted(known)}")
    kwargs = {
        name: tuple(value) if isinstance(value, list) else value
        for name, value in data.items()
    }
    return cls(**kwargs)

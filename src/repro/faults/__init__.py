"""Fault-injection campaign subsystem for correlated-failure stress tests.

The paper's evaluation covers independent member churn; this package adds
the correlated-failure axis: typed fault primitives (:mod:`.model`),
seed-deterministic composable schedules (:mod:`.schedule`), an
engine-level injector that replays them into an unmodified
:class:`~repro.simulation.churn.ChurnSimulation` (:mod:`.injector`), and
a campaign runner fanning (scenario x protocol x seed) grids over worker
processes into one resilience report (:mod:`.campaign`).

See ``docs/faults.md`` for the campaign spec format and semantics.
"""

from .model import (
    FAULT_KINDS,
    ChurnSurge,
    Fault,
    FlashCrowd,
    LinkDegradation,
    NodeCrash,
    StubDomainOutage,
    fault_from_spec,
)
from .schedule import FaultSchedule, load_schedule
from .injector import DegradedOracle, FaultInjector, wire_resilience
from .campaign import (
    DEFAULT_CAMPAIGN_SPEC,
    CampaignReport,
    CampaignSpec,
    ScenarioSpec,
    build_report,
    load_campaign,
    resolve_campaign,
    run_campaign,
    run_scenario,
)

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "NodeCrash",
    "StubDomainOutage",
    "LinkDegradation",
    "FlashCrowd",
    "ChurnSurge",
    "fault_from_spec",
    "FaultSchedule",
    "load_schedule",
    "FaultInjector",
    "DegradedOracle",
    "wire_resilience",
    "CampaignSpec",
    "ScenarioSpec",
    "CampaignReport",
    "DEFAULT_CAMPAIGN_SPEC",
    "build_report",
    "load_campaign",
    "resolve_campaign",
    "run_campaign",
    "run_scenario",
]

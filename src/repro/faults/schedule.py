"""Composable, seed-deterministic fault schedules.

A :class:`FaultSchedule` is an ordered tuple of
:class:`~repro.faults.model.Fault` primitives plus the seed of the
injection RNG.  Everything random a fault does (victim picks, flash-crowd
session draws, surge sampling) comes from a per-fault generator keyed
``(schedule.seed, fault_index)``, so

* the same schedule replays identically on every run with the same seed,
* inserting a fault does not perturb the draws of the ones before it,
* campaign replicas vary faults simply by varying the schedule seed.

Schedules compose with ``+`` and load from JSON or TOML spec files::

    {"seed": 7, "faults": [
        {"kind": "stub-domain-outage", "domains": 2, "at_frac": 0.5},
        {"kind": "flash-crowd", "size": 200, "at_s": 1200.0}
    ]}
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import FaultError
from .model import Fault, fault_from_spec


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable campaign of faults for one simulation run."""

    seed: int = 0
    faults: Tuple[Fault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # NumPy seed sequences require non-negative entropy words.
        if self.seed < 0:
            raise FaultError(f"schedule seed must be >= 0, got {self.seed}")
        object.__setattr__(self, "faults", tuple(self.faults))
        for f in self.faults:
            if not isinstance(f, Fault):
                raise FaultError(f"not a Fault: {f!r}")

    def __len__(self) -> int:
        return len(self.faults)

    def __add__(self, other: "FaultSchedule") -> "FaultSchedule":
        """Concatenate (keeps the left operand's seed)."""
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return FaultSchedule(seed=self.seed, faults=self.faults + other.faults)

    def with_seed(self, seed: int) -> "FaultSchedule":
        return FaultSchedule(seed=seed, faults=self.faults)

    def fire_plan(self, horizon_s: float) -> List[Tuple[float, Fault]]:
        """The (time, fault) pairs for a concrete horizon, in firing order.

        Ties preserve schedule order (the injector schedules them the
        same way), so the plan is exactly what a run will execute.
        """
        plan = [(f.fire_time(horizon_s), i, f) for i, f in enumerate(self.faults)]
        plan.sort(key=lambda item: (item[0], item[1]))
        return [(t, f) for t, _, f in plan]

    # -- spec round-trip ---------------------------------------------------------

    def to_spec(self) -> dict:
        return {"seed": self.seed, "faults": [f.to_spec() for f in self.faults]}

    @classmethod
    def from_spec(cls, spec: dict) -> "FaultSchedule":
        if not isinstance(spec, dict):
            raise FaultError(
                f"schedule spec must be a mapping, got {type(spec).__name__}"
            )
        unknown = sorted(set(spec) - {"seed", "faults"})
        if unknown:
            raise FaultError(f"unknown schedule spec keys {unknown}")
        faults = spec.get("faults", [])
        if not isinstance(faults, (list, tuple)):
            raise FaultError("schedule 'faults' must be a list")
        return cls(
            seed=int(spec.get("seed", 0)),
            faults=tuple(fault_from_spec(f) for f in faults),
        )


def load_schedule(path: str) -> FaultSchedule:
    """Load a schedule spec from a ``.json`` or ``.toml`` file."""
    return FaultSchedule.from_spec(_load_spec_file(path))


def save_schedule(path: str, schedule: FaultSchedule) -> None:
    """Write a schedule spec to a ``.json`` or ``.toml`` file (the inverse
    of :func:`load_schedule`; the round-trip is lossless)."""
    dump_spec_file(path, schedule.to_spec())


def _load_spec_file(path: str) -> dict:
    """Parse a JSON or TOML spec file (format chosen by extension)."""
    if path.endswith(".toml"):
        import tomllib

        with open(path, "rb") as handle:
            return tomllib.load(handle)
    with open(path) as handle:
        return json.load(handle)


def dump_spec_file(path: str, spec: dict) -> None:
    """Write a spec mapping as ``.json`` or ``.toml`` (by extension).

    The TOML form round-trips through :mod:`tomllib` back to the exact
    spec mapping (the stdlib parses TOML but cannot write it, so the
    emitter below covers the spec subset: scalars, homogeneous-by-JSON
    arrays, and lists of tables such as ``faults`` / ``scenarios``).
    """
    if path.endswith(".toml"):
        content = dumps_toml(spec)
    else:
        content = json.dumps(spec, indent=2) + "\n"
    with open(path, "w") as handle:
        handle.write(content)


_BARE_KEY = re.compile(r"^[A-Za-z0-9_-]+$")


def _is_table_array(value) -> bool:
    return (
        isinstance(value, (list, tuple))
        and len(value) > 0
        and all(isinstance(item, dict) for item in value)
    )


def _toml_key(key) -> str:
    if not isinstance(key, str):
        raise FaultError(f"TOML keys must be strings, got {type(key).__name__}")
    return key if _BARE_KEY.match(key) else json.dumps(key)


def _toml_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise FaultError(f"cannot write non-finite float {value!r} as TOML")
        # repr() keeps full precision and always contains '.' or 'e', so
        # tomllib reads it back as a float (never silently as an int).
        return repr(value)
    if isinstance(value, str):
        # JSON string escaping is a subset of TOML basic-string escaping.
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(item) for item in value) + "]"
    raise FaultError(
        f"cannot write {type(value).__name__} value as a TOML scalar"
    )


def _emit_table(lines: List[str], prefix: str, table: dict) -> None:
    nested = []
    for key, value in table.items():
        if _is_table_array(value):
            nested.append((key, value))
        elif isinstance(value, dict):
            raise FaultError(
                f"spec key {key!r}: inline tables are not supported by the "
                "TOML writer; use a list of tables"
            )
        else:
            lines.append(f"{_toml_key(key)} = {_toml_value(value)}")
    for key, items in nested:
        name = prefix + _toml_key(key)
        for item in items:
            lines.append("")
            lines.append(f"[[{name}]]")
            _emit_table(lines, name + ".", item)


def dumps_toml(spec: dict) -> str:
    """Render a spec mapping as TOML text (see :func:`dump_spec_file`)."""
    if not isinstance(spec, dict):
        raise FaultError(
            f"spec must be a mapping, got {type(spec).__name__}"
        )
    lines: List[str] = []
    _emit_table(lines, "", spec)
    return "\n".join(lines) + "\n"

"""Composable, seed-deterministic fault schedules.

A :class:`FaultSchedule` is an ordered tuple of
:class:`~repro.faults.model.Fault` primitives plus the seed of the
injection RNG.  Everything random a fault does (victim picks, flash-crowd
session draws, surge sampling) comes from a per-fault generator keyed
``(schedule.seed, fault_index)``, so

* the same schedule replays identically on every run with the same seed,
* inserting a fault does not perturb the draws of the ones before it,
* campaign replicas vary faults simply by varying the schedule seed.

Schedules compose with ``+`` and load from JSON or TOML spec files::

    {"seed": 7, "faults": [
        {"kind": "stub-domain-outage", "domains": 2, "at_frac": 0.5},
        {"kind": "flash-crowd", "size": 200, "at_s": 1200.0}
    ]}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import FaultError
from .model import Fault, fault_from_spec


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable campaign of faults for one simulation run."""

    seed: int = 0
    faults: Tuple[Fault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # NumPy seed sequences require non-negative entropy words.
        if self.seed < 0:
            raise FaultError(f"schedule seed must be >= 0, got {self.seed}")
        object.__setattr__(self, "faults", tuple(self.faults))
        for f in self.faults:
            if not isinstance(f, Fault):
                raise FaultError(f"not a Fault: {f!r}")

    def __len__(self) -> int:
        return len(self.faults)

    def __add__(self, other: "FaultSchedule") -> "FaultSchedule":
        """Concatenate (keeps the left operand's seed)."""
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return FaultSchedule(seed=self.seed, faults=self.faults + other.faults)

    def with_seed(self, seed: int) -> "FaultSchedule":
        return FaultSchedule(seed=seed, faults=self.faults)

    def fire_plan(self, horizon_s: float) -> List[Tuple[float, Fault]]:
        """The (time, fault) pairs for a concrete horizon, in firing order.

        Ties preserve schedule order (the injector schedules them the
        same way), so the plan is exactly what a run will execute.
        """
        plan = [(f.fire_time(horizon_s), i, f) for i, f in enumerate(self.faults)]
        plan.sort(key=lambda item: (item[0], item[1]))
        return [(t, f) for t, _, f in plan]

    # -- spec round-trip ---------------------------------------------------------

    def to_spec(self) -> dict:
        return {"seed": self.seed, "faults": [f.to_spec() for f in self.faults]}

    @classmethod
    def from_spec(cls, spec: dict) -> "FaultSchedule":
        if not isinstance(spec, dict):
            raise FaultError(
                f"schedule spec must be a mapping, got {type(spec).__name__}"
            )
        unknown = sorted(set(spec) - {"seed", "faults"})
        if unknown:
            raise FaultError(f"unknown schedule spec keys {unknown}")
        faults = spec.get("faults", [])
        if not isinstance(faults, (list, tuple)):
            raise FaultError("schedule 'faults' must be a list")
        return cls(
            seed=int(spec.get("seed", 0)),
            faults=tuple(fault_from_spec(f) for f in faults),
        )


def load_schedule(path: str) -> FaultSchedule:
    """Load a schedule spec from a ``.json`` or ``.toml`` file."""
    return FaultSchedule.from_spec(_load_spec_file(path))


def _load_spec_file(path: str) -> dict:
    """Parse a JSON or TOML spec file (format chosen by extension)."""
    if path.endswith(".toml"):
        import tomllib

        with open(path, "rb") as handle:
            return tomllib.load(handle)
    with open(path) as handle:
        return json.load(handle)

"""Engine-level fault injection into a running :class:`ChurnSimulation`.

The injector replays a :class:`~repro.faults.schedule.FaultSchedule` into
an *unmodified* churn driver: every fault becomes one timer event, and
every effect flows through public engine surface —
:meth:`ChurnSimulation.fail_member` for kills (which routes through the
ordinary abrupt-departure path, so recovery, metrics and invariants all
behave exactly as for natural churn), ``schedule_at`` for flash-crowd
arrivals and surge departures, and an oracle *proxy*
(:class:`DegradedOracle`) for link degradation.  The churn driver is
never forked and never learns about faults; cause attribution rides on
the structured :class:`~repro.simulation.churn.DisruptionEvent`.

Determinism: each fault draws from ``default_rng([schedule.seed, index])``
created at fire time, and victims are processed in sorted member-id
order, so a schedule replays bit-identically for a given seed regardless
of what else the simulation does.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import FaultError
from ..metrics.collectors import ResilienceMetrics
from ..overlay.node import OverlayNode
from ..simulation.churn import ChurnSimulation
from ..simulation.probe import PROBE_MEMBER_ID
from ..workload.distributions import BoundedPareto, LogNormalLifetime
from ..workload.session import Session
from .model import LinkDegradation
from .schedule import FaultSchedule


def _chain(first: Optional[Callable], second: Callable) -> Callable:
    """Compose two observer callbacks (existing one runs first)."""
    if first is None:
        return second

    def chained(*args, **kwargs):
        first(*args, **kwargs)
        second(*args, **kwargs)

    return chained


def wire_resilience(churn: ChurnSimulation, resilience: ResilienceMetrics) -> None:
    """Feed a churn simulation's failure lifecycle into ``resilience``.

    Composes with (never replaces) observers already installed — e.g. the
    :class:`~repro.simulation.streaming.RecoveryObserver` — so one run can
    price starvation episodes *and* account MTTR / delivered data.
    """

    def on_disruption(event) -> None:
        descendants = event.failed.descendants()
        ids = [event.failed.member_id] + [d.member_id for d in descendants]
        resilience.record_disruption(event.time, event.cause, ids)
        # The failed member departs; its descendants are without data
        # until their subtree root (the orphan child) re-attaches.
        for member in descendants:
            resilience.mark_detached(event.time, member.member_id, event.cause)

    def on_reattach(now: float, orphan: OverlayNode) -> None:
        resilience.record_reattach(now, orphan.member_id)
        for member in orphan.descendants():
            resilience.record_reattach(now, member.member_id)

    def on_departure(now: float, node: OverlayNode) -> None:
        resilience.record_departure(now, node.member_id)

    churn.disruption_observer = _chain(churn.disruption_observer, on_disruption)
    churn.reattach_observer = _chain(churn.reattach_observer, on_reattach)
    churn.departure_observer = _chain(churn.departure_observer, on_departure)


class DegradedOracle:
    """Delay-oracle proxy inflating delays during degradation windows.

    Wraps the real oracle and multiplies ``delay_ms`` for every active
    window whose domain set touches either endpoint (or every path when
    the window is global).  All other attributes delegate, so protocol
    code cannot tell the difference; the wrapped oracle — possibly shared
    through the topology cache — is never mutated.
    """

    #: Class attribute (not delegated): delays change as windows open and
    #: close, so per-edge caches keyed on the oracle must stay disabled.
    stable_delays = False

    def __init__(self, inner, topology):
        self._inner = inner
        self._topology = topology
        self._windows: List[Tuple[Optional[Set[int]], float]] = []

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def activate(
        self, domain_ids: Optional[Set[int]], factor: float
    ) -> Tuple[Optional[Set[int]], float]:
        window = (domain_ids, factor)
        self._windows.append(window)
        return window

    def deactivate(self, window) -> None:
        if window in self._windows:
            self._windows.remove(window)

    @property
    def active_windows(self) -> int:
        return len(self._windows)

    def delay_ms(self, u: int, v: int) -> float:
        base = self._inner.delay_ms(u, v)
        if not self._windows:
            return base
        node_domain = self._topology.node_domain
        du, dv = int(node_domain[u]), int(node_domain[v])
        factor = 1.0
        for domains, f in self._windows:
            if domains is None or du in domains or dv in domains:
                factor *= f
        return base * factor

    def delays_from(self, source: int, targets) -> "np.ndarray":
        """Batched counterpart of :meth:`delay_ms` (same window semantics).

        Applies each window's factor in activation order, exactly like the
        scalar loop, so the products are bit-identical element-wise.
        """
        base = self._inner.delays_from(source, targets)
        if not self._windows:
            return base
        node_domain = self._topology.node_domain
        du = int(node_domain[source])
        dv = np.asarray(node_domain)[np.asarray(targets, dtype=np.int64)]
        factor = np.ones(base.shape, dtype=np.float64)
        for domains, f in self._windows:
            if domains is None or du in domains:
                factor *= f
            else:
                factor[np.isin(dv, list(domains))] *= f
        return base * factor


class FaultInjector:
    """Replays a fault schedule into one churn simulation.

    Usage::

        injector = FaultInjector(schedule)
        injector.bind(sim.churn, resilience=metrics)   # before run()
        sim.run()
        injector.log                                   # what fired, when

    ``bind`` schedules one timer event per fault (at priority -2, so an
    injected kill beats a natural departure at the same instant and the
    later natural event no-ops).  The optional ``resilience`` collector is
    wired through the churn observers and receives the injection log.
    """

    def __init__(self, schedule: FaultSchedule):
        self.schedule = schedule
        #: What actually fired: (time, kind, detail) in firing order.
        self.log: List[Tuple[float, str, dict]] = []
        self.churn: Optional[ChurnSimulation] = None
        self.resilience: Optional[ResilienceMetrics] = None
        self._degraded: Optional[DegradedOracle] = None
        self._sessions: Dict[int, Session] = {}
        self._next_member_id = 1

    # -- binding ---------------------------------------------------------------

    def bind(
        self,
        churn: ChurnSimulation,
        resilience: Optional[ResilienceMetrics] = None,
    ) -> "FaultInjector":
        if self.churn is not None:
            raise FaultError("a FaultInjector binds to exactly one simulation")
        self.churn = churn
        self.resilience = resilience
        self._sessions = {s.member_id: s for s in churn.workload.sessions}
        self._next_member_id = (
            max(
                (mid for mid in self._sessions if mid != PROBE_MEMBER_ID),
                default=0,
            )
            + 1
        )
        if any(isinstance(f, LinkDegradation) for f in self.schedule.faults):
            self._degraded = DegradedOracle(churn.oracle, churn.topology)
            churn.oracle = self._degraded
            churn.ctx.oracle = self._degraded
        if resilience is not None:
            wire_resilience(churn, resilience)
        horizon = churn.workload.horizon_s
        for index, fault in enumerate(self.schedule.faults):
            churn.sim.schedule_at(
                fault.fire_time(horizon),
                self._fire_closure(fault, index),
                label=f"fault:{fault.kind}",
                priority=-2,
            )
        return self

    def _fire_closure(self, fault, index: int) -> Callable[[], None]:
        entropy = [self.schedule.seed, index]

        def fire() -> None:
            rng = np.random.default_rng(entropy)
            detail = fault.inject(self, rng)
            now = self.churn.sim.now
            self.log.append((now, fault.kind, detail))
            if self.resilience is not None:
                self.resilience.record_fault(now, fault.kind, detail)

        return fire

    # -- context the primitives drive ---------------------------------------------

    @property
    def now(self) -> float:
        return self.churn.sim.now

    def attached_members(self) -> List[OverlayNode]:
        """Attached non-root members, sorted by member id."""
        nodes = [n for n in self.churn.tree.attached_nodes() if not n.is_root]
        nodes.sort(key=lambda n: n.member_id)
        return nodes

    def root_children(self) -> List[OverlayNode]:
        return list(self.churn.tree.root.children)

    def members_by_id(self, member_ids: Sequence[int]) -> List[OverlayNode]:
        members = self.churn.tree.members
        found = []
        for member_id in sorted(member_ids):
            node = members.get(member_id)
            if node is not None and not node.is_root:
                found.append(node)
        return found

    def attached_domain_population(self) -> Dict[int, int]:
        """Attached non-root member count per stub-domain id."""
        node_domain = self.churn.topology.node_domain
        population: Dict[int, int] = {}
        for node in self.churn.tree.attached_nodes():
            if node.is_root:
                continue
            domain = int(node_domain[node.underlay_node])
            if domain >= 0:
                population[domain] = population.get(domain, 0) + 1
        return population

    def members_in_domains(self, domain_ids: Sequence[int]) -> List[OverlayNode]:
        """Every current member (attached or orphaned) homed in the domains."""
        wanted = set(int(d) for d in domain_ids)
        node_domain = self.churn.topology.node_domain
        return [
            node
            for _, node in sorted(self.churn.tree.members.items())
            if not node.is_root
            and int(node_domain[node.underlay_node]) in wanted
        ]

    def kill(self, victims: Sequence[OverlayNode], cause: str) -> List[int]:
        """Fail every victim in one correlated event; returns killed ids."""
        victims = [v for v in victims if not v.is_root]
        co_failed = frozenset(v.member_id for v in victims)
        killed = []
        for victim in sorted(victims, key=lambda n: n.member_id):
            if self.churn.fail_member(victim, cause=cause, co_failed_ids=co_failed):
                killed.append(victim.member_id)
        return killed

    def degrade(
        self,
        domain_ids: Optional[Sequence[int]],
        delay_factor: float,
        loss_rate: float,
        duration_s: float,
    ) -> int:
        """Open a degradation window; returns the affected member count."""
        if self._degraded is None:
            raise FaultError("bind() did not install a DegradedOracle")
        domains = set(int(d) for d in domain_ids) if domain_ids else None
        if delay_factor > 1.0:
            window = self._degraded.activate(domains, delay_factor)
            self.churn.sim.schedule_in(
                duration_s,
                lambda: self._degraded.deactivate(window),
                label="fault:degrade-end",
            )
        node_domain = self.churn.topology.node_domain
        affected = 0
        for node in self.churn.tree.attached_nodes():
            if node.is_root:
                continue
            if domains is None or int(node_domain[node.underlay_node]) in domains:
                affected += 1
        if loss_rate > 0.0 and self.resilience is not None:
            now = self.now
            self.resilience.record_stream_loss(
                now, now + duration_s, affected, loss_rate
            )
        return affected

    def spawn_arrivals(
        self,
        size: int,
        spread_s: float,
        rng: np.random.Generator,
        bandwidth: Optional[float] = None,
    ) -> int:
        """Schedule a burst of fresh sessions starting now."""
        cfg = self.churn.config.workload
        lifetime_dist = LogNormalLifetime(
            cfg.lifetime_location, cfg.lifetime_shape, cap=cfg.lifetime_cap_s
        )
        stubs = np.asarray(self.churn.topology.stub_nodes)
        now = self.now
        offsets = (
            np.abs(rng.normal(0.0, spread_s, size=size))
            if spread_s > 0
            else np.zeros(size)
        )
        lifetimes = lifetime_dist.sample(rng, size=size)
        if bandwidth is None:
            bandwidths = BoundedPareto(
                cfg.pareto_shape, cfg.pareto_lower, cfg.pareto_upper
            ).sample(rng, size=size)
        else:
            bandwidths = np.full(size, float(bandwidth))
        nodes = rng.choice(stubs, size=size, replace=True)
        for i in range(size):
            member_id = self._fresh_member_id()
            session = Session(
                member_id=member_id,
                arrival_s=float(now + offsets[i]),
                lifetime_s=float(lifetimes[i]),
                bandwidth=float(bandwidths[i]),
                underlay_node=int(nodes[i]),
            )
            self._sessions[member_id] = session
            self.churn.sim.schedule_at(
                session.arrival_s,
                lambda s=session: self.churn._on_arrival(s),
                label="fault:flash-arrival",
            )
        return size

    def _fresh_member_id(self) -> int:
        member_id = self._next_member_id
        if member_id == PROBE_MEMBER_ID:
            member_id += 1
        self._next_member_id = member_id + 1
        return member_id

    def compress_lifetimes(
        self,
        factor: float,
        fraction: float,
        rng: np.random.Generator,
        cause: str,
    ) -> int:
        """Pull departures forward: remaining lifetime x ``factor``."""
        now = self.now
        compressed = 0
        for node in self.attached_members():
            if fraction < 1.0 and rng.random() >= fraction:
                continue
            session = self._sessions.get(node.member_id)
            if session is None:
                continue
            remaining = session.departure_s - now
            if remaining <= 0:
                continue
            new_departure = now + remaining * factor
            if new_departure >= session.departure_s:
                continue
            # The original departure event later finds the member gone and
            # no-ops (fail_member / _on_departure identity guards).
            self.churn.sim.schedule_at(
                new_departure,
                lambda n=node: self.churn.fail_member(n, cause=cause),
                priority=-1,
                label="fault:surge-departure",
            )
            compressed += 1
        return compressed

"""Fault-injection campaigns: (scenario x protocol x seed) fan-out.

A campaign spec names a set of *scenarios* (fault lists), the protocols
to subject to them, and the seeds to replicate over.  The runner fans the
cross product out through :mod:`repro.experiments.pool` worker processes
and merges the per-run resilience metrics into one report:

* MTTR (mean time to repair) split by cause — injected vs churn;
* per-member disruption counts and delivered-data ratio;
* CER repair success rate under correlated loss (e.g. a stub-domain
  outage) vs the independent-loss baseline scenario, for the plain,
  single-source and domain-aware recovery schemes.

Results are merged in submission order and every random draw is keyed by
the run seed, so the report is byte-identical for a given seed at any
``--jobs`` value.

Campaigns are also *checkpointable*: each (scenario, protocol, seed)
unit travels through the pool chokepoint, so with ``--store DIR`` every
completed unit commits durably to the run-store ledger
(:mod:`repro.store`) and a campaign killed mid-run — even ``kill -9`` —
can be restarted with ``--resume`` to replay the finished units and
execute only the missing ones, yielding the same report bytes as an
uninterrupted run.  See ``docs/store.md``.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import paper_config
from ..errors import FaultError
from ..obs.capture import emit_unit, obs_active
from ..metrics.collectors import ResilienceMetrics
from ..metrics.report import render_table
from ..recovery.schemes import cer_scheme, single_source_scheme
from ..simulation.streaming import RecoverySimulation
from .injector import FaultInjector
from .model import Fault, fault_from_spec
from .schedule import FaultSchedule, _load_spec_file

#: Version of the JSON report layout (asserted by CI's smoke job).
REPORT_SCHEMA_VERSION = 1

#: The built-in example campaign: correlated stub-domain loss and plain
#: node crashes against an undisturbed baseline.  Checked-in mirror:
#: ``examples/campaigns/stub_outage.json``.
DEFAULT_CAMPAIGN_SPEC: dict = {
    "name": "stub-outage-vs-independent",
    "description": (
        "CER repair success and MTTR under a correlated stub-domain "
        "outage vs independent node crashes vs no faults"
    ),
    "population": 600,
    "warmup_lifetimes": 0.5,
    "measure_lifetimes": 1.0,
    "protocols": ["rost"],
    "group_size": 3,
    "buffer_s": 5.0,
    "domain_aware": True,
    "scenarios": [
        {"name": "baseline", "faults": []},
        {
            "name": "node-crashes",
            "faults": [{"kind": "node-crash", "count": 12, "at_frac": 0.55}],
        },
        {
            "name": "stub-outage",
            "faults": [
                {"kind": "stub-domain-outage", "domains": 2, "at_frac": 0.55}
            ],
        },
    ],
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One named fault list within a campaign."""

    name: str
    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise FaultError("scenario name must be non-empty")
        object.__setattr__(self, "faults", tuple(self.faults))

    def to_spec(self) -> dict:
        return {"name": self.name, "faults": [f.to_spec() for f in self.faults]}

    @classmethod
    def from_spec(cls, spec: dict) -> "ScenarioSpec":
        if not isinstance(spec, dict):
            raise FaultError(
                f"scenario spec must be a mapping, got {type(spec).__name__}"
            )
        unknown = sorted(set(spec) - {"name", "faults"})
        if unknown:
            raise FaultError(f"unknown scenario spec keys {unknown}")
        return cls(
            name=spec.get("name", ""),
            faults=tuple(fault_from_spec(f) for f in spec.get("faults", [])),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A full campaign: scenarios x protocols x seeds plus run shaping."""

    name: str
    description: str = ""
    population: int = 600
    warmup_lifetimes: float = 0.5
    measure_lifetimes: float = 1.0
    protocols: Tuple[str, ...] = ("rost",)
    #: Replication seeds; empty means "derive from the CLI --seed".
    seeds: Tuple[int, ...] = ()
    group_size: int = 3
    buffer_s: float = 5.0
    #: Root fan-out override.  ``None`` keeps the paper's 100-slot root;
    #: small smoke campaigns set a low value so trees have depth (and
    #: recovery episodes) even with a dozen members.
    root_bandwidth: Optional[float] = None
    #: Also evaluate the domain-aware CER variant (distinct stub domains
    #: preferred in MLC selection).
    domain_aware: bool = True
    scenarios: Tuple[ScenarioSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise FaultError("campaign name must be non-empty")
        if self.population < 1:
            raise FaultError(f"population must be >= 1, got {self.population}")
        if self.root_bandwidth is not None and self.root_bandwidth < 1:
            raise FaultError(
                f"root_bandwidth must be >= 1, got {self.root_bandwidth}"
            )
        if not self.protocols:
            raise FaultError("campaign needs at least one protocol")
        if not self.scenarios:
            raise FaultError("campaign needs at least one scenario")
        names = [s.name for s in self.scenarios]
        if len(set(names)) != len(names):
            raise FaultError(f"duplicate scenario names: {names}")
        for seed in self.seeds:
            if seed < 0:
                raise FaultError(f"seeds must be >= 0, got {seed}")
        object.__setattr__(self, "protocols", tuple(self.protocols))
        object.__setattr__(self, "seeds", tuple(self.seeds))
        object.__setattr__(self, "scenarios", tuple(self.scenarios))

    def scenario(self, name: str) -> ScenarioSpec:
        for scenario in self.scenarios:
            if scenario.name == name:
                return scenario
        raise FaultError(
            f"unknown scenario {name!r}; known: {[s.name for s in self.scenarios]}"
        )

    def scheme_list(self):
        """The recovery schemes every run of this campaign evaluates."""
        schemes = [
            cer_scheme(self.group_size, self.buffer_s),
            single_source_scheme(self.group_size, self.buffer_s),
        ]
        if self.domain_aware:
            schemes.append(
                cer_scheme(self.group_size, self.buffer_s, domain_aware=True)
            )
        return schemes

    # -- spec round-trip ---------------------------------------------------------

    def to_spec(self) -> dict:
        spec: dict = {"name": self.name}
        for f in dataclasses.fields(self):
            if f.name in ("name", "scenarios"):
                continue
            value = getattr(self, f.name)
            if value == f.default:
                continue
            spec[f.name] = list(value) if isinstance(value, tuple) else value
        spec["scenarios"] = [s.to_spec() for s in self.scenarios]
        return spec

    def canonical_json(self) -> str:
        """A canonical string form (hashable, picklable job parameter)."""
        return json.dumps(self.to_spec(), sort_keys=True)

    @classmethod
    def from_spec(cls, spec: dict) -> "CampaignSpec":
        if not isinstance(spec, dict):
            raise FaultError(
                f"campaign spec must be a mapping, got {type(spec).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(spec) - known)
        if unknown:
            raise FaultError(
                f"unknown campaign spec keys {unknown}; known: {sorted(known)}"
            )
        kwargs = dict(spec)
        kwargs["scenarios"] = tuple(
            ScenarioSpec.from_spec(s) for s in kwargs.get("scenarios", [])
        )
        for name in ("protocols", "seeds"):
            if name in kwargs:
                kwargs[name] = tuple(kwargs[name])
        return cls(**kwargs)


def load_campaign(path: str) -> CampaignSpec:
    """Load a campaign spec from a ``.json`` or ``.toml`` file."""
    return CampaignSpec.from_spec(_load_spec_file(path))


def resolve_campaign(spec) -> CampaignSpec:
    """Coerce any accepted spec form into a :class:`CampaignSpec`.

    ``None`` -> the built-in default; a dict -> parsed spec; a string ->
    inline JSON (when it looks like an object) or a spec file path.
    """
    if spec is None:
        return CampaignSpec.from_spec(DEFAULT_CAMPAIGN_SPEC)
    if isinstance(spec, CampaignSpec):
        return spec
    if isinstance(spec, dict):
        return CampaignSpec.from_spec(spec)
    if isinstance(spec, str):
        if spec.lstrip().startswith("{"):
            return CampaignSpec.from_spec(json.loads(spec))
        return load_campaign(spec)
    raise FaultError(f"cannot resolve campaign spec from {type(spec).__name__}")


# -- one (scenario, protocol, seed) unit ------------------------------------------


#: Cap on embedded violation reports per run record (keeps a pathological
#: run's JSON bounded; the total count is always exact).
MAX_VIOLATION_REPORTS = 25


def run_scenario(
    spec: CampaignSpec,
    scenario_name: str,
    protocol_name: str,
    seed: int,
    scale: float = 1.0,
    check_invariants: bool = False,
) -> dict:
    """Run one scenario under one protocol and seed; returns the JSON-ready
    per-run resilience record (the campaign report's ``runs`` entries).

    With ``check_invariants`` the run carries a non-strict
    :class:`~repro.invariants.InvariantChecker`; its findings land in the
    record's ``invariants`` block instead of aborting the campaign.
    """
    from ..experiments.common import protocol_factory, shared_topology

    scenario = spec.scenario(scenario_name)
    config = paper_config(population=spec.population, seed=seed, scale=scale)
    config = dataclasses.replace(
        config,
        warmup_lifetimes=spec.warmup_lifetimes,
        measure_lifetimes=spec.measure_lifetimes,
    )
    if spec.root_bandwidth is not None:
        config = dataclasses.replace(
            config,
            workload=dataclasses.replace(
                config.workload, root_bandwidth=spec.root_bandwidth
            ),
        )
    topology, oracle = shared_topology(config)
    checker = None
    if check_invariants:
        from ..invariants import InvariantChecker

        checker = InvariantChecker(strict=False)
    sim = RecoverySimulation(
        config,
        protocol_factory(protocol_name),
        spec.scheme_list(),
        topology=topology,
        oracle=oracle,
        check_invariants=checker if checker is not None else False,
    )
    resilience = ResilienceMetrics(config.warmup_s, config.horizon_s)
    injector = FaultInjector(FaultSchedule(seed=seed, faults=scenario.faults))
    injector.bind(sim.churn, resilience=resilience)
    attachment = None
    if obs_active():
        from ..obs.attach import ObsAttachment

        attachment = ObsAttachment(
            meta={
                "kind": "recovery",
                "scenario": scenario.name,
                "protocol": protocol_name,
                "population": spec.population,
                "seed": seed,
                "scale": scale,
            }
        ).attach(sim)
    result = sim.run()
    resilience.finish(config.horizon_s)
    if attachment is not None:
        emit_unit(attachment.finalize(result))

    churn_metrics = result.churn.metrics
    schemes = {}
    for name in sorted(result.schemes):
        scheme_result = result.schemes[name]
        groups = scheme_result.groups_selected
        schemes[name] = {
            "starving_ratio_pct": scheme_result.avg_starving_ratio_pct,
            "repair_success_rate": scheme_result.repair_success_rate,
            "episodes": scheme_result.episodes,
            "gap_packets": scheme_result.gap_packets_total,
            "repaired_packets": scheme_result.repaired_packets_total,
            "mean_group_domain_correlation": (
                scheme_result.mean_group_domain_correlation
            ),
            "mean_group_tree_correlation": (
                scheme_result.group_tree_correlation_sum / groups
                if groups
                else float("nan")
            ),
        }
    fault_events = sum(
        count
        for cause, count in resilience.disruption_events.items()
        if cause.startswith("fault:")
    )
    record: dict = {
        "scenario": scenario.name,
        "protocol": protocol_name,
        "seed": seed,
        "mean_population": churn_metrics.mean_population,
        "fault_log": [
            {"t": t, "kind": kind, "detail": detail}
            for t, kind, detail in injector.log
        ],
        "fault_disruption_events": fault_events,
        "mttr_s": resilience.mttr_s(),
        "mttr_churn_s": resilience.mttr_s("churn"),
        "delivered_data_ratio": resilience.delivered_data_ratio(
            churn_metrics.node_seconds
        ),
        "resilience": resilience.as_dict(),
        "schemes": schemes,
    }
    if checker is not None:
        record["invariants"] = {
            "checked": True,
            "sweeps": checker.sweeps,
            "violations": len(checker.violations),
            "reports": [
                v.as_dict() for v in checker.violations[:MAX_VIOLATION_REPORTS]
            ],
        }
    return record


# -- campaign fan-out --------------------------------------------------------------


@dataclass
class CampaignReport:
    """The merged outcome of one campaign."""

    table: str
    data: dict = field(default_factory=dict)
    #: Observability payloads merged from every run in submission order
    #: (keys ``trace`` / ``metrics`` / ``profile``; see :mod:`repro.obs`).
    artifacts: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return self.table


def _nanmean(values: Sequence[float]) -> float:
    clean = [v for v in values if isinstance(v, (int, float)) and v == v]
    return sum(clean) / len(clean) if clean else math.nan


def run_campaign(
    spec: CampaignSpec,
    scale: float = 1.0,
    seed: int = 42,
    jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
    check_invariants: bool = False,
) -> CampaignReport:
    """Fan the campaign's (scenario x protocol x seed) grid out and merge.

    Jobs go through :func:`repro.experiments.pool.run_jobs`, which
    preserves submission order, so the emitted report is byte-identical
    for a given seed at any ``jobs`` value.  ``check_invariants`` runs
    every unit under a non-strict invariant checker and rolls the
    violation counts up into the report.

    With a durable run store active (``REPRO_STORE_DIR``), each unit
    commits to the ledger as it completes; under ``REPRO_STORE_RESUME``
    already-completed units are replayed from their stored payloads
    instead of re-executed, and the merge cannot tell the difference —
    the replayed record and artifacts are the original bytes.
    """
    from ..experiments.pool import ExperimentJob, run_jobs

    seeds = spec.seeds or (seed, seed + 1)
    spec_json = spec.canonical_json()
    # Only added when enabled, so job identities (and any caching keyed on
    # them) are unchanged for ordinary runs.
    extra = {"check_invariants": True} if check_invariants else {}
    batch = [
        ExperimentJob.make(
            "faults_scenario",
            scale=scale,
            seed=run_seed,
            spec=spec_json,
            scenario=scenario.name,
            protocol=protocol,
            **extra,
        )
        for scenario in spec.scenarios
        for protocol in spec.protocols
        for run_seed in seeds
    ]
    results = run_jobs(batch, parallel_jobs=jobs, timeout_s=timeout_s)
    runs = [r.data for r in results]
    report = build_report(spec, scale=scale, seeds=list(seeds), runs=runs)
    for result in results:
        for key, payload in result.artifacts.items():
            report.artifacts.setdefault(key, []).extend(payload)
    return report


def build_report(
    spec: CampaignSpec, scale: float, seeds: List[int], runs: List[dict]
) -> CampaignReport:
    """Aggregate per-run records into the campaign table + JSON schema."""
    scheme_names = [s.name for s in spec.scheme_list()]
    summary: Dict[str, Dict[str, dict]] = {}
    rows = []
    for scenario in spec.scenarios:
        for protocol in spec.protocols:
            group = [
                r
                for r in runs
                if r["scenario"] == scenario.name and r["protocol"] == protocol
            ]
            entry = {
                "fault_disruption_events": _nanmean(
                    [r["fault_disruption_events"] for r in group]
                ),
                "mttr_s": _nanmean([r["mttr_s"] for r in group]),
                "mttr_churn_s": _nanmean([r["mttr_churn_s"] for r in group]),
                "delivered_data_ratio": _nanmean(
                    [r["delivered_data_ratio"] for r in group]
                ),
                "repair_success_rate": {
                    name: _nanmean(
                        [r["schemes"][name]["repair_success_rate"] for r in group]
                    )
                    for name in scheme_names
                },
                "mean_group_domain_correlation": {
                    name: _nanmean(
                        [
                            r["schemes"][name]["mean_group_domain_correlation"]
                            for r in group
                        ]
                    )
                    for name in scheme_names
                },
            }
            summary.setdefault(scenario.name, {})[protocol] = entry
            rows.append(
                [
                    scenario.name,
                    protocol,
                    entry["fault_disruption_events"],
                    entry["mttr_s"],
                    entry["delivered_data_ratio"],
                    *[entry["repair_success_rate"][name] for name in scheme_names],
                ]
            )
    header = [
        "scenario",
        "protocol",
        "fault events",
        "MTTR s",
        "delivered",
        *[f"{name} success" for name in scheme_names],
    ]
    table = render_table(
        f"Fault campaign {spec.name!r} "
        f"(seeds {seeds}, scale {scale:g}, {len(runs)} runs)",
        header,
        rows,
    )
    data = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "campaign": spec.name,
        "description": spec.description,
        "scale": scale,
        "seeds": list(seeds),
        "protocols": list(spec.protocols),
        "scenarios": [s.name for s in spec.scenarios],
        "schemes": scheme_names,
        "summary": summary,
        "runs": runs,
    }
    if any("invariants" in r for r in runs):
        data["invariant_violations"] = sum(
            r.get("invariants", {}).get("violations", 0) for r in runs
        )
    return CampaignReport(table=table, data=data)

"""Multiple-tree delivery: the paper's future-work extension.

The paper evaluates single-tree delivery and notes that its techniques
"can also be applied to the multiple-tree case" (Section 1).  This
subpackage implements that case, SplitStream-style: the stream is split
into K stripes, each distributed over its own ROST-maintained tree, and
every member is *interior-capable in exactly one tree* (its home tree)
while joining the others as a leaf — so one member's failure can
interrupt at most one stripe of any other member.  Losing one stripe of
K degrades quality by 1/K instead of blacking the stream out, which is
the multiple-description-coding resilience argument the paper cites.

* :mod:`repro.multitree.intervals` — outage-interval algebra (union,
  intersection, clipping);
* :mod:`repro.multitree.metrics` — cross-stripe blackout/quality
  aggregation and time-binned resilience series;
* :mod:`repro.multitree.faults` — correlated fault planning (one kill,
  all stripes);
* :mod:`repro.multitree.driver` — the K-tree orchestrator composing
  protocols, repair schemes and fault schedules per stripe;
* :mod:`repro.multitree.campaign` — the ``multitree_resilience``
  scenario grid (K x protocol x fault scenario) and its report.
"""

from .driver import MultiTreeResult, MultiTreeSimulation, home_tree
from .faults import FaultPlan, StripeFaultPlanner
from .intervals import clip_intervals, intersect_many, merge_intervals, total_length
from .metrics import MultiTreeResilienceMetrics, blackout_intervals

__all__ = [
    "FaultPlan",
    "MultiTreeResilienceMetrics",
    "MultiTreeResult",
    "MultiTreeSimulation",
    "StripeFaultPlanner",
    "blackout_intervals",
    "clip_intervals",
    "home_tree",
    "intersect_many",
    "merge_intervals",
    "total_length",
]

"""Multiple-tree delivery: the paper's future-work extension.

The paper evaluates single-tree delivery and notes that its techniques
"can also be applied to the multiple-tree case" (Section 1).  This
subpackage implements that case, SplitStream-style: the stream is split
into K stripes, each distributed over its own ROST-maintained tree, and
every member is *interior-capable in exactly one tree* (its home tree)
while joining the others as a leaf — so one member's failure can
interrupt at most one stripe of any other member.  Losing one stripe of
K degrades quality by 1/K instead of blacking the stream out, which is
the multiple-description-coding resilience argument the paper cites.

* :mod:`repro.multitree.intervals` — outage-interval algebra (union,
  intersection, clipping);
* :mod:`repro.multitree.driver` — the K-tree churn orchestrator and its
  stripe-quality metrics.
"""

from .driver import MultiTreeResult, MultiTreeSimulation
from .intervals import clip_intervals, intersect_many, merge_intervals, total_length

__all__ = [
    "MultiTreeResult",
    "MultiTreeSimulation",
    "clip_intervals",
    "intersect_many",
    "merge_intervals",
    "total_length",
]

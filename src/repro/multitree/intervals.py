"""Closed-interval algebra for outage accounting.

Intervals are ``(start, end)`` tuples with ``start <= end``; lists of
intervals may overlap and arrive unsorted.  All functions return merged,
sorted, disjoint interval lists.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

Interval = Tuple[float, float]


def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Sort and coalesce overlapping/touching intervals."""
    items = sorted((s, e) for s, e in intervals if e > s)
    merged: List[Interval] = []
    for start, end in items:
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


def clip_intervals(intervals: Iterable[Interval], low: float, high: float) -> List[Interval]:
    """Intersect a set of intervals with the window [low, high]."""
    if high <= low:
        return []
    clipped = [
        (max(s, low), min(e, high))
        for s, e in intervals
        if e > low and s < high
    ]
    return merge_intervals(clipped)


def total_length(intervals: Iterable[Interval]) -> float:
    """Sum of lengths of a (possibly overlapping) interval set."""
    return sum(e - s for s, e in merge_intervals(intervals))


def intersect_two(a: Sequence[Interval], b: Sequence[Interval]) -> List[Interval]:
    """Intersection of two merged interval lists (linear sweep)."""
    a = merge_intervals(a)
    b = merge_intervals(b)
    result: List[Interval] = []
    i = j = 0
    while i < len(a) and j < len(b):
        start = max(a[i][0], b[j][0])
        end = min(a[i][1], b[j][1])
        if end > start:
            result.append((start, end))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return result


def intersect_many(interval_sets: Sequence[Sequence[Interval]]) -> List[Interval]:
    """Intersection across any number of interval sets.

    The empty family intersects to nothing (there is no universe to
    default to in outage accounting).
    """
    if not interval_sets:
        return []
    current = merge_intervals(interval_sets[0])
    for other in interval_sets[1:]:
        if not current:
            return []
        current = intersect_two(current, other)
    return current

"""The K-tree churn orchestrator.

Runs K stripe trees over the *same* member population and underlay.
Each member is interior-capable only in its **home tree** (member id
modulo K — the SplitStream interior-disjointness rule); in the other
trees it joins with zero out-degree.  The multicast source serves every
stripe, its outbound budget split evenly, which leaves it the same
per-tree fan-out as in the single-tree system (each stripe carries 1/K
of the rate).

Stripe trees are *independent* given the capacity assignment — they
share no overlay state — so the orchestrator composes K single-tree
churn simulations over one workload and combines their outage timelines:

* a member's **stripe outage** is the detection+rejoin window each
  upstream failure opens in one stripe (quality degrades by 1/K);
* a **blackout** is an instant where *all* K stripes are down at once —
  the single-tree "streaming disruption" equivalent, which
  interior-disjointness is designed to make rare.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import SimulationConfig
from ..metrics.stats import mean_and_ci
from ..overlay.node import OverlayNode
from ..simulation.churn import ChurnRunResult, ChurnSimulation
from ..workload.generator import ChurnWorkload
from .intervals import clip_intervals, intersect_many, total_length


@dataclass
class MemberOutages:
    """Per-member outage intervals, one list per stripe."""

    join_s: float
    departure_s: float
    per_stripe: List[List[Tuple[float, float]]]


@dataclass
class MultiTreeResult:
    """Combined metrics of a K-tree run."""

    num_trees: int
    per_tree: List[ChurnRunResult]
    #: Stripe outages experienced per member lifetime (mean over departed
    #: members): how often *some* stripe was interrupted.
    stripe_disruptions_per_node: float
    #: Blackouts (all stripes down simultaneously) per member lifetime.
    blackouts_per_node: float
    #: Mean fraction of the stream delivered over members' lifetimes
    #: (1 - lost stripe-time / (K * view time)).
    mean_delivered_quality: float
    #: Mean over members of max-over-stripes service delay (all stripes
    #: are needed, so the slowest stripe gates playback).
    effective_delay_ms: float
    members_measured: int

    @property
    def avg_tree_delay_ms(self) -> float:
        mean, _ = mean_and_ci([r.avg_service_delay_ms for r in self.per_tree])
        return mean


class MultiTreeSimulation:
    """Compose K stripe-tree churn simulations over one workload."""

    def __init__(
        self,
        config: SimulationConfig,
        protocol_factory: Callable,
        num_trees: int = 2,
        topology=None,
        oracle=None,
        workload: Optional[ChurnWorkload] = None,
    ):
        if num_trees < 1:
            raise ValueError(f"num_trees must be >= 1, got {num_trees}")
        self.num_trees = num_trees
        self.base_config = config
        stripe_rate = config.workload.stream_rate / num_trees
        # Per-stripe config: the stripe carries 1/K of the rate and the
        # source commits 1/K of its outbound budget to it.
        self.stripe_config = dataclasses.replace(
            config,
            workload=dataclasses.replace(
                config.workload,
                stream_rate=stripe_rate,
                root_bandwidth=config.workload.root_bandwidth / num_trees,
            ),
        )
        self._protocol_factory = protocol_factory
        self._sims: List[ChurnSimulation] = []
        self._outages: Dict[int, MemberOutages] = {}
        self._measured: Dict[int, MemberOutages] = {}

        full_degree_rate = config.workload.stream_rate
        for tree_index in range(num_trees):

            def member_setup(node: OverlayNode, tree_index=tree_index) -> None:
                if node.member_id % self.num_trees == tree_index:
                    # Home tree: full forwarding capacity, measured against
                    # the stripe rate.
                    node.out_degree_cap = int(
                        node.bandwidth / self.stripe_config.workload.stream_rate
                    )
                else:
                    # Leaf everywhere else (interior-disjointness).
                    node.out_degree_cap = 0

            sim = ChurnSimulation(
                self.stripe_config.with_seed(config.seed * 7 + tree_index),
                protocol_factory,
                topology=topology,
                oracle=oracle,
                workload=workload,
                member_setup=member_setup,
                disruption_observer=self._observer_for(tree_index),
                departure_observer=self._departure_for(tree_index),
            )
            # All stripes share one underlay.
            topology, oracle = sim.topology, sim.oracle
            if workload is None:
                workload = sim.workload
            self._sims.append(sim)
        self.topology, self.oracle, self.workload = topology, oracle, workload

    # -- hooks ------------------------------------------------------------------

    def _observer_for(self, tree_index: int):
        def observe(event) -> None:
            now, failed = event.time, event.failed
            window = self.base_config.protocol.recovery_window_s
            for member in failed.descendants():
                record = self._outages.get(member.member_id)
                if record is None:
                    record = MemberOutages(
                        join_s=member.join_time,
                        departure_s=float("nan"),
                        per_stripe=[[] for _ in range(self.num_trees)],
                    )
                    self._outages[member.member_id] = record
                record.per_stripe[tree_index].append((now, now + window))

        return observe

    def _departure_for(self, tree_index: int):
        # Departure bookkeeping only needs to run once; use stripe 0.
        if tree_index != 0:
            return None

        def departed(now: float, node: OverlayNode) -> None:
            if not node.ever_attached:
                self._outages.pop(node.member_id, None)
                return
            metrics = self._sims[0].metrics
            if not metrics.in_window(now):
                self._outages.pop(node.member_id, None)
                return
            record = self._outages.pop(node.member_id, None)
            if record is None:
                record = MemberOutages(
                    join_s=node.join_time,
                    departure_s=now,
                    per_stripe=[[] for _ in range(self.num_trees)],
                )
            record.departure_s = now
            self._measured[node.member_id] = record

        return departed

    # -- run ----------------------------------------------------------------------

    def run(self) -> MultiTreeResult:
        results = [sim.run() for sim in self._sims]
        return self._combine(results)

    def _combine(self, results: Sequence[ChurnRunResult]) -> MultiTreeResult:
        stripe_counts: List[int] = []
        blackout_counts: List[int] = []
        qualities: List[float] = []
        for member_id, record in self._measured.items():
            view = record.departure_s - record.join_s
            if view <= 0 or record.departure_s != record.departure_s:
                continue
            low, high = record.join_s, record.departure_s
            clipped = [
                clip_intervals(stripe, low, high) for stripe in record.per_stripe
            ]
            stripe_counts.append(sum(len(c) for c in clipped))
            blackout_counts.append(len(intersect_many(clipped)))
            lost = sum(total_length(c) for c in clipped)
            qualities.append(
                max(0.0, 1.0 - lost / (self.num_trees * view))
            )
        # Members never disrupted still count as perfect viewers.
        measured_total = len(self._measured)
        stripe_mean, _ = mean_and_ci(stripe_counts or [0.0])
        blackout_mean, _ = mean_and_ci(blackout_counts or [0.0])
        quality_mean, _ = mean_and_ci(qualities or [1.0])

        effective_delay = self._effective_delay()
        return MultiTreeResult(
            num_trees=self.num_trees,
            per_tree=list(results),
            stripe_disruptions_per_node=stripe_mean,
            blackouts_per_node=blackout_mean,
            mean_delivered_quality=quality_mean,
            effective_delay_ms=effective_delay,
            members_measured=measured_total,
        )

    def _effective_delay(self) -> float:
        """Mean over members of the slowest stripe's delay (end state)."""
        delays: List[float] = []
        for member_id in self._sims[0].tree.members:
            if member_id == 0:
                continue
            per_stripe = []
            for sim in self._sims:
                node = sim.tree.members.get(member_id)
                if node is None or not node.attached:
                    break
                per_stripe.append(sim.ctx.service_delay_ms(node))
            else:
                delays.append(max(per_stripe))
        mean, _ = mean_and_ci(delays or [float("nan")])
        return mean

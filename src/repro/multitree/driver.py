"""The K-tree churn orchestrator.

Runs K stripe trees over the *same* member population and underlay.
Each member is interior-capable only in its **home tree** (member id
modulo K — the SplitStream interior-disjointness rule); in the other
trees it joins with zero out-degree.  The multicast source serves every
stripe, its outbound budget split evenly, which leaves it the same
per-tree fan-out as in the single-tree system (each stripe carries 1/K
of the rate).

Stripe trees are *independent* given the capacity assignment — they
share no overlay state — so the orchestrator composes K single-tree
simulations over one workload and combines their outage timelines:

* a member's **stripe outage** is the real detach→reattach (or
  detach→departure) window an upstream failure opens in one stripe,
  recorded by that stripe's :class:`~repro.metrics.collectors.
  ResilienceMetrics` (quality degrades by 1/K);
* a **blackout** is an instant where *all* K stripes are down at once —
  the single-tree "streaming disruption" equivalent, which
  interior-disjointness is designed to make rare.

Beyond the original sketch, the orchestrator composes the rest of the
stack per stripe:

* **protocols** — each stripe tree can run a different registered
  protocol (``stripe_protocols``), and ``switch_interval_s`` enables
  periodic BTP switching inside every stripe;
* **repair** — a scheme grid turns every stripe into a
  :class:`~repro.simulation.streaming.RecoverySimulation` (CER/MLC per
  stripe) with the residual-bandwidth budget split evenly across
  stripes;
* **faults** — a :class:`~repro.faults.schedule.FaultSchedule` is
  planned once by :class:`~repro.multitree.faults.StripeFaultPlanner`
  and replayed into every stripe, so a correlated crash removes the
  member from *all* trees atomically;
* **observability** — per-stripe trace attachments plus
  ``stripe_outage_open``/``stripe_outage_close`` records driven by the
  resilience outage callbacks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..config import SimulationConfig
from ..faults.injector import _chain, wire_resilience
from ..faults.schedule import FaultSchedule
from ..metrics.collectors import ResilienceMetrics
from ..metrics.stats import mean_and_ci
from ..overlay.node import OverlayNode
from ..protocols import PROTOCOLS
from ..simulation.churn import ChurnRunResult, ChurnSimulation
from ..simulation.streaming import RecoverySimulation
from ..workload.generator import ChurnWorkload
from .faults import StripeFaultPlanner
from .metrics import MultiTreeResilienceMetrics


def home_tree(member_id: int, num_trees: int) -> int:
    """The one stripe where ``member_id`` is interior-capable
    (SplitStream interior-disjointness: member id modulo K)."""
    return member_id % num_trees


ProtocolSpec = Union[str, Callable]


def _resolve_protocol(spec: ProtocolSpec) -> Callable:
    """A registered protocol name, or any factory callable, per stripe."""
    if isinstance(spec, str):
        return PROTOCOLS[spec]
    if callable(spec):
        return spec
    raise TypeError(f"stripe protocol must be a name or factory, got {spec!r}")


def _protocol_label(spec: ProtocolSpec) -> str:
    if isinstance(spec, str):
        return spec
    return getattr(spec, "protocol_name", None) or getattr(
        spec, "__name__", type(spec).__name__
    )


@dataclass
class MultiTreeResult:
    """Combined metrics of a K-tree run."""

    num_trees: int
    #: Per-stripe run results (ChurnRunResult, or RecoveryRunResult when a
    #: scheme grid was evaluated per stripe).
    per_tree: List
    #: Stripe outages experienced per member lifetime (mean over departed
    #: members): how often *some* stripe was interrupted.
    stripe_disruptions_per_node: float
    #: Blackouts (all stripes down simultaneously) per member lifetime.
    blackouts_per_node: float
    #: Mean fraction of the stream delivered over members' lifetimes
    #: (1 - lost stripe-time / (K * view time)).
    mean_delivered_quality: float
    #: Mean over members of max-over-stripes service delay (all stripes
    #: are needed, so the slowest stripe gates playback).
    effective_delay_ms: float
    members_measured: int
    #: Fraction of member view-time spent in total blackout.
    blackout_rate: float = 0.0
    #: Fraction of member stripe-time (K x view) lost to outages.
    stripe_outage_rate: float = 0.0
    #: Time-binned blackout/outage/quality series (see multitree.metrics).
    series: Dict[str, List[float]] = field(default_factory=dict)
    #: Full resilience aggregate, JSON-ready.
    resilience: Dict[str, object] = field(default_factory=dict)
    #: Injected faults that fired: (time, kind, detail) per fault.
    fault_log: List[Tuple[float, str, dict]] = field(default_factory=list)
    #: The protocol running in each stripe, by label.
    stripe_protocols: Tuple[str, ...] = ()

    @property
    def avg_tree_delay_ms(self) -> float:
        mean, _ = mean_and_ci(
            [getattr(r, "churn", r).avg_service_delay_ms for r in self.per_tree]
        )
        return mean


class MultiTreeSimulation:
    """Compose K stripe-tree simulations over one workload."""

    def __init__(
        self,
        config: SimulationConfig,
        protocol_factory: Optional[Callable] = None,
        num_trees: int = 2,
        topology=None,
        oracle=None,
        workload: Optional[ChurnWorkload] = None,
        stripe_protocols: Optional[Sequence[ProtocolSpec]] = None,
        switch_interval_s: Optional[float] = None,
        schemes: Optional[Sequence] = None,
        faults: Optional[FaultSchedule] = None,
        check_invariants=False,
        obs_meta: Optional[Dict[str, object]] = None,
    ):
        if num_trees < 1:
            raise ValueError(f"num_trees must be >= 1, got {num_trees}")
        self.num_trees = num_trees
        self.base_config = config
        self.schemes = list(schemes) if schemes else None
        stripe_rate = config.workload.stream_rate / num_trees
        # Per-stripe config: the stripe carries 1/K of the rate and the
        # source commits 1/K of its outbound budget to it.
        stripe_config = dataclasses.replace(
            config,
            workload=dataclasses.replace(
                config.workload,
                stream_rate=stripe_rate,
                root_bandwidth=config.workload.root_bandwidth / num_trees,
            ),
        )
        if switch_interval_s is not None:
            stripe_config = stripe_config.with_switch_interval(switch_interval_s)
        if self.schemes:
            # The residual repair budget is a per-member resource; split it
            # evenly so K stripes together spend what one tree would.
            stripe_config = dataclasses.replace(
                stripe_config,
                recovery=dataclasses.replace(
                    stripe_config.recovery,
                    residual_max_pps=config.recovery.residual_max_pps / num_trees,
                ),
            )
        self.stripe_config = stripe_config

        if stripe_protocols is None:
            if protocol_factory is None:
                raise ValueError(
                    "provide protocol_factory or stripe_protocols"
                )
            specs: List[ProtocolSpec] = [protocol_factory] * num_trees
        else:
            specs = list(stripe_protocols)
            if len(specs) == 1:
                specs = specs * num_trees
            if len(specs) != num_trees:
                raise ValueError(
                    f"stripe_protocols needs 1 or {num_trees} entries, "
                    f"got {len(specs)}"
                )
        self.stripe_protocol_names: Tuple[str, ...] = tuple(
            _protocol_label(spec) for spec in specs
        )

        self._sims: List = []
        self._churns: List[ChurnSimulation] = []
        self.stripe_resilience: List[ResilienceMetrics] = []
        self._measured: Dict[int, Tuple[float, float]] = {}
        self._attachments: List = [None] * num_trees
        self._obs_meta = dict(obs_meta or {})
        self.resilience = MultiTreeResilienceMetrics(
            num_trees, stripe_config.warmup_s, stripe_config.horizon_s
        )

        for tree_index in range(num_trees):

            def member_setup(node: OverlayNode, tree_index=tree_index) -> None:
                if home_tree(node.member_id, self.num_trees) == tree_index:
                    # Home tree: full forwarding capacity, measured against
                    # the stripe rate.
                    node.out_degree_cap = int(
                        node.bandwidth / self.stripe_config.workload.stream_rate
                    )
                else:
                    # Leaf everywhere else (interior-disjointness).
                    node.out_degree_cap = 0

            seeded = self.stripe_config.with_seed(config.seed * 7 + tree_index)
            factory = _resolve_protocol(specs[tree_index])
            # A callable (non-bool) check_invariants is a factory: each
            # stripe simulation gets its own fresh checker instance (a
            # checker binds to exactly one simulation).
            stripe_check = (
                check_invariants()
                if callable(check_invariants)
                else check_invariants
            )
            if self.schemes:
                sim = RecoverySimulation(
                    seeded,
                    factory,
                    self.schemes,
                    topology=topology,
                    oracle=oracle,
                    workload=workload,
                    member_setup=member_setup,
                    check_invariants=stripe_check,
                )
                churn = sim.churn
            else:
                sim = churn = ChurnSimulation(
                    seeded,
                    factory,
                    topology=topology,
                    oracle=oracle,
                    workload=workload,
                    member_setup=member_setup,
                    check_invariants=stripe_check,
                )
            # All stripes share one underlay and one workload.
            topology, oracle = churn.topology, churn.oracle
            if workload is None:
                workload = churn.workload

            resilience = ResilienceMetrics(
                seeded.warmup_s, seeded.horizon_s
            )
            resilience.outage_opened = self._outage_opened_for(tree_index)
            resilience.outage_closed = self._outage_closed_for(tree_index)
            # RecoverySimulation installs its own observers in its ctor;
            # chain ours after the fact, never replace.
            wire_resilience(churn, resilience)
            if tree_index == 0:
                churn.departure_observer = _chain(
                    churn.departure_observer, self._capture_departure
                )
            self._sims.append(sim)
            self._churns.append(churn)
            self.stripe_resilience.append(resilience)
        self.topology, self.oracle, self.workload = topology, oracle, workload

        self.fault_planner: Optional[StripeFaultPlanner] = None
        if faults is not None:
            self.fault_planner = StripeFaultPlanner(
                faults, self.workload, self.topology
            )
            for tree_index, churn in enumerate(self._churns):
                self.fault_planner.bind_stripe(
                    tree_index, churn, self.stripe_resilience[tree_index]
                )

    @property
    def invariant_checkers(self) -> List:
        """Per-stripe attached checkers (``None`` entries when disabled)."""
        return [churn.invariant_checker for churn in self._churns]

    # -- hooks ------------------------------------------------------------------

    def _capture_departure(self, now: float, node: OverlayNode) -> None:
        """Record (join, departure) of members measured inside the window.

        Departure bookkeeping only runs once, on stripe 0 — the workload
        (and hence the member timeline) is shared across stripes.
        """
        if not node.ever_attached:
            return
        if not self._churns[0].metrics.in_window(now):
            return
        self._measured[node.member_id] = (node.join_time, now)

    def _outage_opened_for(self, tree_index: int):
        def opened(t: float, member_id: int, cause: str) -> None:
            self.resilience.stripe_opened(member_id)
            attachment = self._attachments[tree_index]
            if attachment is not None and attachment.writer is not None:
                attachment.writer.emit(
                    {
                        "type": "stripe_outage_open",
                        "t": float(t),
                        "member": int(member_id),
                        "stripe": tree_index,
                        "cause": str(cause),
                    }
                )

        return opened

    def _outage_closed_for(self, tree_index: int):
        def closed(start: float, end: float, member_id: int, cause: str) -> None:
            self.resilience.stripe_closed(member_id)
            attachment = self._attachments[tree_index]
            if attachment is not None and attachment.writer is not None:
                attachment.writer.emit(
                    {
                        "type": "stripe_outage_close",
                        "t": float(end),
                        "member": int(member_id),
                        "stripe": tree_index,
                    }
                )

        return closed

    def _attach_obs(self) -> None:
        from ..obs.capture import obs_fingerprint

        if not any(obs_fingerprint()):
            return
        from ..obs.attach import ObsAttachment

        for tree_index, sim in enumerate(self._sims):
            meta: Dict[str, object] = dict(self._obs_meta)
            meta.update(
                {
                    "kind": "multitree",
                    "protocol": self.stripe_protocol_names[tree_index],
                    "population": int(
                        self.base_config.workload.target_population
                    ),
                    "seed": int(self.base_config.seed),
                    "stripe": tree_index,
                    "trees": self.num_trees,
                }
            )
            self._attachments[tree_index] = ObsAttachment(meta=meta).attach(sim)

    # -- run ----------------------------------------------------------------------

    def run(self) -> MultiTreeResult:
        self._attach_obs()
        results = [sim.run() for sim in self._sims]
        for tree_index, resilience in enumerate(self.stripe_resilience):
            resilience.finish(self._churns[tree_index].sim.now)
        result = self._combine(results)
        if any(a is not None for a in self._attachments):
            from ..obs.capture import emit_unit

            for attachment in self._attachments:
                if attachment is not None:
                    emit_unit(attachment.finalize(result))
        return result

    def _combine(self, results: Sequence) -> MultiTreeResult:
        aggregate = self.resilience
        for member_id in sorted(self._measured):
            join_s, departure_s = self._measured[member_id]
            per_stripe = [
                r.outage_intervals.get(member_id, [])
                for r in self.stripe_resilience
            ]
            aggregate.observe_member(member_id, join_s, departure_s, per_stripe)

        effective_delay = self._effective_delay()
        return MultiTreeResult(
            num_trees=self.num_trees,
            per_tree=list(results),
            stripe_disruptions_per_node=aggregate.stripe_outages_per_node,
            blackouts_per_node=aggregate.blackouts_per_node,
            mean_delivered_quality=aggregate.mean_delivered_quality,
            effective_delay_ms=effective_delay,
            members_measured=aggregate.members_measured,
            blackout_rate=aggregate.blackout_rate,
            stripe_outage_rate=aggregate.stripe_outage_rate,
            series=aggregate.series(),
            resilience=aggregate.as_dict(),
            fault_log=list(self.fault_planner.log) if self.fault_planner else [],
            stripe_protocols=self.stripe_protocol_names,
        )

    def _effective_delay(self) -> float:
        """Mean over members of the slowest stripe's delay (end state)."""
        delays: List[float] = []
        for member_id in self._churns[0].tree.members:
            if member_id == 0:
                continue
            per_stripe = []
            for churn in self._churns:
                node = churn.tree.members.get(member_id)
                if node is None or not node.attached:
                    break
                per_stripe.append(churn.ctx.service_delay_ms(node))
            else:
                delays.append(max(per_stripe))
        mean, _ = mean_and_ci(delays or [float("nan")])
        return mean

"""Cross-stripe resilience accounting for K-tree delivery.

Each stripe tree runs its own :class:`~repro.metrics.collectors.
ResilienceMetrics`, which records accurate per-member outage intervals
(detach -> reattach/departure).  This module combines the K per-stripe
timelines of every measured member into the multi-tree quality metrics:

* **stripe outage** — some stripe is down: quality degrades by 1/K;
* **blackout** — *all* K stripes are down at the same instant (the
  single-tree "streaming disruption" equivalent, which SplitStream-style
  interior-disjointness is designed to make rare);
* **delivered quality** — the fraction-of-stripes measure
  ``1 - lost stripe-time / (K x view time)``.

Besides run-level means, the aggregator bins the measurement window into
a fixed number of equal slots and accumulates per-bin view/outage/
blackout time, yielding the blackout-rate, stripe-outage and
delivered-quality *series* the ``multitree_resilience`` experiment
reports (and the validate gate freezes).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from .intervals import clip_intervals, intersect_many, total_length

Interval = Tuple[float, float]

#: Number of equal-width series bins over the measurement window.  Small
#: on purpose: per-bin rates must stay statistically meaningful at the
#: smoke scales the golden baseline freezes.
DEFAULT_SERIES_BINS = 6


def blackout_intervals(
    per_stripe: Sequence[Sequence[Interval]], low: float, high: float
) -> List[Interval]:
    """Instants inside ``[low, high]`` where *every* stripe is down."""
    clipped = [clip_intervals(stripe, low, high) for stripe in per_stripe]
    return intersect_many(clipped)


class MultiTreeResilienceMetrics:
    """Combine per-member, per-stripe outage timelines into K-tree metrics.

    The driver feeds one :meth:`observe_member` call per measured member
    (a member that departed inside the measurement window), carrying its
    view window and its K per-stripe outage-interval lists.  All derived
    quantities are plain arithmetic over those calls — deterministic and
    independent of observation order except for float summation order,
    which the driver keeps fixed by iterating members in insertion order.
    """

    def __init__(
        self,
        num_trees: int,
        window_start: float,
        window_end: float,
        series_bins: int = DEFAULT_SERIES_BINS,
    ):
        if num_trees < 1:
            raise ValueError(f"num_trees must be >= 1, got {num_trees}")
        if window_end <= window_start:
            raise ValueError("window_end must be > window_start")
        if series_bins < 1:
            raise ValueError(f"series_bins must be >= 1, got {series_bins}")
        self.num_trees = num_trees
        self.window_start = window_start
        self.window_end = window_end
        self.series_bins = series_bins
        self.members_measured = 0
        #: Per-member counts (means over departed members).
        self._stripe_outage_counts: List[int] = []
        self._blackout_counts: List[int] = []
        self._qualities: List[float] = []
        #: Time integrals over all measured members.
        self.view_seconds = 0.0
        self.stripe_outage_seconds = 0.0
        self.blackout_seconds = 0.0
        #: Per-bin integrals: member view-time, summed stripe outage time,
        #: blackout time.
        self._bin_view = [0.0] * series_bins
        self._bin_outage = [0.0] * series_bins
        self._bin_blackout = [0.0] * series_bins
        #: Live stripe-outage bookkeeping (how many stripes are currently
        #: down per member; drives the obs open/close trace records).
        self._open_stripes: Dict[int, int] = {}

    # -- recording -------------------------------------------------------------

    def observe_member(
        self,
        member_id: int,
        join_s: float,
        departure_s: float,
        per_stripe: Sequence[Sequence[Interval]],
    ) -> None:
        """Fold one measured member's K stripe timelines into the totals."""
        if len(per_stripe) != self.num_trees:
            raise ValueError(
                f"expected {self.num_trees} stripe timelines, "
                f"got {len(per_stripe)}"
            )
        view = departure_s - join_s
        if view <= 0 or departure_s != departure_s:
            return
        low, high = join_s, departure_s
        clipped = [clip_intervals(stripe, low, high) for stripe in per_stripe]
        blackouts = blackout_intervals(per_stripe, low, high)
        lost = sum(total_length(c) for c in clipped)
        blackout_time = total_length(blackouts)

        self.members_measured += 1
        self._stripe_outage_counts.append(sum(len(c) for c in clipped))
        self._blackout_counts.append(len(blackouts))
        self._qualities.append(
            max(0.0, 1.0 - lost / (self.num_trees * view))
        )
        self.view_seconds += view
        self.stripe_outage_seconds += lost
        self.blackout_seconds += blackout_time

        self._bin_add(self._bin_view, [(low, high)])
        for stripe in clipped:
            self._bin_add(self._bin_outage, stripe)
        self._bin_add(self._bin_blackout, blackouts)

    def stripe_opened(self, member_id: int) -> bool:
        """One stripe of ``member_id`` went down; True if this opens the
        member's *first* concurrent stripe outage."""
        count = self._open_stripes.get(member_id, 0)
        self._open_stripes[member_id] = count + 1
        return count == 0

    def stripe_closed(self, member_id: int) -> bool:
        """One stripe recovered; True if the member has no stripe down now."""
        count = self._open_stripes.get(member_id, 0) - 1
        if count <= 0:
            self._open_stripes.pop(member_id, None)
            return True
        self._open_stripes[member_id] = count
        return False

    def _bin_add(self, bins: List[float], intervals: Sequence[Interval]) -> None:
        """Distribute interval time over the window's equal-width bins."""
        span = self.window_end - self.window_start
        width = span / self.series_bins
        for start, end in intervals:
            lo = max(start, self.window_start)
            hi = min(end, self.window_end)
            if hi <= lo:
                continue
            first = min(int((lo - self.window_start) / width), self.series_bins - 1)
            last = min(int((hi - self.window_start) / width), self.series_bins - 1)
            for index in range(first, last + 1):
                bin_lo = self.window_start + index * width
                bin_hi = bin_lo + width
                overlap = min(hi, bin_hi) - max(lo, bin_lo)
                if overlap > 0:
                    bins[index] += overlap

    # -- derived metrics ----------------------------------------------------------

    @property
    def stripe_outages_per_node(self) -> float:
        return _mean(self._stripe_outage_counts, 0.0)

    @property
    def blackouts_per_node(self) -> float:
        return _mean(self._blackout_counts, 0.0)

    @property
    def mean_delivered_quality(self) -> float:
        return _mean(self._qualities, 1.0)

    @property
    def blackout_rate(self) -> float:
        """Fraction of member view-time spent in total blackout."""
        if self.view_seconds <= 0:
            return 0.0
        return self.blackout_seconds / self.view_seconds

    @property
    def stripe_outage_rate(self) -> float:
        """Fraction of member stripe-time (K x view) lost to outages."""
        if self.view_seconds <= 0:
            return 0.0
        return self.stripe_outage_seconds / (self.num_trees * self.view_seconds)

    def series(self) -> Dict[str, List[float]]:
        """Per-bin blackout-rate / stripe-outage / delivered-quality series.

        Bins without any member view-time report 0 blackout, 0 outage and
        quality 1 (nothing was watched, nothing was lost) so the series
        stay NaN-free for the validate gate's flattened paths.
        """
        span = self.window_end - self.window_start
        width = span / self.series_bins
        t, blackout, outage, quality = [], [], [], []
        for index in range(self.series_bins):
            view = self._bin_view[index]
            t.append(self.window_start + (index + 0.5) * width)
            if view <= 0:
                blackout.append(0.0)
                outage.append(0.0)
                quality.append(1.0)
                continue
            blackout.append(self._bin_blackout[index] / view)
            stripe_time = self.num_trees * view
            outage.append(self._bin_outage[index] / stripe_time)
            quality.append(
                max(0.0, 1.0 - self._bin_outage[index] / stripe_time)
            )
        return {
            "t": t,
            "blackout_rate": blackout,
            "stripe_outage_rate": outage,
            "delivered_quality": quality,
        }

    def as_dict(self) -> dict:
        """JSON-ready summary (the campaign report's per-run block)."""
        return {
            "num_trees": self.num_trees,
            "members_measured": self.members_measured,
            "stripe_outages_per_node": self.stripe_outages_per_node,
            "blackouts_per_node": self.blackouts_per_node,
            "blackout_rate": self.blackout_rate,
            "stripe_outage_rate": self.stripe_outage_rate,
            "mean_delivered_quality": self.mean_delivered_quality,
            "view_seconds": self.view_seconds,
            "stripe_outage_seconds": self.stripe_outage_seconds,
            "blackout_seconds": self.blackout_seconds,
            "series": self.series(),
        }


def _mean(values: Sequence[float], empty: float) -> float:
    if not values:
        return empty
    result = sum(values) / len(values)
    return result if result == result else math.nan

"""Correlated fault injection across K stripe trees.

A :class:`~repro.faults.injector.FaultInjector` binds to exactly one
churn simulation, and each stripe runs its own — so replaying a schedule
independently per stripe would pick *different* victims in every tree
(selection draws consult live tree state).  That breaks the correlated-
failure semantics: a crashing member must vanish from **all** stripes at
the same instant.

The :class:`StripeFaultPlanner` therefore resolves every fault's victim
set **once**, deterministically, against the *shared workload* (the
session timeline is identical across stripes, unlike the per-stripe tree
state), and then replays the same ``(time, cause, member_ids)`` plan into
every stripe as one priority ``-2`` timer per fault — the same engine
mechanics the single-tree injector uses.  Victim draws are keyed
``default_rng([schedule.seed, fault_index])`` exactly like
:meth:`FaultInjector._fire_closure`, so a plan replays bit-identically
for a given seed.

Only :class:`~repro.faults.model.NodeCrash` (``random`` selector or
explicit ``member_ids``) and :class:`~repro.faults.model.StubDomainOutage`
are supported: their victim sets are workload-derivable.  Tree-state
selectors (``root-children``, ``high-degree``) and the non-kill
primitives would need per-stripe state and are rejected up front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import FaultError
from ..faults.model import NodeCrash, StubDomainOutage
from ..faults.schedule import FaultSchedule
from ..metrics.collectors import ResilienceMetrics
from ..simulation.churn import ChurnSimulation
from ..simulation.probe import PROBE_MEMBER_ID


@dataclass(frozen=True)
class FaultPlan:
    """One fault resolved to a concrete cross-stripe kill."""

    time: float
    kind: str
    cause: str
    member_ids: Tuple[int, ...]
    detail: dict


class StripeFaultPlanner:
    """Plan a fault schedule once; replay the same kills into every stripe."""

    def __init__(self, schedule: FaultSchedule, workload, topology):
        self.schedule = schedule
        self._workload = workload
        self._topology = topology
        #: What fired, mirrored per stripe: (time, kind, detail) tuples.
        self.log: List[Tuple[float, str, dict]] = []
        self._logged: Dict[int, bool] = {}
        self.plans: List[FaultPlan] = [
            self._plan(index, fault)
            for index, fault in enumerate(schedule.faults)
        ]

    # -- planning --------------------------------------------------------------

    def _alive_sessions(self, t: float) -> List:
        """Workload sessions alive at ``t`` (identical across stripes),
        sorted by member id."""
        alive = [
            s
            for s in self._workload.sessions
            if s.member_id != PROBE_MEMBER_ID
            and s.arrival_s <= t < s.arrival_s + s.lifetime_s
        ]
        alive.sort(key=lambda s: s.member_id)
        return alive

    def _plan(self, index: int, fault) -> FaultPlan:
        t = fault.fire_time(self._workload.horizon_s)
        rng = np.random.default_rng([self.schedule.seed, index])
        if isinstance(fault, NodeCrash):
            victims = self._plan_crash(fault, t, rng)
            detail: dict = {"selector": fault.selector, "planned": list(victims)}
        elif isinstance(fault, StubDomainOutage):
            victims, domains = self._plan_outage(fault, t)
            detail = {"domains": list(domains), "planned": list(victims)}
        else:
            raise FaultError(
                f"multitree fault injection supports node-crash and "
                f"stub-domain-outage only, got {fault.kind!r}"
            )
        return FaultPlan(
            time=t,
            kind=fault.kind,
            cause=fault.cause,
            member_ids=victims,
            detail=detail,
        )

    def _plan_crash(
        self, fault: NodeCrash, t: float, rng: np.random.Generator
    ) -> Tuple[int, ...]:
        if fault.member_ids:
            return tuple(sorted(int(m) for m in fault.member_ids))
        if fault.selector != "random":
            raise FaultError(
                f"multitree node-crash selection must be workload-derivable: "
                f"selector {fault.selector!r} depends on per-stripe tree "
                f"state (use 'random' or explicit member_ids)"
            )
        candidates = self._alive_sessions(t)
        k = min(fault.count, len(candidates))
        picks = rng.choice(len(candidates), size=k, replace=False) if k else []
        return tuple(
            candidates[int(i)].member_id for i in sorted(int(p) for p in picks)
        )

    def _plan_outage(
        self, fault: StubDomainOutage, t: float
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        alive = self._alive_sessions(t)
        node_domain = self._topology.node_domain
        if fault.domain_ids:
            chosen = tuple(int(d) for d in fault.domain_ids)
        else:
            population: Dict[int, int] = {}
            for session in alive:
                domain = int(node_domain[session.underlay_node])
                if domain >= 0:
                    population[domain] = population.get(domain, 0) + 1
            ranked = sorted(population, key=lambda d: (-population[d], d))
            chosen = tuple(ranked[: fault.domains])
        wanted = set(chosen)
        victims = tuple(
            s.member_id
            for s in alive
            if int(node_domain[s.underlay_node]) in wanted
        )
        return victims, chosen

    # -- binding ---------------------------------------------------------------

    def bind_stripe(
        self,
        stripe: int,
        churn: ChurnSimulation,
        resilience: Optional[ResilienceMetrics] = None,
    ) -> None:
        """Schedule every planned kill into one stripe's engine.

        Kills fire at priority ``-2`` (beating a natural departure at the
        same instant, like the single-tree injector) and carry the full
        planned victim set as ``co_failed_ids`` so per-stripe recovery
        (MLC group selection) sees the correlation.  The planner's
        :attr:`log` is populated once, by the first stripe to fire each
        fault — the plan is stripe-invariant by construction.
        """
        for index, plan in enumerate(self.plans):
            churn.sim.schedule_at(
                plan.time,
                self._fire_closure(index, stripe, churn, resilience),
                label=f"fault:{plan.kind}",
                priority=-2,
            )

    def _fire_closure(
        self,
        index: int,
        stripe: int,
        churn: ChurnSimulation,
        resilience: Optional[ResilienceMetrics],
    ):
        plan = self.plans[index]
        co_failed = frozenset(plan.member_ids)

        def fire() -> None:
            killed = []
            members = churn.tree.members
            for member_id in plan.member_ids:  # already sorted
                node = members.get(member_id)
                if node is None or node.is_root:
                    continue
                if churn.fail_member(
                    node, cause=plan.cause, co_failed_ids=co_failed
                ):
                    killed.append(member_id)
            now = churn.sim.now
            detail = dict(plan.detail)
            detail["killed"] = killed
            detail["stripe"] = stripe
            if not self._logged.get(index):
                self._logged[index] = True
                shared = dict(plan.detail)
                shared["killed"] = list(plan.member_ids)
                self.log.append((now, plan.kind, shared))
            if resilience is not None:
                resilience.record_fault(now, plan.kind, detail)

        return fire

"""Multi-tree resilience campaigns: (scenario x protocol x K x seed).

A campaign spec names a set of fault *scenarios* (reusing the fault
campaign's :class:`~repro.faults.campaign.ScenarioSpec`), the protocols
to run in every stripe, and the stripe counts K to sweep.  The runner
fans the full grid out through :mod:`repro.experiments.pool` worker
processes and merges the per-run K-tree resilience metrics into one
report: blackout rate, stripe-outage rate and delivered quality
(fraction of stripes) per (scenario, protocol, K) cell, each with its
time-binned series.

The qualitative claim the ``multitree_resilience`` validate gate
freezes: under the correlated-crash scenario the blackout rate is
decreasing in K — interior-disjointness converts full blackouts into
1/K-quality stripe outages.

Results are merged in submission order and every random draw is keyed by
the run seed, so the report is byte-identical for a given seed at any
``--jobs`` value; with ``--store`` each (scenario, protocol, K, seed)
unit commits durably and a killed campaign resumes to the same bytes.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import paper_config
from ..errors import FaultError
from ..faults.campaign import MAX_VIOLATION_REPORTS, ScenarioSpec, _nanmean
from ..faults.schedule import FaultSchedule, _load_spec_file
from ..metrics.report import render_table
from ..recovery.schemes import cer_scheme
from .driver import MultiTreeSimulation

#: Version of the JSON report layout (asserted by CI's smoke job).
REPORT_SCHEMA_VERSION = 1

#: The built-in campaign: K in {1, 2, 4, 8} ROST stripe trees under no
#: faults, correlated node crashes, and a stub-domain outage.  The small
#: root fan-out keeps stripe trees deep (the per-stripe root cap is
#: K-invariant: int((root_bw/K) / (rate/K)) == int(root_bw/rate)), so
#: upstream failures actually orphan subtrees at smoke scales.
DEFAULT_MULTITREE_SPEC: dict = {
    "name": "ktree-resilience",
    "description": (
        "Blackout, stripe-outage and delivered-quality vs stripe count K "
        "under correlated faults"
    ),
    "population": 500,
    "protocols": ["rost"],
    "tree_counts": [1, 2, 4, 8],
    "root_bandwidth": 4.0,
    "scenarios": [
        {"name": "baseline", "faults": []},
        {
            "name": "crash",
            "faults": [
                {"kind": "node-crash", "count": 8, "at_frac": 0.45},
                {"kind": "node-crash", "count": 8, "at_frac": 0.7},
            ],
        },
        {
            "name": "outage",
            "faults": [
                {"kind": "stub-domain-outage", "domains": 2, "at_frac": 0.55}
            ],
        },
    ],
}


@dataclass(frozen=True)
class MultiTreeCampaignSpec:
    """A K-tree campaign: scenarios x protocols x tree counts x seeds."""

    name: str
    description: str = ""
    population: int = 500
    warmup_lifetimes: float = 0.5
    measure_lifetimes: float = 1.0
    protocols: Tuple[str, ...] = ("rost",)
    tree_counts: Tuple[int, ...] = (1, 2, 4, 8)
    #: Replication seeds; empty means "derive from the CLI --seed".
    seeds: Tuple[int, ...] = ()
    #: Root fan-out override; ``None`` keeps the paper's 100-slot root.
    root_bandwidth: Optional[float] = 4.0
    #: Per-stripe BTP switching interval; ``None`` disables switching.
    switch_interval_s: Optional[float] = None
    #: CER/MLC group size per stripe; 0 disables repair-scheme pricing.
    group_size: int = 0
    buffer_s: float = 5.0
    scenarios: Tuple[ScenarioSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise FaultError("campaign name must be non-empty")
        if self.population < 1:
            raise FaultError(f"population must be >= 1, got {self.population}")
        if not self.protocols:
            raise FaultError("campaign needs at least one protocol")
        if not self.tree_counts:
            raise FaultError("campaign needs at least one tree count")
        for count in self.tree_counts:
            if count < 1:
                raise FaultError(f"tree counts must be >= 1, got {count}")
        if len(set(self.tree_counts)) != len(self.tree_counts):
            raise FaultError(f"duplicate tree counts: {list(self.tree_counts)}")
        if not self.scenarios:
            raise FaultError("campaign needs at least one scenario")
        names = [s.name for s in self.scenarios]
        if len(set(names)) != len(names):
            raise FaultError(f"duplicate scenario names: {names}")
        if self.group_size < 0:
            raise FaultError(f"group_size must be >= 0, got {self.group_size}")
        for seed in self.seeds:
            if seed < 0:
                raise FaultError(f"seeds must be >= 0, got {seed}")
        object.__setattr__(self, "protocols", tuple(self.protocols))
        object.__setattr__(
            self, "tree_counts", tuple(int(k) for k in self.tree_counts)
        )
        object.__setattr__(self, "seeds", tuple(self.seeds))
        object.__setattr__(self, "scenarios", tuple(self.scenarios))

    def scenario(self, name: str) -> ScenarioSpec:
        for scenario in self.scenarios:
            if scenario.name == name:
                return scenario
        raise FaultError(
            f"unknown scenario {name!r}; known: {[s.name for s in self.scenarios]}"
        )

    def scheme_list(self) -> list:
        """The per-stripe repair schemes (empty when repair is disabled)."""
        if self.group_size < 1:
            return []
        return [cer_scheme(self.group_size, self.buffer_s)]

    # -- spec round-trip ---------------------------------------------------------

    def to_spec(self) -> dict:
        spec: dict = {"name": self.name}
        for f in dataclasses.fields(self):
            if f.name in ("name", "scenarios"):
                continue
            value = getattr(self, f.name)
            if value == f.default:
                continue
            spec[f.name] = list(value) if isinstance(value, tuple) else value
        spec["scenarios"] = [s.to_spec() for s in self.scenarios]
        return spec

    def canonical_json(self) -> str:
        """A canonical string form (hashable, picklable job parameter)."""
        return json.dumps(self.to_spec(), sort_keys=True)

    @classmethod
    def from_spec(cls, spec: dict) -> "MultiTreeCampaignSpec":
        if not isinstance(spec, dict):
            raise FaultError(
                f"campaign spec must be a mapping, got {type(spec).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(spec) - known)
        if unknown:
            raise FaultError(
                f"unknown campaign spec keys {unknown}; known: {sorted(known)}"
            )
        kwargs = dict(spec)
        kwargs["scenarios"] = tuple(
            ScenarioSpec.from_spec(s) for s in kwargs.get("scenarios", [])
        )
        for name in ("protocols", "tree_counts", "seeds"):
            if name in kwargs:
                kwargs[name] = tuple(kwargs[name])
        return cls(**kwargs)


def load_multitree_campaign(path: str) -> MultiTreeCampaignSpec:
    """Load a campaign spec from a ``.json`` or ``.toml`` file."""
    return MultiTreeCampaignSpec.from_spec(_load_spec_file(path))


def resolve_multitree_campaign(spec) -> MultiTreeCampaignSpec:
    """Coerce any accepted spec form into a :class:`MultiTreeCampaignSpec`.

    ``None`` -> the built-in default; a dict -> parsed spec; a string ->
    inline JSON (when it looks like an object) or a spec file path.
    """
    if spec is None:
        return MultiTreeCampaignSpec.from_spec(DEFAULT_MULTITREE_SPEC)
    if isinstance(spec, MultiTreeCampaignSpec):
        return spec
    if isinstance(spec, dict):
        return MultiTreeCampaignSpec.from_spec(spec)
    if isinstance(spec, str):
        if spec.lstrip().startswith("{"):
            return MultiTreeCampaignSpec.from_spec(json.loads(spec))
        return load_multitree_campaign(spec)
    raise FaultError(f"cannot resolve campaign spec from {type(spec).__name__}")


# -- one (scenario, protocol, K, seed) unit ----------------------------------------


def run_scenario(
    spec: MultiTreeCampaignSpec,
    scenario_name: str,
    protocol_name: str,
    num_trees: int,
    seed: int,
    scale: float = 1.0,
    check_invariants: bool = False,
) -> dict:
    """Run one K-tree scenario unit; returns the JSON-ready per-run record.

    With ``check_invariants`` every stripe simulation carries its own
    non-strict :class:`~repro.invariants.InvariantChecker`; findings land
    in the record's ``invariants`` block instead of aborting the campaign.
    """
    from ..experiments.common import shared_topology

    scenario = spec.scenario(scenario_name)
    config = paper_config(population=spec.population, seed=seed, scale=scale)
    config = dataclasses.replace(
        config,
        warmup_lifetimes=spec.warmup_lifetimes,
        measure_lifetimes=spec.measure_lifetimes,
    )
    if spec.root_bandwidth is not None:
        config = dataclasses.replace(
            config,
            workload=dataclasses.replace(
                config.workload, root_bandwidth=spec.root_bandwidth
            ),
        )
    topology, oracle = shared_topology(config)
    checker_factory = False
    if check_invariants:
        from ..invariants import InvariantChecker

        checker_factory = lambda: InvariantChecker(strict=False)  # noqa: E731
    schedule = (
        FaultSchedule(seed=seed, faults=scenario.faults)
        if scenario.faults
        else None
    )
    sim = MultiTreeSimulation(
        config,
        num_trees=num_trees,
        topology=topology,
        oracle=oracle,
        stripe_protocols=[protocol_name],
        switch_interval_s=spec.switch_interval_s,
        schemes=spec.scheme_list() or None,
        faults=schedule,
        check_invariants=checker_factory,
        obs_meta={"scenario": scenario.name, "scale": scale},
    )
    result = sim.run()

    churn_result = getattr(result.per_tree[0], "churn", result.per_tree[0])
    record: dict = {
        "scenario": scenario.name,
        "protocol": protocol_name,
        "trees": num_trees,
        "seed": seed,
        "mean_population": churn_result.metrics.mean_population,
        "fault_log": [
            {"t": t, "kind": kind, "detail": detail}
            for t, kind, detail in result.fault_log
        ],
        "blackout_rate": result.blackout_rate,
        "stripe_outage_rate": result.stripe_outage_rate,
        "mean_delivered_quality": result.mean_delivered_quality,
        "blackouts_per_node": result.blackouts_per_node,
        "stripe_outages_per_node": result.stripe_disruptions_per_node,
        "members_measured": result.members_measured,
        "effective_delay_ms": result.effective_delay_ms,
        "resilience": result.resilience,
    }
    if spec.group_size >= 1:
        schemes: Dict[str, dict] = {}
        for stripe_result in result.per_tree:
            for name in sorted(stripe_result.schemes):
                scheme_result = stripe_result.schemes[name]
                entry = schemes.setdefault(
                    name,
                    {"starving_ratios": [], "success_rates": [], "episodes": 0},
                )
                entry["starving_ratios"].append(
                    scheme_result.avg_starving_ratio_pct
                )
                entry["success_rates"].append(scheme_result.repair_success_rate)
                entry["episodes"] += scheme_result.episodes
        record["schemes"] = {
            name: {
                "starving_ratio_pct": _nanmean(entry["starving_ratios"]),
                "repair_success_rate": _nanmean(entry["success_rates"]),
                "episodes": entry["episodes"],
            }
            for name, entry in schemes.items()
        }
    if check_invariants:
        checkers = [c for c in sim.invariant_checkers if c is not None]
        violations = [v for c in checkers for v in c.violations]
        record["invariants"] = {
            "checked": True,
            "sweeps": sum(c.sweeps for c in checkers),
            "violations": len(violations),
            "reports": [
                v.as_dict() for v in violations[:MAX_VIOLATION_REPORTS]
            ],
        }
    return record


# -- campaign fan-out --------------------------------------------------------------


@dataclass
class MultiTreeCampaignReport:
    """The merged outcome of one K-tree campaign."""

    table: str
    data: dict = field(default_factory=dict)
    #: Observability payloads merged from every run in submission order.
    artifacts: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return self.table


def run_campaign(
    spec: MultiTreeCampaignSpec,
    scale: float = 1.0,
    seed: int = 42,
    jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
    check_invariants: bool = False,
) -> MultiTreeCampaignReport:
    """Fan the (scenario x protocol x K x seed) grid out and merge.

    Jobs go through :func:`repro.experiments.pool.run_jobs`, which
    preserves submission order, so the emitted report is byte-identical
    for a given seed at any ``jobs`` value; the durable run store and
    observability capture compose exactly as for the fault campaign.
    """
    from ..experiments.pool import ExperimentJob, run_jobs

    seeds = spec.seeds or (seed,)
    spec_json = spec.canonical_json()
    extra = {"check_invariants": True} if check_invariants else {}
    batch = [
        ExperimentJob.make(
            "multitree_scenario",
            scale=scale,
            seed=run_seed,
            spec=spec_json,
            scenario=scenario.name,
            protocol=protocol,
            trees=num_trees,
            **extra,
        )
        for scenario in spec.scenarios
        for protocol in spec.protocols
        for num_trees in spec.tree_counts
        for run_seed in seeds
    ]
    results = run_jobs(batch, parallel_jobs=jobs, timeout_s=timeout_s)
    runs = [r.data for r in results]
    report = build_report(spec, scale=scale, seeds=list(seeds), runs=runs)
    for result in results:
        for key, payload in result.artifacts.items():
            report.artifacts.setdefault(key, []).extend(payload)
    return report


def _mean_series(group: List[dict], series_key: str) -> List[float]:
    """Element-wise seed mean of one per-run resilience series."""
    rows = [r["resilience"]["series"][series_key] for r in group]
    if not rows:
        return []
    length = min(len(row) for row in rows)
    return [_nanmean([row[i] for row in rows]) for i in range(length)]


def build_report(
    spec: MultiTreeCampaignSpec,
    scale: float,
    seeds: List[int],
    runs: List[dict],
) -> MultiTreeCampaignReport:
    """Aggregate per-run records into the campaign table + JSON schema."""
    summary: Dict[str, Dict[str, dict]] = {}
    rows = []
    for scenario in spec.scenarios:
        for protocol in spec.protocols:
            for num_trees in spec.tree_counts:
                group = [
                    r
                    for r in runs
                    if r["scenario"] == scenario.name
                    and r["protocol"] == protocol
                    and r["trees"] == num_trees
                ]
                entry = {
                    "blackout_rate": _nanmean(
                        [r["blackout_rate"] for r in group]
                    ),
                    "stripe_outage_rate": _nanmean(
                        [r["stripe_outage_rate"] for r in group]
                    ),
                    "mean_delivered_quality": _nanmean(
                        [r["mean_delivered_quality"] for r in group]
                    ),
                    "blackouts_per_node": _nanmean(
                        [r["blackouts_per_node"] for r in group]
                    ),
                    "stripe_outages_per_node": _nanmean(
                        [r["stripe_outages_per_node"] for r in group]
                    ),
                    "members_measured": _nanmean(
                        [r["members_measured"] for r in group]
                    ),
                    "series": {
                        key: _mean_series(group, key)
                        for key in (
                            "blackout_rate",
                            "stripe_outage_rate",
                            "delivered_quality",
                        )
                    },
                }
                summary.setdefault(scenario.name, {}).setdefault(protocol, {})[
                    f"K{num_trees}"
                ] = entry
                rows.append(
                    [
                        scenario.name,
                        protocol,
                        num_trees,
                        entry["blackout_rate"],
                        entry["stripe_outage_rate"],
                        100.0 * entry["mean_delivered_quality"],
                        entry["blackouts_per_node"],
                    ]
                )
    table = render_table(
        f"Multi-tree campaign {spec.name!r} "
        f"(seeds {seeds}, scale {scale:g}, {len(runs)} runs)",
        [
            "scenario",
            "protocol",
            "K",
            "blackout rate",
            "outage rate",
            "quality %",
            "blackouts/node",
        ],
        rows,
    )
    data = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "campaign": spec.name,
        "description": spec.description,
        "scale": scale,
        "seeds": list(seeds),
        "protocols": list(spec.protocols),
        "tree_counts": list(spec.tree_counts),
        "scenarios": [s.name for s in spec.scenarios],
        "summary": summary,
        "runs": runs,
    }
    if any("invariants" in r for r in runs):
        data["invariant_violations"] = sum(
            r.get("invariants", {}).get("violations", 0) for r in runs
        )
    return MultiTreeCampaignReport(table=table, data=data)


def gate_data(report_data: dict) -> dict:
    """The NaN-free subset of a campaign report the validate gate freezes.

    Per-run records carry diagnostic leaves that may legitimately be NaN
    at tiny scales (e.g. ``effective_delay_ms`` when no member holds all
    K stripes at the end state); the gated surface is the seed-averaged
    summary, whose rates and series are finite by construction.
    """
    data = {
        key: report_data[key]
        for key in (
            "schema_version",
            "campaign",
            "scale",
            "seeds",
            "protocols",
            "tree_counts",
            "scenarios",
            "summary",
        )
    }
    if "invariant_violations" in report_data:
        data["invariant_violations"] = report_data["invariant_violations"]
    return data

"""Figure 5: CDF of per-member disruption counts in an 8000-node network.

The paper plots the cumulative percentage of nodes experiencing at most
1, 2, 4, ..., 128 disruptions over their lifetimes.
"""

from __future__ import annotations

from ..metrics.stats import cdf_at
from ..metrics.report import render_series_table
from .common import DEFAULT_SINGLE_SIZE, PROTOCOL_ORDER, SweepSettings, churn_run
from .registry import ExperimentResult, register
from .units import ChurnUnit, declare_units

THRESHOLDS = (1, 2, 4, 8, 16, 32, 64, 128)


@declare_units("fig05")
def units(
    scale: float = 1.0, seed: int = 42, population: int = DEFAULT_SINGLE_SIZE, **_
):
    settings = SweepSettings(scale=scale, seed=seed)
    return [ChurnUnit(protocol, population, settings) for protocol in PROTOCOL_ORDER]


@register(
    "fig05",
    "CDF of per-node disruption counts (8000-node network)",
    "Figure 5",
)
def run(
    scale: float = 1.0,
    seed: int = 42,
    population: int = DEFAULT_SINGLE_SIZE,
    **_,
) -> ExperimentResult:
    settings = SweepSettings(scale=scale, seed=seed)
    series = []
    raw = {}
    for protocol in PROTOCOL_ORDER:
        result = churn_run(protocol, population, settings)
        counts = result.metrics.disruptions_per_departed
        fractions = [100.0 * f for f in cdf_at(counts, THRESHOLDS)]
        series.append((protocol, fractions))
        raw[protocol] = counts
    table = render_series_table(
        f"Fig. 5 — cumulative % of nodes with <= x disruptions "
        f"(population {population}, scale {scale:g})",
        "<= disruptions",
        list(THRESHOLDS),
        series,
        precision=1,
    )
    return ExperimentResult(
        experiment_id="fig05",
        title="CDF of per-node disruption counts",
        table=table,
        data={"thresholds": list(THRESHOLDS), "series": dict(series)},
    )

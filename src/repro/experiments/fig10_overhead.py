"""Figure 10: protocol overhead vs network size.

Overhead = average number of optimization-induced reconnections a member
suffers during its lifetime.  Minimum-depth and longest-first never
restructure the tree (zero overhead by construction); ROST stays far
below one reconnection per lifetime; the centralized relaxed BO/TO pay
the most.
"""

from __future__ import annotations

from ..metrics.report import render_series_table
from .common import PAPER_SIZES, PROTOCOL_ORDER, SweepSettings, churn_run
from .registry import ExperimentResult, register
from .units import ChurnUnit, declare_units


@declare_units("fig10")
def units(scale: float = 1.0, seed: int = 42, sizes=PAPER_SIZES, **_):
    settings = SweepSettings(scale=scale, seed=seed)
    return [
        ChurnUnit(protocol, size, settings)
        for protocol in PROTOCOL_ORDER
        for size in sizes
    ]


@register(
    "fig10",
    "Protocol overhead (reconnections per node) vs network size",
    "Figure 10",
)
def run(scale: float = 1.0, seed: int = 42, sizes=PAPER_SIZES, **_) -> ExperimentResult:
    settings = SweepSettings(scale=scale, seed=seed)
    series = []
    for protocol in PROTOCOL_ORDER:
        values = [
            churn_run(protocol, size, settings).avg_optimization_reconnections
            for size in sizes
        ]
        series.append((protocol, values))
    table = render_series_table(
        f"Fig. 10 — avg optimization reconnections per node (scale {scale:g})",
        "size",
        list(sizes),
        series,
    )
    return ExperimentResult(
        experiment_id="fig10",
        title="Protocol overhead vs network size",
        table=table,
        data={"sizes": list(sizes), "series": dict(series)},
    )

"""Shared machinery for the experiment modules.

The expensive artefacts — topologies/oracles, workloads and whole churn
runs — are cached in-process and keyed by their full parameter tuples, so
experiments that share sweeps (Figs 4/7/8/10; Figs 6/9) pay for them
once.  All protocols within one sweep run against a byte-identical
workload over a shared underlay, mirroring the paper's methodology.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..config import SimulationConfig, paper_config
from ..obs.capture import ObsUnit, emit_unit, obs_fingerprint
from ..protocols import PROTOCOLS
from ..protocols.rost import RostProtocol
from ..sim.rng import RngRegistry
from ..simulation.churn import ChurnRunResult, ChurnSimulation
from ..simulation.probe import make_probe_session
from ..simulation.streaming import RecoveryRunResult, RecoverySimulation
from ..topology.cache import clear_default_cache, default_cache
from ..workload.generator import generate_workload
from ..workload.session import Session

#: The x-axis of the paper's size sweeps (Figs 4, 7, 8, 10, 12).
PAPER_SIZES: Tuple[int, ...] = (2000, 5000, 8000, 11000, 14000)
#: Row order used in every multi-protocol figure.
PROTOCOL_ORDER: Tuple[str, ...] = (
    "min-depth",
    "longest-first",
    "relaxed-bo",
    "relaxed-to",
    "rost",
)
#: The network the single-size figures (5, 6, 9, 11, 13, 14) use.
DEFAULT_SINGLE_SIZE = 8000

_workload_cache: Dict[tuple, object] = {}
_churn_cache: Dict[tuple, ChurnRunResult] = {}
_recovery_cache: Dict[tuple, RecoveryRunResult] = {}
# Observability units captured alongside cached runs, same keys as the
# run caches.  A cache hit must *re-emit* the stored unit: with --jobs 1
# a run shared between figures executes once, while with --jobs 4 each
# figure's unit is simulated once and replayed per consumer — re-emitting
# the unit keeps the merged trace/metrics byte-identical across the two.
_churn_obs: Dict[tuple, ObsUnit] = {}
_recovery_obs: Dict[tuple, ObsUnit] = {}

#: Run-cache hit/miss counters since the last :func:`clear_caches`.
#: ``benchmarks/report.py`` snapshots these around each figure so the
#: bench meta records how much cross-figure sharing the sweep-unit
#: scheduler can exploit.
_cache_stats: Dict[str, int] = {
    "churn_hits": 0,
    "churn_misses": 0,
    "recovery_hits": 0,
    "recovery_misses": 0,
}


def cache_stats() -> Dict[str, int]:
    """A snapshot of the run-cache hit/miss counters."""
    return dict(_cache_stats)


def clear_caches() -> None:
    """Drop all cached runs (tests use this to force fresh sweeps).

    Clears the in-memory tiers only; an on-disk topology cache configured
    via ``REPRO_CACHE_DIR`` survives (its entries are content-addressed,
    so staleness is not a concern).
    """
    clear_default_cache()
    _workload_cache.clear()
    _churn_cache.clear()
    _recovery_cache.clear()
    _churn_obs.clear()
    _recovery_obs.clear()
    for name in _cache_stats:
        _cache_stats[name] = 0


@dataclass(frozen=True)
class SweepSettings:
    """Knobs common to every experiment invocation."""

    scale: float = 1.0
    seed: int = 42
    warmup_lifetimes: float = 2.0
    measure_lifetimes: float = 2.0

    def config(self, population: int) -> SimulationConfig:
        cfg = paper_config(population=population, seed=self.seed, scale=self.scale)
        return dataclasses.replace(
            cfg,
            warmup_lifetimes=self.warmup_lifetimes,
            measure_lifetimes=self.measure_lifetimes,
        )


def shared_topology(config: SimulationConfig):
    """Topology + oracle via the two-tier content-keyed cache.

    Repeat calls in one process hit the memory LRU; with ``REPRO_CACHE_DIR``
    set, pool workers and repeat CLI invocations additionally share the
    precomputed matrices through the disk tier.
    """
    return default_cache().get(config.topology)


def shared_workload(
    config: SimulationConfig, probe: Optional[Session] = None, salt: int = 0
):
    """One workload per (topology config, workload config, horizon, probe,
    salt) — identical across the protocols of a sweep."""
    topology, _ = shared_topology(config)
    probe_key = None
    if probe is not None:
        probe_key = (probe.arrival_s, probe.lifetime_s, probe.bandwidth)
    # The topology config belongs in the key: attach nodes come from the
    # underlay, and two scales can coincide on every workload field (e.g.
    # scale 0.02 x size 5000 and scale 0.05 x size 2000 both target 100
    # members with the same derived seed) while their underlays differ.
    key = (config.topology, config.workload, round(config.horizon_s, 6), probe_key, salt)
    workload = _workload_cache.get(key)
    if workload is None:
        rngs = RngRegistry(config.seed)
        workload = generate_workload(
            config.workload,
            horizon_s=config.horizon_s,
            attach_nodes=topology.stub_nodes,
            rng=rngs.stream("workload"),
            probe=probe,
        )
        _workload_cache[key] = workload
    return workload


def _invariants_enabled() -> bool:
    """The CLI's ``--check-invariants`` travels via the environment (it
    must reach pool workers and the cached run helpers alike)."""
    return os.environ.get("REPRO_CHECK_INVARIANTS", "") not in ("", "0")


def protocol_factory(name: str, **kwargs) -> Callable:
    """A factory for ``name``, optionally overriding ROST's feature flags."""
    cls = PROTOCOLS[name]
    if kwargs:
        if cls is not RostProtocol:
            raise ValueError(f"feature flags only apply to rost, not {name}")
        return lambda ctx: RostProtocol(ctx, **kwargs)
    return cls


def churn_key(
    protocol_name: str,
    population: int,
    settings: SweepSettings,
    probe_lifetime_s: Optional[float] = None,
    switch_interval_s: Optional[float] = None,
    rost_flags: Optional[dict] = None,
) -> tuple:
    """The ``_churn_cache`` key for one run's parameters.

    Shared between :func:`churn_run` and the sweep-unit scheduler
    (:mod:`repro.experiments.units`), which seeds the cache with
    worker-executed results: both sides must fold the invariant-checking
    flag and the obs fingerprint identically or seeded entries would
    never be found (or worse, be replayed under the wrong channel set).
    """
    return (
        "churn",
        protocol_name,
        population,
        settings,
        probe_lifetime_s,
        switch_interval_s,
        tuple(sorted((rost_flags or {}).items())),
        _invariants_enabled(),
        obs_fingerprint(),
    )


def churn_run(
    protocol_name: str,
    population: int,
    settings: SweepSettings,
    probe: Optional[Session] = None,
    switch_interval_s: Optional[float] = None,
    rost_flags: Optional[dict] = None,
) -> ChurnRunResult:
    """One (cached) churn run."""
    checked = _invariants_enabled()
    obs_fp = obs_fingerprint()
    key = churn_key(
        protocol_name,
        population,
        settings,
        probe_lifetime_s=probe.lifetime_s if probe is not None else None,
        switch_interval_s=switch_interval_s,
        rost_flags=rost_flags,
    )
    cached = _churn_cache.get(key)
    if cached is not None:
        _cache_stats["churn_hits"] += 1
        unit = _churn_obs.get(key)
        if unit is not None:
            emit_unit(unit)
        return cached
    _cache_stats["churn_misses"] += 1
    config = settings.config(population)
    if switch_interval_s is not None:
        config = config.with_switch_interval(switch_interval_s)
    topology, oracle = shared_topology(config)
    workload = shared_workload(config, probe=probe)
    sim = ChurnSimulation(
        config,
        protocol_factory(protocol_name, **(rost_flags or {})),
        topology=topology,
        oracle=oracle,
        workload=workload,
        probe=probe,
        check_invariants=checked,
    )
    attachment = None
    if any(obs_fp):
        from ..obs.attach import ObsAttachment

        attachment = ObsAttachment(
            meta={
                "kind": "churn",
                "protocol": protocol_name,
                "population": population,
                "seed": settings.seed,
                "scale": settings.scale,
                "switch_interval_s": switch_interval_s,
            }
        ).attach(sim)
    result = sim.run()
    _churn_cache[key] = result
    if attachment is not None:
        unit = attachment.finalize(result)
        _churn_obs[key] = unit
        emit_unit(unit)
    return result


def recovery_key(
    protocol_name: str,
    population: int,
    settings: SweepSettings,
    scheme_names: Sequence[str],
    replica: int = 0,
) -> tuple:
    """The ``_recovery_cache`` key (see :func:`churn_key` for the
    contract with the sweep-unit scheduler)."""
    return (
        "recovery",
        protocol_name,
        population,
        settings,
        tuple(scheme_names),
        replica,
        _invariants_enabled(),
        obs_fingerprint(),
    )


def recovery_run(
    protocol_name: str,
    population: int,
    settings: SweepSettings,
    schemes: Sequence,
    replica: int = 0,
) -> RecoveryRunResult:
    """One (cached) recovery run evaluating a grid of schemes."""
    checked = _invariants_enabled()
    obs_fp = obs_fingerprint()
    key = recovery_key(
        protocol_name,
        population,
        settings,
        [s.name for s in schemes],
        replica=replica,
    )
    cached = _recovery_cache.get(key)
    if cached is not None:
        _cache_stats["recovery_hits"] += 1
        unit = _recovery_obs.get(key)
        if unit is not None:
            emit_unit(unit)
        return cached
    _cache_stats["recovery_misses"] += 1
    config = settings.config(population)
    if replica:
        config = config.with_seed(settings.seed + 1000 * replica)
    topology, oracle = shared_topology(config)
    sim = RecoverySimulation(
        config,
        protocol_factory(protocol_name),
        schemes,
        topology=topology,
        oracle=oracle,
        check_invariants=checked,
    )
    attachment = None
    if any(obs_fp):
        from ..obs.attach import ObsAttachment

        attachment = ObsAttachment(
            meta={
                "kind": "recovery",
                "protocol": protocol_name,
                "population": population,
                "seed": config.seed,
                "scale": settings.scale,
                "replica": replica,
            }
        ).attach(sim)
    result = sim.run()
    _recovery_cache[key] = result
    if attachment is not None:
        unit = attachment.finalize(result)
        _recovery_obs[key] = unit
        emit_unit(unit)
    return result


#: Lifetime of the Fig. 6/9 probe member.  A module constant because the
#: sweep-unit scheduler must compute a probe run's cache key *without*
#: materialising the probe session (which requires the topology).
DEFAULT_PROBE_LIFETIME_S = 300 * 60.0


def default_probe(settings: SweepSettings, population: int) -> Session:
    """The "typical member" of Figs 6 and 9: moderate bandwidth, a long
    (300-minute) life, joining once the network is in steady state."""
    config = settings.config(population)
    topology, _ = shared_topology(config)
    return make_probe_session(
        arrival_s=config.warmup_s,
        lifetime_s=DEFAULT_PROBE_LIFETIME_S,
        bandwidth=2.0,
        underlay_node=topology.stub_nodes[len(topology.stub_nodes) // 2],
    )


# -- sweep-unit scheduler hooks -----------------------------------------------------
#
# The two-phase pool plan (see ``pool.py``) executes each deduplicated
# simulation unit once in a worker, ships the exact payload back, and
# seeds the parent's run caches below before re-running the consuming
# figures in-process.  From the figures' perspective every churn_run /
# recovery_run call is then an ordinary cache hit — including the ObsUnit
# re-emission — which is what keeps merged artifacts byte-identical to a
# serial run.


def seed_churn_result(
    key: tuple, result: ChurnRunResult, obs_unit: Optional[ObsUnit] = None
) -> None:
    """Install a deserialized churn run under its cache key."""
    _churn_cache[key] = result
    if obs_unit is not None:
        _churn_obs[key] = obs_unit


def seed_recovery_result(
    key: tuple, result: RecoveryRunResult, obs_unit: Optional[ObsUnit] = None
) -> None:
    """Install a deserialized recovery run under its cache key."""
    _recovery_cache[key] = result
    if obs_unit is not None:
        _recovery_obs[key] = obs_unit


def captured_churn_obs(key: tuple) -> Optional[ObsUnit]:
    """The ObsUnit captured for a cached churn run (worker side)."""
    return _churn_obs.get(key)


def captured_recovery_obs(key: tuple) -> Optional[ObsUnit]:
    """The ObsUnit captured for a cached recovery run (worker side)."""
    return _recovery_obs.get(key)


def scaled_sizes(scale: float, sizes: Sequence[int] = PAPER_SIZES) -> Tuple[int, ...]:
    """The paper's size axis (populations are scaled inside paper_config)."""
    return tuple(sizes)

"""Figure 13: starving time ratio vs playback buffer size.

CER on a minimum-depth tree, group sizes 1..3, buffers 5..30 s.  The
paper's observation: one recovery node needs a ~27 s buffer to match what
two recovery nodes achieve with 5 s.
"""

from __future__ import annotations

from ..metrics.report import render_series_table
from ..recovery.schemes import cer_scheme
from .common import DEFAULT_SINGLE_SIZE, SweepSettings, recovery_run
from .registry import ExperimentResult, register
from .units import RecoveryUnit, declare_units

BUFFERS_S = (5.0, 10.0, 15.0, 20.0, 25.0, 30.0)
GROUP_SIZES = (1, 2, 3)


@declare_units("fig13")
def units(
    scale: float = 1.0, seed: int = 42, population: int = DEFAULT_SINGLE_SIZE, **_
):
    settings = SweepSettings(scale=scale, seed=seed)
    schemes = tuple(cer_scheme(k, buffer_s=b) for k in GROUP_SIZES for b in BUFFERS_S)
    return [RecoveryUnit("min-depth", population, settings, schemes)]


@register(
    "fig13",
    "Avg. starving time ratio (%) vs buffer size",
    "Figure 13",
)
def run(
    scale: float = 1.0,
    seed: int = 42,
    population: int = DEFAULT_SINGLE_SIZE,
    **_,
) -> ExperimentResult:
    settings = SweepSettings(scale=scale, seed=seed)
    schemes = [
        cer_scheme(k, buffer_s=b) for k in GROUP_SIZES for b in BUFFERS_S
    ]
    result = recovery_run("min-depth", population, settings, schemes)
    series = []
    for k in GROUP_SIZES:
        values = [
            result.ratio_pct(cer_scheme(k, buffer_s=b).name) for b in BUFFERS_S
        ]
        series.append((f"group={k}", values))
    table = render_series_table(
        f"Fig. 13 — avg starving time ratio %% vs buffer "
        f"(population {population}, scale {scale:g})",
        "buffer (s)",
        [int(b) for b in BUFFERS_S],
        series,
    )
    return ExperimentResult(
        experiment_id="fig13",
        title="Avg. starving time ratio vs buffer size",
        table=table,
        data={"buffers_s": list(BUFFERS_S), "series": dict(series)},
    )

"""Registered experiments around the fault-injection campaign subsystem.

``faults_scenario`` runs one (scenario, protocol, seed) unit — it is the
picklable job the campaign fans out over worker processes.
``faults_campaign`` runs a whole campaign spec (the built-in example by
default) and emits the merged resilience report; it also backs the
dedicated ``python -m repro.experiments faults_campaign`` subcommand.
"""

from __future__ import annotations

from typing import Optional

from ..faults.campaign import resolve_campaign, run_campaign, run_scenario
from ..metrics.report import render_table
from .registry import ExperimentResult, register


@register(
    "faults_scenario",
    "One fault-injection scenario run (scenario x protocol x seed unit)",
    "Extension",
)
def run_faults_scenario(
    scale: float = 1.0,
    seed: int = 42,
    spec=None,
    scenario: Optional[str] = None,
    protocol: Optional[str] = None,
    check_invariants: bool = False,
    **_,
) -> ExperimentResult:
    campaign = resolve_campaign(spec)
    scenario_name = scenario if scenario is not None else campaign.scenarios[0].name
    protocol_name = protocol if protocol is not None else campaign.protocols[0]
    data = run_scenario(
        campaign,
        scenario_name,
        protocol_name,
        seed=seed,
        scale=scale,
        check_invariants=check_invariants,
    )
    scheme_names = sorted(data["schemes"])
    table = render_table(
        f"Fault scenario {scenario_name!r} ({protocol_name}, seed {seed})",
        [
            "fault events",
            "MTTR s",
            "delivered",
            *[f"{name} success" for name in scheme_names],
        ],
        [
            [
                data["fault_disruption_events"],
                data["mttr_s"],
                data["delivered_data_ratio"],
                *[
                    data["schemes"][name]["repair_success_rate"]
                    for name in scheme_names
                ],
            ]
        ],
    )
    return ExperimentResult(
        experiment_id="faults_scenario",
        title=f"Fault scenario {scenario_name!r}",
        table=table,
        data=data,
    )


@register(
    "faults_campaign",
    "Fault-injection campaign: correlated-failure resilience report",
    "Extension",
)
def run_faults_campaign(
    scale: float = 1.0,
    seed: int = 42,
    spec=None,
    jobs: Optional[int] = 1,
    job_timeout: Optional[float] = None,
    check_invariants: bool = False,
    **_,
) -> ExperimentResult:
    campaign = resolve_campaign(spec)
    report = run_campaign(
        campaign,
        scale=scale,
        seed=seed,
        jobs=jobs,
        timeout_s=job_timeout,
        check_invariants=check_invariants,
    )
    return ExperimentResult(
        experiment_id="faults_campaign",
        title=f"Fault campaign {campaign.name!r}",
        table=report.table,
        data=report.data,
        # The campaign fans its own jobs out (each under a nested
        # capture), so the merged artifacts ride the report, not the
        # ambient capture — forward them onto the experiment result.
        artifacts=dict(report.artifacts),
    )

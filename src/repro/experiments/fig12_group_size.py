"""Figure 12: average starving time ratio vs recovery group size.

Minimum-depth trees with the CER protocol; recovery group sizes 1..4
across network sizes.  A group of 3 cuts the starving time by an order of
magnitude relative to a single recovery node.
"""

from __future__ import annotations

from ..metrics.report import render_series_table
from ..recovery.schemes import cer_scheme
from .common import PAPER_SIZES, SweepSettings, recovery_run
from .registry import ExperimentResult, register
from .units import RecoveryUnit, declare_units

GROUP_SIZES = (1, 2, 3, 4)


@declare_units("fig12")
def units(scale: float = 1.0, seed: int = 42, sizes=PAPER_SIZES, **_):
    settings = SweepSettings(scale=scale, seed=seed)
    schemes = tuple(cer_scheme(k) for k in GROUP_SIZES)
    return [RecoveryUnit("min-depth", size, settings, schemes) for size in sizes]


@register(
    "fig12",
    "Avg. starving time ratio (%) vs recovery group size",
    "Figure 12",
)
def run(scale: float = 1.0, seed: int = 42, sizes=PAPER_SIZES, **_) -> ExperimentResult:
    settings = SweepSettings(scale=scale, seed=seed)
    schemes = [cer_scheme(k) for k in GROUP_SIZES]
    series = {k: [] for k in GROUP_SIZES}
    for size in sizes:
        result = recovery_run("min-depth", size, settings, schemes)
        for k, scheme in zip(GROUP_SIZES, schemes):
            series[k].append(result.ratio_pct(scheme.name))
    table = render_series_table(
        f"Fig. 12 — avg starving time ratio %% by CER group size "
        f"(min-depth tree, scale {scale:g})",
        "size",
        list(sizes),
        [(f"group={k}", series[k]) for k in GROUP_SIZES],
    )
    return ExperimentResult(
        experiment_id="fig12",
        title="Avg. starving time ratio vs recovery group size",
        table=table,
        data={"sizes": list(sizes), "series": {str(k): v for k, v in series.items()}},
    )

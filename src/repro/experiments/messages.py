"""Control-plane message accounting across protocols (extension).

The paper prices protocol overhead in reconnections (Fig. 10); this
experiment additionally reports the control messages behind the same runs
— join/accept traffic, BTP queries, lock rounds, switch commits and
referee maintenance — normalised per member session.  ROST's referee
heartbeats are counted analytically (constant-rate background traffic).
"""

from __future__ import annotations

from ..metrics.report import render_table
from ..overlay.messages import MessageType
from .common import DEFAULT_SINGLE_SIZE, PROTOCOL_ORDER, SweepSettings, churn_run
from .registry import ExperimentResult, register

#: Message categories shown as columns (others are summed into "other").
COLUMNS = (
    MessageType.JOIN,
    MessageType.ACCEPT,
    MessageType.REJECT,
    MessageType.BTP_QUERY,
    MessageType.LOCK_REQUEST,
    MessageType.SWITCH_COMMIT,
    MessageType.REFEREE_ASSIGN,
    MessageType.REFEREE_QUERY,
)


from .units import ChurnUnit, declare_units


@declare_units("control-messages")
def units(
    scale: float = 1.0, seed: int = 42, population: int = DEFAULT_SINGLE_SIZE, **_
):
    settings = SweepSettings(scale=scale, seed=seed)
    return [ChurnUnit(protocol, population, settings) for protocol in PROTOCOL_ORDER]


@register(
    "control-messages",
    "Control messages per member session, by protocol",
    "Extension",
)
def run(
    scale: float = 1.0,
    seed: int = 42,
    population: int = DEFAULT_SINGLE_SIZE,
    **_,
) -> ExperimentResult:
    settings = SweepSettings(scale=scale, seed=seed)
    rows = []
    data = {}
    for protocol in PROTOCOL_ORDER:
        result = churn_run(protocol, population, settings)
        sessions = max(1, result.sessions_total)
        counts = result.messages.counts
        shown = {mt: counts[mt] / sessions for mt in COLUMNS}
        other = (
            sum(counts.values()) - sum(counts[mt] for mt in COLUMNS)
        ) / sessions
        rows.append(
            [protocol, *[shown[mt] for mt in COLUMNS], other,
             result.messages.total / sessions]
        )
        data[protocol] = {
            **{mt.value: shown[mt] for mt in COLUMNS},
            "other": other,
            "total": result.messages.total / sessions,
        }
    table = render_table(
        f"Control messages per member session "
        f"(population {population}, scale {scale:g})",
        ["protocol", *[mt.value for mt in COLUMNS], "other", "total"],
        rows,
        precision=2,
    )
    return ExperimentResult(
        experiment_id="control-messages",
        title="Control messages per member session",
        table=table,
        data=data,
    )

"""Figure 11: effect of the ROST switching interval.

Four sub-figures on an 8000-member network with switching intervals from
480 s to 1800 s: disruptions, service delay, stretch and protocol
overhead.  Smaller intervals adjust the overlay more aggressively —
better reliability and quality at (slightly) more reconnections.
"""

from __future__ import annotations

from ..metrics.report import render_series_table
from .common import DEFAULT_SINGLE_SIZE, SweepSettings, churn_run
from .registry import ExperimentResult, register
from .units import ChurnUnit, declare_units

INTERVALS_S = (480.0, 960.0, 1200.0, 1800.0)


@declare_units("fig11")
def units(
    scale: float = 1.0,
    seed: int = 42,
    population: int = DEFAULT_SINGLE_SIZE,
    intervals=INTERVALS_S,
    **_,
):
    settings = SweepSettings(scale=scale, seed=seed)
    return [
        ChurnUnit("rost", population, settings, switch_interval_s=interval)
        for interval in intervals
    ]


@register(
    "fig11",
    "Effect of the ROST switching interval (four metrics)",
    "Figure 11",
)
def run(
    scale: float = 1.0,
    seed: int = 42,
    population: int = DEFAULT_SINGLE_SIZE,
    intervals=INTERVALS_S,
    **_,
) -> ExperimentResult:
    settings = SweepSettings(scale=scale, seed=seed)
    rows = {
        "disruptions/node": [],
        "service delay (ms)": [],
        "stretch": [],
        "reconnections/node": [],
    }
    for interval in intervals:
        result = churn_run("rost", population, settings, switch_interval_s=interval)
        rows["disruptions/node"].append(result.avg_disruptions_per_node)
        rows["service delay (ms)"].append(result.avg_service_delay_ms)
        rows["stretch"].append(result.avg_stretch)
        rows["reconnections/node"].append(result.avg_optimization_reconnections)
    table = render_series_table(
        f"Fig. 11 — ROST vs switching interval "
        f"(population {population}, scale {scale:g})",
        "interval (s)",
        [int(i) for i in intervals],
        list(rows.items()),
    )
    return ExperimentResult(
        experiment_id="fig11",
        title="Effect of the ROST switching interval",
        table=table,
        data={"intervals_s": list(intervals), "series": rows},
    )

"""Figure 14: the combined system — ROST+CER vs MinDepth+SingleSource.

For recovery group sizes 1..3 and several seeds, compare the full
proposed system (ROST tree, CER striped repair from an MLC group) against
the conventional one (minimum-depth tree, one recovery source at a time).
The paper reports an 8-9x reduction in starving time with 95% confidence
intervals; even ROST+CER with one recovery node beats the baseline with
two.
"""

from __future__ import annotations

from ..metrics.report import render_table
from ..metrics.stats import mean_and_ci
from ..recovery.schemes import cer_scheme, single_source_scheme
from .common import DEFAULT_SINGLE_SIZE, SweepSettings, recovery_run
from .registry import ExperimentResult, register
from .units import RecoveryUnit, declare_units

GROUP_SIZES = (1, 2, 3)


@declare_units("fig14")
def units(
    scale: float = 1.0,
    seed: int = 42,
    population: int = DEFAULT_SINGLE_SIZE,
    replicas: int = 3,
    **_,
):
    settings = SweepSettings(scale=scale, seed=seed)
    cer_schemes = tuple(cer_scheme(k) for k in GROUP_SIZES)
    ss_schemes = tuple(single_source_scheme(k) for k in GROUP_SIZES)
    out = []
    for replica in range(replicas):
        out.append(
            RecoveryUnit("rost", population, settings, cer_schemes, replica=replica)
        )
        out.append(
            RecoveryUnit(
                "min-depth", population, settings, ss_schemes, replica=replica
            )
        )
    return out


@register(
    "fig14",
    "ROST+CER vs MinDepth+SingleSource (95% CI)",
    "Figure 14",
)
def run(
    scale: float = 1.0,
    seed: int = 42,
    population: int = DEFAULT_SINGLE_SIZE,
    replicas: int = 3,
    **_,
) -> ExperimentResult:
    settings = SweepSettings(scale=scale, seed=seed)
    cer_schemes = [cer_scheme(k) for k in GROUP_SIZES]
    ss_schemes = [single_source_scheme(k) for k in GROUP_SIZES]

    samples = {("rost+cer", k): [] for k in GROUP_SIZES}
    samples.update({("mindepth+ss", k): [] for k in GROUP_SIZES})
    for replica in range(replicas):
        rost = recovery_run("rost", population, settings, cer_schemes, replica=replica)
        base = recovery_run(
            "min-depth", population, settings, ss_schemes, replica=replica
        )
        for k, scheme in zip(GROUP_SIZES, cer_schemes):
            samples[("rost+cer", k)].append(rost.ratio_pct(scheme.name))
        for k, scheme in zip(GROUP_SIZES, ss_schemes):
            samples[("mindepth+ss", k)].append(base.ratio_pct(scheme.name))

    rows = []
    data = {}
    for k in GROUP_SIZES:
        base_mean, base_ci = mean_and_ci(samples[("mindepth+ss", k)])
        rost_mean, rost_ci = mean_and_ci(samples[("rost+cer", k)])
        improvement = base_mean / rost_mean if rost_mean > 0 else float("inf")
        rows.append([k, base_mean, base_ci, rost_mean, rost_ci, improvement])
        data[str(k)] = {
            "mindepth_ss": (base_mean, base_ci),
            "rost_cer": (rost_mean, rost_ci),
            "improvement_x": improvement,
        }
    table = render_table(
        f"Fig. 14 — avg starving time ratio %% with 95% CI "
        f"(population {population}, scale {scale:g}, {replicas} replicas)",
        ["group", "mindepth+ss", "+/-", "rost+cer", "+/-", "improvement x"],
        rows,
    )
    return ExperimentResult(
        experiment_id="fig14",
        title="ROST+CER vs MinDepth+SingleSource",
        table=table,
        data=data,
    )

"""Experiment registry: ids, metadata, and result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List


@dataclass
class ExperimentResult:
    """What one experiment run produces."""

    experiment_id: str
    title: str
    #: Formatted text table(s) in the shape of the paper's figure.
    table: str
    #: Raw series keyed by a descriptive name.
    data: Dict[str, object] = field(default_factory=dict)
    #: Observability payloads captured while the experiment ran (keys
    #: ``trace`` / ``metrics`` / ``profile``, see :mod:`repro.obs`).
    #: Populated by the pool chokepoint, merged by the runner in
    #: submission order; empty unless an obs channel is enabled.
    artifacts: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.table

    # -- durable-store round-trip ------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON-ready form stored by :mod:`repro.store` (and replayed by
        ``--resume``).  ``table`` is carried verbatim and ``data`` /
        ``artifacts`` are JSON-clean by convention (the runner's
        ``--json`` output already relies on that), so a replayed result
        renders byte-identically to the original."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "table": self.table,
            "data": self.data,
            "artifacts": self.artifacts,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ExperimentResult":
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            table=payload["table"],
            data=payload.get("data", {}),
            artifacts=payload.get("artifacts", {}),
        )


@dataclass(frozen=True)
class Experiment:
    """A registered, runnable reproduction of one paper artifact."""

    experiment_id: str
    title: str
    paper_artifact: str
    run: Callable[..., ExperimentResult]

    def __call__(self, **kwargs) -> ExperimentResult:
        return self.run(**kwargs)


REGISTRY: Dict[str, Experiment] = {}


def register(experiment_id: str, title: str, paper_artifact: str):
    """Decorator registering ``run(scale=..., seed=..., **kw)`` callables."""

    def decorate(func):
        if experiment_id in REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        REGISTRY[experiment_id] = Experiment(
            experiment_id=experiment_id,
            title=title,
            paper_artifact=paper_artifact,
            run=func,
        )
        return func

    return decorate


def get_experiment(experiment_id: str) -> Experiment:
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        ) from None


def list_experiments() -> List[Experiment]:
    return [REGISTRY[k] for k in sorted(REGISTRY)]


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Resolve ``experiment_id`` and run it.

    This is the module-level, picklable entry point worker processes use
    (:mod:`repro.experiments.pool`): a bound ``Experiment.run`` closure
    cannot cross a process boundary, but ``(id, kwargs)`` can.  Importing
    the package populates the registry under spawn-based executors too.
    """
    from . import get_experiment as _get  # noqa: F401  (registers experiments)

    return get_experiment(experiment_id).run(**kwargs)

"""Figure 6: cumulative disruptions of a typical member over time.

A probe with moderate bandwidth and a 300-minute lifetime joins an
8000-node network after it reaches steady state.  Under ROST the slope
flattens as the member ages (it earns a higher, more sheltered position);
under the time-blind algorithms it stays linear.
"""

from __future__ import annotations

from typing import List

from ..metrics.collectors import TimeSeries
from ..metrics.report import render_series_table
from .common import (
    DEFAULT_SINGLE_SIZE,
    PROTOCOL_ORDER,
    SweepSettings,
    churn_run,
    default_probe,
)
from .registry import ExperimentResult, register
from .units import DEFAULT_PROBE, ChurnUnit, declare_units

#: Minute marks matching the paper's x-axis (0..300 in ~33-minute steps).
SAMPLE_MINUTES = tuple(round(i * 100 / 3) for i in range(10))


def probe_units(scale: float, seed: int, population: int):
    """The probe churn runs Figs 6 and 9 both read (one per protocol)."""
    settings = probe_settings(scale, seed)
    return [
        ChurnUnit(protocol, population, settings, probe=DEFAULT_PROBE)
        for protocol in PROTOCOL_ORDER
    ]


@declare_units("fig06")
def units(
    scale: float = 1.0, seed: int = 42, population: int = DEFAULT_SINGLE_SIZE, **_
):
    return probe_units(scale, seed, population)


def probe_settings(scale: float, seed: int) -> SweepSettings:
    """The probe lives 300 minutes, so the measurement window must span
    ~10 mean lifetimes beyond warm-up."""
    return SweepSettings(scale=scale, seed=seed, measure_lifetimes=10.5)


def series_at_minutes(series: TimeSeries, start_s: float, minutes) -> List[float]:
    """Step-sample a cumulative series at minute offsets from ``start_s``."""
    values = []
    current = 0.0
    index = 0
    for minute in minutes:
        t = start_s + minute * 60.0
        while index < len(series) and series.times[index] <= t:
            current = series.values[index]
            index += 1
        values.append(current)
    return values


@register(
    "fig06",
    "Cumulative disruptions of a typical member over time",
    "Figure 6",
)
def run(
    scale: float = 1.0,
    seed: int = 42,
    population: int = DEFAULT_SINGLE_SIZE,
    **_,
) -> ExperimentResult:
    settings = probe_settings(scale, seed)
    probe = default_probe(settings, population)
    series = []
    for protocol in PROTOCOL_ORDER:
        result = churn_run(protocol, population, settings, probe=probe)
        assert result.probe_disruptions is not None
        values = series_at_minutes(
            result.probe_disruptions, probe.arrival_s, SAMPLE_MINUTES
        )
        series.append((protocol, values))
    table = render_series_table(
        f"Fig. 6 — cumulative disruptions of the typical member "
        f"(population {population}, scale {scale:g})",
        "minute",
        list(SAMPLE_MINUTES),
        series,
        precision=0,
    )
    return ExperimentResult(
        experiment_id="fig06",
        title="Cumulative disruptions of a typical member over time",
        table=table,
        data={"minutes": list(SAMPLE_MINUTES), "series": dict(series)},
    )

"""Figure 9: service delay of the typical member over time.

Under ROST (and relaxed TO) the probe's delay shrinks as it ascends the
tree; under the time-blind algorithms it fluctuates without converging.
Sampled on the same probe runs as Figure 6.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..metrics.collectors import TimeSeries
from ..metrics.report import render_series_table
from .common import DEFAULT_SINGLE_SIZE, PROTOCOL_ORDER, churn_run, default_probe
from .fig06_member_disruptions import SAMPLE_MINUTES, probe_settings, probe_units
from .units import declare_units


@declare_units("fig09")
def units(
    scale: float = 1.0, seed: int = 42, population: int = DEFAULT_SINGLE_SIZE, **_
):
    return probe_units(scale, seed, population)
from .registry import ExperimentResult, register


def window_average(
    series: TimeSeries, start_s: float, minutes, half_window_min: float = 16.0
) -> List[float]:
    """Average the sampled delay in a window around each minute mark."""
    times = np.asarray(series.times)
    values = np.asarray(series.values)
    output = []
    for minute in minutes:
        center = start_s + minute * 60.0
        mask = np.abs(times - center) <= half_window_min * 60.0
        output.append(float(values[mask].mean()) if mask.any() else float("nan"))
    return output


@register(
    "fig09",
    "Service delay of a typical member over time",
    "Figure 9",
)
def run(
    scale: float = 1.0,
    seed: int = 42,
    population: int = DEFAULT_SINGLE_SIZE,
    **_,
) -> ExperimentResult:
    settings = probe_settings(scale, seed)
    probe = default_probe(settings, population)
    series = []
    for protocol in PROTOCOL_ORDER:
        result = churn_run(protocol, population, settings, probe=probe)
        assert result.probe_delay_ms is not None
        values = window_average(result.probe_delay_ms, probe.arrival_s, SAMPLE_MINUTES)
        series.append((protocol, values))
    table = render_series_table(
        f"Fig. 9 — typical member's service delay in ms "
        f"(population {population}, scale {scale:g})",
        "minute",
        list(SAMPLE_MINUTES),
        series,
        precision=0,
    )
    return ExperimentResult(
        experiment_id="fig09",
        title="Service delay of a typical member over time",
        table=table,
        data={"minutes": list(SAMPLE_MINUTES), "series": dict(series)},
    )

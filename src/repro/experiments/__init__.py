"""Experiment harness: one module per figure of the paper's evaluation.

Every experiment can be run at paper scale (``scale=1.0``) or scaled down
(populations and underlay shrink together), prints its figure as an
aligned text table and returns the raw series.  Run from the command
line::

    python -m repro.experiments list
    python -m repro.experiments run fig04 --scale 0.1
    python -m repro.experiments all --scale 0.05

Results for shared sweeps (e.g. Figs 4/7/8/10 reuse the same churn runs)
are cached in-process, so ``all`` costs far less than the sum of its
parts.
"""

from .registry import REGISTRY, ExperimentResult, get_experiment, list_experiments

# Importing the figure modules registers them.
from . import (  # noqa: F401  (import-for-side-effect)
    ablations,
    fig04_disruptions,
    fig05_cdf,
    fig06_member_disruptions,
    fig07_delay,
    fig08_stretch,
    fig09_member_delay,
    fig10_overhead,
    fig11_switch_interval,
    fig12_group_size,
    fig13_buffer,
    fig14_rost_cer,
    faults_campaign,
    messages,
    multitree_campaign,
    multitree_ext,
    rescue_ext,
)

__all__ = [
    "REGISTRY",
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
]

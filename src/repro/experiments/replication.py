"""Multi-seed replication of experiments.

Single-seed figures inherit the run's sampling noise; replication runs an
experiment across seeds and merges the per-seed series into mean ± 95% CI
tables.  Works for any experiment whose ``data`` contains a ``series``
mapping of equal-length numeric lists (all the sweep figures); other
experiments (e.g. fig14, which already aggregates replicas internally)
are reported per seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..metrics.report import render_table
from ..metrics.stats import mean_and_ci
from .pool import ExperimentJob, run_jobs
from .registry import ExperimentResult, get_experiment


@dataclass
class ReplicatedResult:
    """Per-seed results plus the merged summary (when mergeable)."""

    experiment_id: str
    seeds: List[int]
    replicas: List[ExperimentResult]
    summary_table: Optional[str]
    #: series name -> {"mean": [...], "ci95": [...]}
    summary: Dict[str, Dict[str, List[float]]]

    def __str__(self) -> str:
        if self.summary_table is not None:
            return self.summary_table
        return "\n\n".join(r.table for r in self.replicas)


def _mergeable_series(replicas: Sequence[ExperimentResult]) -> Optional[dict]:
    """The common ``series`` structure, or None if shapes disagree."""
    shapes = []
    for result in replicas:
        series = result.data.get("series")
        if not isinstance(series, dict) or not series:
            return None
        try:
            shape = {name: len(values) for name, values in series.items()}
            for values in series.values():
                [float(v) for v in values]
        except (TypeError, ValueError):
            return None
        shapes.append(shape)
    if any(shape != shapes[0] for shape in shapes[1:]):
        return None
    return shapes[0]


def replicate(
    experiment_id: str,
    seeds: Sequence[int],
    scale: float = 1.0,
    jobs: int = 1,
    **kwargs,
) -> ReplicatedResult:
    """Run ``experiment_id`` once per seed and merge the series.

    ``jobs > 1`` fans the per-seed runs out over a worker-process pool
    (:mod:`repro.experiments.pool`); the merge is order-preserving, so the
    result is byte-identical to a serial run.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    get_experiment(experiment_id)  # fail fast on unknown ids
    replicas = run_jobs(
        [
            ExperimentJob.make(experiment_id, scale=scale, seed=int(seed), **kwargs)
            for seed in seeds
        ],
        parallel_jobs=jobs,
    )
    return merge_replicas(experiment_id, seeds, replicas)


def merge_replicas(
    experiment_id: str,
    seeds: Sequence[int],
    replicas: Sequence[ExperimentResult],
) -> ReplicatedResult:
    """Merge per-seed results (ordered like ``seeds``) into mean ± CI."""
    replicas = list(replicas)
    shape = _mergeable_series(replicas)
    if shape is None or len(replicas) < 2:
        return ReplicatedResult(
            experiment_id=experiment_id,
            seeds=list(seeds),
            replicas=replicas,
            summary_table=None,
            summary={},
        )

    summary: Dict[str, Dict[str, List[float]]] = {}
    rows = []
    for name, length in shape.items():
        stacked = np.array(
            [[float(v) for v in r.data["series"][name]] for r in replicas]
        )
        means, cis = [], []
        for column in range(length):
            mean, ci = mean_and_ci(stacked[:, column])
            means.append(mean)
            cis.append(ci)
        summary[name] = {"mean": means, "ci95": cis}
        rows.append([name, *[f"{m:.3f}±{c:.3f}" for m, c in zip(means, cis)]])

    x_axis = _x_axis_label(replicas[0])
    header = ["series", *[str(x) for x in _x_axis_values(replicas[0], length)]]
    table = render_table(
        f"{replicas[0].title} — mean ± 95% CI over {len(seeds)} seeds "
        f"(x axis: {x_axis})",
        header,
        rows,
    )
    return ReplicatedResult(
        experiment_id=experiment_id,
        seeds=list(seeds),
        replicas=replicas,
        summary_table=table,
        summary=summary,
    )


def _x_axis_label(result: ExperimentResult) -> str:
    for key in ("sizes", "minutes", "intervals_s", "thresholds", "buffers_s"):
        if key in result.data:
            return key
    return "index"


def _x_axis_values(result: ExperimentResult, length: int):
    for key in ("sizes", "minutes", "intervals_s", "thresholds", "buffers_s"):
        if key in result.data:
            return result.data[key]
    return list(range(length))

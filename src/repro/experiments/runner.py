"""Command-line interface for the experiment harness.

Examples::

    python -m repro.experiments list
    python -m repro.experiments run fig04 --scale 0.1 --seed 7
    python -m repro.experiments all --scale 0.05 --out results.txt
    python -m repro.experiments all --scale 0.1 --replicas 4 --jobs 8

``--jobs N`` fans independent (experiment × seed) simulations out over N
worker processes (default: one per CPU); results are merged in
deterministic order, so the emitted tables are byte-identical to a
``--jobs 1`` run.  Output files (``--out``, ``--json``) are written
atomically — a crashed or killed run never leaves a truncated file.

``--store DIR`` additionally checkpoints every completed unit into a
durable run store (``docs/store.md``), and ``--resume`` replays the
units a previous — possibly killed — invocation already finished, so
only the missing work re-executes and the final report/trace is
byte-identical to an uninterrupted run at any ``--jobs`` value.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import List, Optional

from .pool import ExperimentJob, resolve_jobs, run_jobs
from .registry import get_experiment, list_experiments


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of the DSN'06 ROST/CER paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all registered experiments")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id", help="e.g. fig04")
    _add_run_arguments(run)

    everything = sub.add_parser("all", help="run every experiment")
    _add_run_arguments(everything)

    faults = sub.add_parser(
        "faults_campaign",
        help="run a fault-injection campaign (see docs/faults.md)",
    )
    faults.add_argument(
        "spec_path",
        nargs="?",
        default=None,
        metavar="spec",
        help="campaign spec file (.json or .toml) or inline JSON object "
        "(default: the built-in stub-outage example campaign)",
    )
    faults.add_argument(
        "--spec",
        type=str,
        default=None,
        help="alternative to the positional spec argument",
    )
    faults.add_argument("--scale", type=float, default=1.0)
    faults.add_argument("--seed", type=int, default=42)
    faults.add_argument(
        "--check-invariants",
        action="store_true",
        help="run every unit under the runtime invariant checker "
        "(see docs/invariants.md); violations are reported in the "
        "summary and make the command exit non-zero",
    )
    faults.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the (scenario x protocol x seed) grid; "
        "reports are byte-identical at any value",
    )
    faults.add_argument("--job-timeout", type=float, default=None)
    faults.add_argument("--out", type=str, default=None)
    faults.add_argument("--json", type=str, default=None)
    _add_validate_argument(faults)
    _add_obs_arguments(faults)
    _add_store_arguments(faults)

    multitree = sub.add_parser(
        "multitree_campaign",
        help="run a K-tree resilience campaign (see docs/multitree.md)",
    )
    multitree.add_argument(
        "spec_path",
        nargs="?",
        default=None,
        metavar="spec",
        help="campaign spec file (.json or .toml) or inline JSON object "
        "(default: the built-in K-tree resilience grid)",
    )
    multitree.add_argument(
        "--spec",
        type=str,
        default=None,
        help="alternative to the positional spec argument",
    )
    multitree.add_argument("--scale", type=float, default=1.0)
    multitree.add_argument("--seed", type=int, default=42)
    multitree.add_argument(
        "--check-invariants",
        action="store_true",
        help="run every stripe simulation under the non-strict runtime "
        "invariant checker; violations are reported in the summary and "
        "make the command exit non-zero",
    )
    multitree.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the (scenario x protocol x K x seed) "
        "grid; reports are byte-identical at any value",
    )
    multitree.add_argument("--job-timeout", type=float, default=None)
    multitree.add_argument("--out", type=str, default=None)
    multitree.add_argument("--json", type=str, default=None)
    _add_validate_argument(multitree)
    _add_obs_arguments(multitree)
    _add_store_arguments(multitree)
    return parser


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="population/underlay scale factor (1.0 = paper scale)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="run each experiment over this many consecutive seeds and "
        "report mean +/- 95%% CI where the series are mergeable",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for independent (experiment x seed) runs "
        "(default: $REPRO_JOBS or the CPU count; 1 = fully in-process)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="per-job wall-clock limit in seconds when running with worker "
        "processes; a timed-out job is retried once in-process",
    )
    parser.add_argument(
        "--out", type=str, default=None, help="also append tables to this file"
    )
    parser.add_argument(
        "--json", type=str, default=None, help="dump raw data as JSON to this file"
    )
    parser.add_argument(
        "--svg",
        type=str,
        default=None,
        help="directory to write one SVG chart per experiment with series data",
    )
    parser.add_argument(
        "--check-invariants",
        action="store_true",
        help="run every simulation under the strict runtime invariant "
        "checker (see docs/invariants.md); the first violation aborts",
    )
    _add_validate_argument(parser)
    _add_obs_arguments(parser)
    _add_store_arguments(parser)


def _add_validate_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--validate",
        type=str,
        default=None,
        metavar="BASELINE_DIR",
        help="after the run, gate the registered experiments against the "
        "golden baselines in this directory (see docs/validation.md); a "
        "failing gate makes the command exit non-zero and, with --json, "
        "embeds the structured report under '_validate'",
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help="write a JSONL trace of every observed run to PATH "
        "(see docs/observability.md); byte-identical at any --jobs value",
    )
    parser.add_argument(
        "--trace-events",
        action="store_true",
        help="include one trace record per dispatched engine event "
        "(high volume; implies --trace semantics for record content)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect per-subsystem metrics registries and report their "
        "aggregated totals (also exported under _obs_metrics in --json)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="attribute wall time per event type and pool stage; printed "
        "as a report section (never written into the trace or JSON)",
    )


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="DIR",
        help="checkpoint every completed unit into this durable run store "
        "(see docs/store.md); defaults to $REPRO_STORE_DIR when set",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay units the store's ledger already has instead of "
        "re-executing them; the final report is byte-identical to an "
        "uninterrupted run (requires --store or $REPRO_STORE_DIR)",
    )


def _atomic_write(path: str, content: str) -> None:
    """Write ``content`` to ``path`` via a temp file + rename.

    Readers either see the previous complete version or the new complete
    version — never a truncated file, even if the process dies mid-write.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".repro-out-")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(content)
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)


class _Emitter:
    """Prints to stdout and mirrors the text into ``out_path`` atomically.

    Append semantics are preserved (an existing file's content is kept as
    the prefix), but every flush rewrites the whole file through a
    temp-file + rename, so a crashed run cannot leave a truncated table.
    """

    def __init__(self, out_path: Optional[str]):
        self._path = out_path
        self._content = ""
        #: Text emitted by this invocation only (no pre-existing --out
        #: prefix); the durable run store records it as the run's report.
        self.session_content = ""
        if out_path and os.path.exists(out_path):
            with open(out_path) as handle:
                self._content = handle.read()

    def emit(self, text: str) -> None:
        print(text)
        self.session_content += text + "\n"
        if self._path:
            self._content += text + "\n"
            _atomic_write(self._path, self._content)


def _emit(text: str, out_path: Optional[str]) -> None:
    """One-shot emit kept for backward compatibility (tests, scripts)."""
    _Emitter(out_path).emit(text)


def _iter_results(batch: List[ExperimentJob], jobs: int, timeout_s):
    """Yield results in submission order.

    With ``jobs == 1`` this lazily executes each job right before yielding
    it, so a long serial run emits tables progressively (and pdb/coverage
    see plain in-process calls); with ``jobs > 1`` the whole batch is
    fanned out first and the completed results replayed in order.
    """
    if jobs == 1:
        for job in batch:
            yield run_jobs([job], parallel_jobs=1)[0]
    else:
        yield from run_jobs(batch, parallel_jobs=jobs, timeout_s=timeout_s)


class _ArtifactCollector:
    """Merges per-result obs artifacts in submission order."""

    def __init__(self) -> None:
        self.trace_lines: List[str] = []
        self.metrics_units: List[dict] = []
        self.profile_units: List[dict] = []

    def collect(self, result) -> None:
        artifacts = getattr(result, "artifacts", None) or {}
        self.trace_lines.extend(artifacts.get("trace", []))
        self.metrics_units.extend(artifacts.get("metrics", []))
        self.profile_units.extend(artifacts.get("profile", []))

    def emit_sections(self, args, emitter: _Emitter, json_data: dict) -> None:
        """Write the trace file and print metrics/profile sections.

        The trace and metrics outputs are deterministic; the profile
        section carries wall times, so it goes to stdout/--out only and
        never into --json or the trace.
        """
        if getattr(args, "trace", None):
            from ..obs.trace import write_trace_lines

            write_trace_lines(args.trace, self.trace_lines)
            emitter.emit(
                f"[trace: {len(self.trace_lines)} records -> {args.trace}]"
            )
        if getattr(args, "metrics", False):
            from ..obs.metrics import aggregate_units, render_metrics_section

            totals = aggregate_units(self.metrics_units)
            emitter.emit(render_metrics_section(totals))
            json_data["_obs_metrics"] = totals
        if getattr(args, "profile", False):
            from ..obs.profile import drain_stages, render_profile_section

            emitter.emit(
                render_profile_section(self.profile_units, drain_stages())
            )


class _StoreRunRecorder:
    """Links one CLI invocation to the durable run store (if active).

    Snapshots the ledger's aggregate counters up front so the
    replayed/executed split it reports covers exactly this invocation's
    units — including units recorded by nested campaign fan-out.  The
    summary goes to stderr: stdout and ``--out`` must stay byte-identical
    between resumed and uninterrupted runs.
    """

    def __init__(self) -> None:
        from ..store.runstore import active_store

        self.store = active_store()
        self._before = (
            self.store.ledger.totals() if self.store is not None else None
        )

    def finish(
        self,
        name: str,
        command: str,
        params: dict,
        report_text: Optional[str],
        json_data: Optional[dict],
    ) -> None:
        if self.store is None:
            return
        after = self.store.ledger.totals()
        executed = after["executions"] - self._before["executions"]
        replayed = after["hits"] - self._before["hits"]
        run_id = self.store.record_run(
            name=name,
            command=command,
            params=params,
            report_text=report_text,
            json_data=json_data,
            units_total=executed + replayed,
            units_replayed=replayed,
        )
        print(
            f"[store] run #{run_id}: {replayed} unit(s) replayed, "
            f"{executed} executed -> {self.store.root}",
            file=sys.stderr,
        )


def _run_validation(args, emitter: _Emitter, json_data: dict) -> bool:
    """Gate the run against golden baselines (the ``--validate`` flag).

    Runs through the same ``execute_job`` chokepoint as the experiments
    themselves, so an active run store records (or replays) the gate's
    units too.  Emits the human-readable verdicts, embeds the structured
    report under ``_validate`` in the ``--json`` payload, and returns
    whether every gate passed.
    """
    if not getattr(args, "validate", None):
        return True
    from ..validate.baseline import load_baseline_dir
    from ..validate.gate import run_gates

    report = run_gates(
        load_baseline_dir(args.validate),
        baseline_dir=args.validate,
        jobs=resolve_jobs(getattr(args, "jobs", None)),
    )
    emitter.emit(report.render_text())
    json_data["_validate"] = report.to_payload()
    return report.passed


def _run_ids(ids: List[str], args) -> int:
    jobs = resolve_jobs(args.jobs)
    recorder = _StoreRunRecorder()
    emitter = _Emitter(args.out)
    json_data = {}
    collector = _ArtifactCollector()
    segment_started = time.time()
    if args.replicas > 1:
        from .replication import merge_replicas

        seeds = list(range(args.seed, args.seed + args.replicas))
        batch = [
            ExperimentJob.make(experiment_id, scale=args.scale, seed=seed)
            for experiment_id in ids
            for seed in seeds
        ]
        results = _iter_results(batch, jobs, args.job_timeout)
        for experiment_id in ids:
            replicas = []
            for _ in seeds:
                result = next(results)
                collector.collect(result)
                replicas.append(result)
            replicated = merge_replicas(experiment_id, seeds, replicas)
            emitter.emit(str(replicated))
            json_data[experiment_id] = {
                "seeds": replicated.seeds,
                "summary": replicated.summary,
                "replicas": [r.data for r in replicated.replicas],
            }
            elapsed = time.time() - segment_started
            segment_started = time.time()
            emitter.emit(f"[{experiment_id} finished in {elapsed:.1f}s]\n")
    else:
        batch = [
            ExperimentJob.make(experiment_id, scale=args.scale, seed=args.seed)
            for experiment_id in ids
        ]
        results = _iter_results(batch, jobs, args.job_timeout)
        for experiment_id, result in zip(ids, results):
            collector.collect(result)
            emitter.emit(result.table)
            json_data[experiment_id] = result.data
            if args.svg:
                _write_svg(result, args.svg)
            elapsed = time.time() - segment_started
            segment_started = time.time()
            emitter.emit(f"[{experiment_id} finished in {elapsed:.1f}s]\n")
    collector.emit_sections(args, emitter, json_data)
    validated = _run_validation(args, emitter, json_data)
    if args.json:
        _atomic_write(
            args.json, json.dumps(json_data, indent=2, default=str)
        )
    recorder.finish(
        name=args.command if args.command == "all" else f"run {ids[0]}",
        command=f"repro.experiments {args.command}",
        params={
            "experiments": ids,
            "scale": args.scale,
            "seed": args.seed,
            "replicas": args.replicas,
            "jobs": jobs,
        },
        report_text=emitter.session_content,
        json_data=json_data,
    )
    return 0 if validated else 1


def _write_svg(result, directory: str) -> None:
    from ..metrics.svgplot import experiment_chart

    try:
        chart = experiment_chart(result)
    except ValueError:
        return  # experiment without series data (e.g. fig14)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{result.experiment_id}.svg")
    with open(path, "w") as handle:
        handle.write(chart)


def _set_obs_environment(args) -> dict:
    """Export the obs CLI flags as environment variables.

    Like ``--check-invariants``, the flags must reach simulations built
    deep inside cached helpers and pool workers, so they travel through
    the environment.  Returns the previous values so ``main`` can restore
    them (keeps repeated in-process invocations — tests — independent).
    """
    from ..obs.capture import ENV_METRICS, ENV_PROFILE, ENV_TRACE, ENV_TRACE_EVENTS

    wanted = {
        ENV_TRACE: bool(getattr(args, "trace", None)),
        ENV_TRACE_EVENTS: bool(getattr(args, "trace_events", False)),
        ENV_METRICS: bool(getattr(args, "metrics", False)),
        ENV_PROFILE: bool(getattr(args, "profile", False)),
    }
    saved = {}
    for name, enabled in wanted.items():
        if enabled:
            saved[name] = os.environ.get(name)
            os.environ[name] = "1"
    return saved


def _restore_environment(saved: dict) -> None:
    for name, old in saved.items():
        if old is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = old


def _set_store_environment(args) -> dict:
    """Export ``--store``/``--resume`` as environment variables.

    Same rationale as the obs flags: the run store must be visible at
    the pool chokepoint inside worker processes, and the environment is
    the only channel that survives both start methods.  Returns the
    previous values for restoration.
    """
    from ..store.runstore import ENV_STORE_DIR, ENV_STORE_RESUME

    wanted = {}
    if getattr(args, "store", None):
        wanted[ENV_STORE_DIR] = args.store
    if getattr(args, "resume", False):
        wanted[ENV_STORE_RESUME] = "1"
    saved = {}
    for name, value in wanted.items():
        saved[name] = os.environ.get(name)
        os.environ[name] = value
    return saved


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "resume", False) and not (
        getattr(args, "store", None) or os.environ.get("REPRO_STORE_DIR")
    ):
        parser.error("--resume requires --store DIR (or $REPRO_STORE_DIR)")
    if getattr(args, "validate", None) and not os.path.isdir(args.validate):
        parser.error(f"--validate: baseline directory not found: {args.validate}")
    if getattr(args, "check_invariants", False) and args.command in ("run", "all"):
        # The experiment modules build their simulations deep inside
        # cached helpers (and possibly in pool workers, which inherit the
        # environment), so the flag travels as an environment variable.
        os.environ["REPRO_CHECK_INVARIANTS"] = "1"
    if args.command == "list":
        for experiment in list_experiments():
            print(
                f"{experiment.experiment_id:8s} {experiment.paper_artifact:10s} "
                f"{experiment.title}"
            )
        return 0
    saved_env = _set_obs_environment(args)
    saved_store = _set_store_environment(args)
    try:
        if args.command == "faults_campaign":
            return _run_faults_campaign(args)
        if args.command == "multitree_campaign":
            return _run_multitree_campaign(args)
        if args.command == "run":
            get_experiment(args.experiment_id)  # fail fast on unknown ids
            return _run_ids([args.experiment_id], args)
        return _run_ids([e.experiment_id for e in list_experiments()], args)
    finally:
        _restore_environment(saved_store)
        _restore_environment(saved_env)


def _run_faults_campaign(args) -> int:
    from ..faults.campaign import resolve_campaign, run_campaign

    spec = args.spec_path if args.spec_path is not None else args.spec
    campaign = resolve_campaign(spec)
    recorder = _StoreRunRecorder()
    report = run_campaign(
        campaign,
        scale=args.scale,
        seed=args.seed,
        jobs=args.jobs,
        timeout_s=args.job_timeout,
        check_invariants=args.check_invariants,
    )
    emitter = _Emitter(args.out)
    emitter.emit(report.table)
    violations = report.data.get("invariant_violations")
    if args.check_invariants:
        runs = len(report.data.get("runs", []))
        emitter.emit(
            f"invariants: {violations or 0} violation(s) across {runs} "
            f"checked run(s)"
        )
    collector = _ArtifactCollector()
    collector.collect(report)
    collector.emit_sections(args, emitter, report.data)
    validated = _run_validation(args, emitter, report.data)
    if args.json:
        _atomic_write(args.json, json.dumps(report.data, indent=2, default=str))
    recorder.finish(
        name=f"faults_campaign {campaign.name}",
        command="repro.experiments faults_campaign",
        params={
            "spec": campaign.to_spec(),
            "scale": args.scale,
            "seed": args.seed,
            "jobs": args.jobs,
            "check_invariants": args.check_invariants,
        },
        report_text=emitter.session_content,
        json_data=report.data,
    )
    return 1 if (violations or not validated) else 0


def _run_multitree_campaign(args) -> int:
    from ..multitree.campaign import resolve_multitree_campaign, run_campaign

    spec = args.spec_path if args.spec_path is not None else args.spec
    campaign = resolve_multitree_campaign(spec)
    recorder = _StoreRunRecorder()
    report = run_campaign(
        campaign,
        scale=args.scale,
        seed=args.seed,
        jobs=args.jobs,
        timeout_s=args.job_timeout,
        check_invariants=args.check_invariants,
    )
    emitter = _Emitter(args.out)
    emitter.emit(report.table)
    violations = report.data.get("invariant_violations")
    if args.check_invariants:
        runs = len(report.data.get("runs", []))
        emitter.emit(
            f"invariants: {violations or 0} violation(s) across {runs} "
            f"checked run(s)"
        )
    collector = _ArtifactCollector()
    collector.collect(report)
    collector.emit_sections(args, emitter, report.data)
    validated = _run_validation(args, emitter, report.data)
    if args.json:
        _atomic_write(args.json, json.dumps(report.data, indent=2, default=str))
    recorder.finish(
        name=f"multitree_campaign {campaign.name}",
        command="repro.experiments multitree_campaign",
        params={
            "spec": campaign.to_spec(),
            "scale": args.scale,
            "seed": args.seed,
            "jobs": args.jobs,
            "check_invariants": args.check_invariants,
        },
        report_text=emitter.session_content,
        json_data=report.data,
    )
    return 1 if (violations or not validated) else 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface for the experiment harness.

Examples::

    python -m repro.experiments list
    python -m repro.experiments run fig04 --scale 0.1 --seed 7
    python -m repro.experiments all --scale 0.05 --out results.txt
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from .registry import get_experiment, list_experiments


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of the DSN'06 ROST/CER paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all registered experiments")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id", help="e.g. fig04")
    _add_run_arguments(run)

    everything = sub.add_parser("all", help="run every experiment")
    _add_run_arguments(everything)
    return parser


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="population/underlay scale factor (1.0 = paper scale)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="run each experiment over this many consecutive seeds and "
        "report mean +/- 95%% CI where the series are mergeable",
    )
    parser.add_argument(
        "--out", type=str, default=None, help="also append tables to this file"
    )
    parser.add_argument(
        "--json", type=str, default=None, help="dump raw data as JSON to this file"
    )
    parser.add_argument(
        "--svg",
        type=str,
        default=None,
        help="directory to write one SVG chart per experiment with series data",
    )


def _emit(text: str, out_path: Optional[str]) -> None:
    print(text)
    if out_path:
        with open(out_path, "a") as handle:
            handle.write(text + "\n")


def _run_ids(ids: List[str], args) -> int:
    json_data = {}
    for experiment_id in ids:
        started = time.time()
        if args.replicas > 1:
            from .replication import replicate

            replicated = replicate(
                experiment_id,
                seeds=range(args.seed, args.seed + args.replicas),
                scale=args.scale,
            )
            _emit(str(replicated), args.out)
            json_data[experiment_id] = {
                "seeds": replicated.seeds,
                "summary": replicated.summary,
                "replicas": [r.data for r in replicated.replicas],
            }
        else:
            experiment = get_experiment(experiment_id)
            result = experiment.run(scale=args.scale, seed=args.seed)
            _emit(result.table, args.out)
            json_data[experiment_id] = result.data
            if args.svg:
                _write_svg(result, args.svg)
        elapsed = time.time() - started
        _emit(f"[{experiment_id} finished in {elapsed:.1f}s]\n", args.out)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(json_data, handle, indent=2, default=str)
    return 0


def _write_svg(result, directory: str) -> None:
    import os

    from ..metrics.svgplot import experiment_chart

    try:
        chart = experiment_chart(result)
    except ValueError:
        return  # experiment without series data (e.g. fig14)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{result.experiment_id}.svg")
    with open(path, "w") as handle:
        handle.write(chart)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment in list_experiments():
            print(
                f"{experiment.experiment_id:8s} {experiment.paper_artifact:10s} "
                f"{experiment.title}"
            )
        return 0
    if args.command == "run":
        return _run_ids([args.experiment_id], args)
    return _run_ids([e.experiment_id for e in list_experiments()], args)


if __name__ == "__main__":
    sys.exit(main())

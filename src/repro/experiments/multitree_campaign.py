"""Registered experiments around the multi-tree resilience subsystem.

``multitree_scenario`` runs one (scenario, protocol, K, seed) unit — the
picklable job the campaign fans out over worker processes.
``multitree_resilience`` runs a whole campaign spec (the built-in K-tree
grid by default) and reports the seed-averaged summary; it is the
surface the ``multitree.json`` golden baseline gates (blackout rate
decreasing in K under the crash scenario).  Both also back the dedicated
``python -m repro.experiments multitree_campaign`` subcommand.
"""

from __future__ import annotations

from typing import Optional

from ..metrics.report import render_table
from ..multitree.campaign import (
    gate_data,
    resolve_multitree_campaign,
    run_campaign,
    run_scenario,
)
from .registry import ExperimentResult, register


@register(
    "multitree_scenario",
    "One K-tree scenario run (scenario x protocol x K x seed unit)",
    "Extension",
)
def run_multitree_scenario(
    scale: float = 1.0,
    seed: int = 42,
    spec=None,
    scenario: Optional[str] = None,
    protocol: Optional[str] = None,
    trees: Optional[int] = None,
    check_invariants: bool = False,
    **_,
) -> ExperimentResult:
    campaign = resolve_multitree_campaign(spec)
    scenario_name = scenario if scenario is not None else campaign.scenarios[0].name
    protocol_name = protocol if protocol is not None else campaign.protocols[0]
    num_trees = trees if trees is not None else campaign.tree_counts[0]
    data = run_scenario(
        campaign,
        scenario_name,
        protocol_name,
        num_trees=num_trees,
        seed=seed,
        scale=scale,
        check_invariants=check_invariants,
    )
    table = render_table(
        f"K-tree scenario {scenario_name!r} "
        f"({protocol_name}, K={num_trees}, seed {seed})",
        ["blackout rate", "outage rate", "quality %", "blackouts/node"],
        [
            [
                data["blackout_rate"],
                data["stripe_outage_rate"],
                100.0 * data["mean_delivered_quality"],
                data["blackouts_per_node"],
            ]
        ],
    )
    return ExperimentResult(
        experiment_id="multitree_scenario",
        title=f"K-tree scenario {scenario_name!r}",
        table=table,
        data=data,
    )


@register(
    "multitree_resilience",
    "Multi-tree resilience campaign: blackout/quality vs stripe count K",
    "Extension",
)
def run_multitree_resilience(
    scale: float = 1.0,
    seed: int = 42,
    spec=None,
    jobs: Optional[int] = 1,
    job_timeout: Optional[float] = None,
    check_invariants: bool = False,
    **_,
) -> ExperimentResult:
    campaign = resolve_multitree_campaign(spec)
    report = run_campaign(
        campaign,
        scale=scale,
        seed=seed,
        jobs=jobs,
        timeout_s=job_timeout,
        check_invariants=check_invariants,
    )
    return ExperimentResult(
        experiment_id="multitree_resilience",
        title=f"Multi-tree campaign {campaign.name!r}",
        # The gated data is the seed-averaged summary only: per-run
        # records carry seed-shaped leaves (fault victim lists, possibly-
        # NaN diagnostics) that would make baseline paths ragged.  The
        # full per-run dump is available via the ``multitree_campaign``
        # subcommand's --json.
        table=report.table,
        data=gate_data(report.data),
        artifacts=dict(report.artifacts),
    )

"""Figure 4: average number of streaming disruptions per node vs size.

Five algorithms over networks of 2000..14000 members; every departure is
abrupt, and a failure disrupts every descendant.  The paper's headline
result: ROST lowest; relaxed TO/BO in the middle; minimum-depth and
longest-first worst by a wide margin.
"""

from __future__ import annotations

from ..metrics.report import render_series_table
from .common import PAPER_SIZES, PROTOCOL_ORDER, SweepSettings, churn_run
from .registry import ExperimentResult, register
from .units import ChurnUnit, declare_units


@declare_units("fig04")
def units(scale: float = 1.0, seed: int = 42, sizes=PAPER_SIZES, **_):
    settings = SweepSettings(scale=scale, seed=seed)
    return [
        ChurnUnit(protocol, size, settings)
        for protocol in PROTOCOL_ORDER
        for size in sizes
    ]


@register(
    "fig04",
    "Avg. streaming disruptions per node vs network size",
    "Figure 4",
)
def run(scale: float = 1.0, seed: int = 42, sizes=PAPER_SIZES, **_) -> ExperimentResult:
    settings = SweepSettings(scale=scale, seed=seed)
    series = []
    populations = {}
    for protocol in PROTOCOL_ORDER:
        values = []
        for size in sizes:
            result = churn_run(protocol, size, settings)
            values.append(result.avg_disruptions_per_node)
            populations.setdefault(size, result.metrics.mean_population)
        series.append((protocol, values))
    table = render_series_table(
        "Fig. 4 — avg disruptions per node (scale "
        f"{scale:g}, measured populations "
        f"{[round(populations[s]) for s in sizes]})",
        "size",
        list(sizes),
        series,
    )
    return ExperimentResult(
        experiment_id="fig04",
        title="Avg. streaming disruptions per node vs network size",
        table=table,
        data={
            "sizes": list(sizes),
            "series": {name: values for name, values in series},
            "measured_populations": populations,
        },
    )

"""Extension experiment: proactive rescue plans under CER.

Yang & Fei's proactive tree reconstruction (the paper's reference [18])
precomputes a rescue scheme so an orphan skips the 10 s parent
re-finding.  The paper notes this "still remains a general problem" in
dynamic systems — here we quantify how much of CER's work such plans
remove: rescued orphans lose ~6 s of stream (detection + reattach)
instead of 15 s, shrinking the repair gap proportionally.
"""

from __future__ import annotations

import dataclasses

from ..metrics.report import render_table
from ..protocols import PROTOCOLS
from ..recovery.schemes import cer_scheme
from ..simulation.streaming import RecoverySimulation
from .common import DEFAULT_SINGLE_SIZE, SweepSettings, shared_topology
from .registry import ExperimentResult, register

GROUP_SIZES = (1, 2, 3)


@register(
    "ext-rescue",
    "Proactive rescue plans vs the 15 s recovery window (CER)",
    "Extension",
)
def run(
    scale: float = 1.0,
    seed: int = 42,
    population: int = DEFAULT_SINGLE_SIZE,
    **_,
) -> ExperimentResult:
    schemes = [cer_scheme(k) for k in GROUP_SIZES]
    rows = []
    data = {}
    for rescue in (False, True):
        settings = SweepSettings(scale=scale, seed=seed)
        base = settings.config(population)
        config = dataclasses.replace(
            base,
            protocol=dataclasses.replace(base.protocol, proactive_rescue=rescue),
        )
        # Run directly (bypassing the run cache, which does not key on the
        # rescue flag) over the shared underlay.
        topology, oracle = shared_topology(config)
        sim = RecoverySimulation(
            config, PROTOCOLS["min-depth"], schemes, topology=topology, oracle=oracle
        )
        outcome = sim.run()
        label = "rescue" if rescue else "baseline"
        ratios = [outcome.ratio_pct(s.name) for s in schemes]
        rows.append([label, *ratios])
        data[label] = dict(zip((str(k) for k in GROUP_SIZES), ratios))
    table = render_table(
        f"Proactive rescue — avg starving time ratio %% by CER group size "
        f"(population {population}, scale {scale:g})",
        ["variant", *[f"group={k}" for k in GROUP_SIZES]],
        rows,
    )
    return ExperimentResult(
        experiment_id="ext-rescue",
        title="Proactive rescue plans vs the 15 s recovery window",
        table=table,
        data=data,
    )

"""Parallel fan-out of (experiment × seed) jobs over worker processes.

The paper's evaluation is a sweep of independent simulations, which makes
it embarrassingly parallel: a :class:`ProcessPoolExecutor` runs the jobs
across ``--jobs N`` workers while the harness preserves **deterministic
result ordering** — results come back in submission order no matter which
worker finishes first, so merged tables are byte-identical to a serial
run.

Robustness model:

* ``jobs=1`` (or a single job) short-circuits to plain in-process
  execution — no executor, no subprocesses — so ``pdb``, profilers and
  coverage keep working and there is zero overhead for small runs.
* A job whose worker crashes (``BrokenProcessPool``) or exceeds the
  per-job ``timeout_s`` is retried **once, in-process**; the retry is
  deterministic, so a flaky worker cannot change results.  A second
  failure propagates.
* Workers share the expensive underlay precompute through the on-disk
  topology cache (:mod:`repro.topology.cache`): if ``REPRO_CACHE_DIR``
  is not set, the pool provisions a temporary shared cache directory for
  the duration of the run, so N workers pay for each distinct underlay
  once instead of N times — and nothing needs to pickle oracles across
  the process boundary.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..topology.cache import ENV_CACHE_DIR
from .registry import ExperimentResult, run_experiment


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None -> $REPRO_JOBS or cpu count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        jobs = int(env) if env else (os.cpu_count() or 1)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True)
class ExperimentJob:
    """One (experiment, seed, scale, extra-kwargs) unit of work.

    ``kwargs`` is a sorted tuple of pairs rather than a dict so jobs are
    hashable and their pickled form is canonical.
    """

    experiment_id: str
    scale: float = 1.0
    seed: int = 42
    kwargs: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(
        cls, experiment_id: str, scale: float = 1.0, seed: int = 42, **kwargs
    ) -> "ExperimentJob":
        return cls(experiment_id, scale, seed, tuple(sorted(kwargs.items())))


def execute_job(job: ExperimentJob) -> ExperimentResult:
    """Run one job in the current process (also the worker entry point)."""
    return run_experiment(
        job.experiment_id, scale=job.scale, seed=job.seed, **dict(job.kwargs)
    )


def _worker_init(cache_dir: Optional[str]) -> None:
    if cache_dir:
        os.environ[ENV_CACHE_DIR] = cache_dir


class ExperimentPool:
    """Runs batches of :class:`ExperimentJob` with deterministic ordering."""

    def __init__(self, jobs: Optional[int] = None, timeout_s: Optional[float] = None):
        self.jobs = resolve_jobs(jobs)
        #: Per-job wall-clock limit when running in worker processes
        #: (None = no limit).  Ignored on the in-process path.
        self.timeout_s = timeout_s
        self.retried_jobs = 0

    def run(self, jobs: Sequence[ExperimentJob]) -> List[ExperimentResult]:
        """Execute ``jobs``; results are returned in submission order."""
        jobs = list(jobs)
        if not jobs:
            return []
        if self.jobs == 1 or len(jobs) == 1:
            return [execute_job(job) for job in jobs]
        return self._run_parallel(jobs)

    def _run_parallel(self, jobs: List[ExperimentJob]) -> List[ExperimentResult]:
        cache_dir = os.environ.get(ENV_CACHE_DIR) or None
        temp_cache = None
        if cache_dir is None:
            temp_cache = tempfile.mkdtemp(prefix="repro-topo-cache-")
            cache_dir = temp_cache
        try:
            executor = ProcessPoolExecutor(
                max_workers=min(self.jobs, len(jobs)),
                initializer=_worker_init,
                initargs=(cache_dir,),
            )
            try:
                futures = [executor.submit(execute_job, job) for job in jobs]
                results: List[ExperimentResult] = []
                for job, future in zip(jobs, futures):
                    try:
                        results.append(future.result(timeout=self.timeout_s))
                    except (BrokenExecutor, FutureTimeoutError, OSError):
                        # Crashed or wedged worker: retry once, in-process.
                        future.cancel()
                        self.retried_jobs += 1
                        results.append(execute_job(job))
                return results
            finally:
                executor.shutdown(wait=False, cancel_futures=True)
        finally:
            if temp_cache is not None:
                shutil.rmtree(temp_cache, ignore_errors=True)


def run_jobs(
    jobs: Sequence[ExperimentJob],
    parallel_jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
) -> List[ExperimentResult]:
    """One-shot convenience wrapper around :class:`ExperimentPool`."""
    return ExperimentPool(jobs=parallel_jobs, timeout_s=timeout_s).run(jobs)

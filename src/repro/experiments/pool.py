"""Sweep-unit scheduling of (experiment × seed) jobs over worker processes.

The paper's figures are views over a much smaller set of simulations
(Figs 4/7/8/10 read different metrics off one five-protocol size sweep,
Fig 5 shares its 8000-member column, Figs 6/9 share the probe runs), so
the pool schedules **simulation units**, not figures:

1. *Plan* — every job that has a unit declarer
   (:mod:`~repro.experiments.units`) reports the simulations it will
   consume; the pool dedups them across all requested figures.
2. *Execute* — each distinct unit runs **exactly once** across the
   workers; its exact result payload (bit-identical floats, captured obs
   artifacts) ships back as canonical JSON.  Jobs without declarers
   (campaign drivers, direct-sim extensions) run as whole jobs alongside.
3. *Demux* — the parent seeds the payloads into the in-process run
   caches and replays each figure locally; extraction is a cache-hit
   walk costing milliseconds, and flows through the same
   :func:`execute_job` chokepoint as a serial run (obs capture, durable
   store recording).

Because the demuxed figures consume the very cache entries a ``--jobs
1`` run would populate, merged tables, ``--json`` payloads and obs
traces are **byte-identical to a serial run at any** ``--jobs``.

Robustness model:

* ``jobs=1`` (or a single job) short-circuits to plain in-process
  execution — no executor, no subprocesses — so ``pdb``, profilers and
  coverage keep working and there is zero overhead for small runs.
* A unit or job whose worker crashes (``BrokenProcessPool``) or exceeds
  the per-job ``timeout_s`` is retried **once, in-process**; the retry
  is deterministic, so a flaky worker cannot change results.  A second
  failure propagates.
* Workers share the expensive underlay precompute through the on-disk
  topology cache (:mod:`repro.topology.cache`): if ``REPRO_CACHE_DIR``
  is not set, the pool provisions a temporary shared cache directory for
  the duration of the run, so N workers pay for each distinct underlay
  once instead of N times — and nothing needs to pickle oracles across
  the process boundary.
* Worker processes are capped at the machine's core count: the sims are
  CPU-bound, so extra processes only add contention.  ``--jobs`` remains
  the requested ceiling and has no effect on results.
* With the durable store active, units are recorded/replayed under
  ``sim:churn`` / ``sim:recovery`` ledger ids, so ``--resume`` composes
  at unit granularity (see :func:`~repro.experiments.units.run_unit_task`).
"""

from __future__ import annotations

import os
import shutil
import tempfile
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..obs.capture import apply_obs_env, job_capture, obs_env
from ..obs.profile import record_stage, stage_timer
from ..store.runstore import (
    active_store,
    apply_store_env,
    resume_enabled,
    store_env,
)
from ..topology import shm
from ..topology.cache import ENV_CACHE_DIR
from . import units as units_mod
from .registry import ExperimentResult, run_experiment


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None -> $REPRO_JOBS or cpu count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        jobs = int(env) if env else (os.cpu_count() or 1)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True)
class ExperimentJob:
    """One (experiment, seed, scale, extra-kwargs) unit of work.

    ``kwargs`` is a sorted tuple of pairs rather than a dict so jobs are
    hashable and their pickled form is canonical.
    """

    experiment_id: str
    scale: float = 1.0
    seed: int = 42
    kwargs: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(
        cls, experiment_id: str, scale: float = 1.0, seed: int = 42, **kwargs
    ) -> "ExperimentJob":
        return cls(experiment_id, scale, seed, tuple(sorted(kwargs.items())))


def execute_job(job: ExperimentJob) -> ExperimentResult:
    """Run one job in the current process (also the worker entry point).

    This is the single chokepoint both the worker path and the
    in-process path go through, so observability artifacts (trace lines,
    metrics/profile units — see :mod:`repro.obs.capture`) are captured
    here and attached to the result regardless of where the job ran.

    It is also where the durable run store (:mod:`repro.store`) hooks
    in: with ``REPRO_STORE_DIR`` set, every completed unit commits its
    result payload to the ledger, and with ``REPRO_STORE_RESUME`` a unit
    the ledger already has is *replayed* — execution skipped, the stored
    table/data/artifacts returned verbatim — which is what makes
    ``--resume`` after a crash byte-identical to an uninterrupted run.
    """
    store = active_store()
    key = store.job_key(job) if store is not None else None
    if store is not None and resume_enabled():
        replayed = store.replay(key)
        if replayed is not None:
            return replayed
    with job_capture() as capture:
        result = run_experiment(
            job.experiment_id, scale=job.scale, seed=job.seed, **dict(job.kwargs)
        )
    if capture is not None:
        artifacts = capture.artifacts()
        if artifacts:
            result.artifacts.update(artifacts)
    if store is not None:
        store.record_result(key, job, result)
    return result


def _worker_init(
    cache_dir: Optional[str],
    obs_flags: dict,
    shm_session: Optional[str] = None,
    store_flags: Optional[dict] = None,
) -> None:
    if cache_dir:
        os.environ[ENV_CACHE_DIR] = cache_dir
    if shm_session:
        # Join the pool's shared-memory session: the topology cache will
        # attach published artefacts zero-copy (see repro.topology.shm).
        os.environ[shm.ENV_SHM_SESSION] = shm_session
    # Re-export the observability and run-store flags explicitly: with
    # the fork start method they are inherited anyway, but spawn-based
    # platforms would otherwise silently drop tracing/checkpointing in
    # workers.
    apply_obs_env(obs_flags)
    apply_store_env(store_flags or {})


class ExperimentPool:
    """Runs batches of :class:`ExperimentJob` with deterministic ordering."""

    def __init__(self, jobs: Optional[int] = None, timeout_s: Optional[float] = None):
        self.jobs = resolve_jobs(jobs)
        #: Per-job wall-clock limit when running in worker processes
        #: (None = no limit).  Ignored on the in-process path.
        self.timeout_s = timeout_s
        self.retried_jobs = 0

    def run(self, jobs: Sequence[ExperimentJob]) -> List[ExperimentResult]:
        """Execute ``jobs``; results are returned in submission order."""
        jobs = list(jobs)
        if not jobs:
            return []
        if self.jobs == 1 or len(jobs) == 1:
            clock = stage_timer()
            results = [execute_job(job) for job in jobs]
            record_stage("pool.serial", clock())
            return results
        return self._run_parallel(jobs)

    def _retry_in_process(self, job: ExperimentJob) -> ExperimentResult:
        """Retry a crashed or wedged job in the parent process.

        The retry re-runs the job from scratch under a fresh artifact
        capture (via :func:`execute_job`), so any trace/metrics artifacts
        the dead worker produced — and which died with it — are re-emitted
        in full on the retried result.  The merged trace is therefore
        byte-identical to a run in which the worker never crashed.
        """
        self.retried_jobs += 1
        clock = stage_timer()
        try:
            return execute_job(job)
        finally:
            record_stage("pool.retry", clock())

    def _plan_units(self, jobs: List[ExperimentJob]):
        """Phase 1 of the sweep-unit plan: what does each job simulate?

        Returns ``(units_by_job, unique_units)``.  ``units_by_job[i]`` is
        the unit list job ``i`` declared, or ``None`` for legacy jobs
        (campaign drivers, direct-sim extensions, declarers that do not
        understand the job's kwargs) which keep the whole-job path.
        ``unique_units`` holds each distinct unit once, in first-appearance
        order — the cross-figure dedup that makes ``all --jobs N`` simulate
        each (protocol, size, seed) run exactly once.

        With ``--resume`` and a populated store, a job whose *figure-level*
        result is already in the ledger contributes no units (it will be
        replayed wholesale by :func:`execute_job`); the membership probe
        uses :meth:`~repro.store.runstore.RunStore.has_unit`, which never
        bumps replay counters.
        """
        store = active_store()
        skip_stored = store is not None and resume_enabled()
        units_by_job: List[Optional[list]] = []
        unique_units: List[units_mod.SimulationUnit] = []
        seen = set()
        for job in jobs:
            try:
                declared = units_mod.units_for(
                    job.experiment_id, job.scale, job.seed, **dict(job.kwargs)
                )
            except TypeError:
                declared = None
            if declared is None:
                units_by_job.append(None)
                continue
            if skip_stored and store.has_unit(store.job_key(job)):
                units_by_job.append([])
                continue
            units_by_job.append(declared)
            for unit in declared:
                key = unit.cache_key()
                if key not in seen:
                    seen.add(key)
                    unique_units.append(unit)
        return units_by_job, unique_units

    def _run_parallel(self, jobs: List[ExperimentJob]) -> List[ExperimentResult]:
        cache_dir = os.environ.get(ENV_CACHE_DIR) or None
        temp_cache = None
        if cache_dir is None:
            temp_cache = tempfile.mkdtemp(prefix="repro-topo-cache-")
            cache_dir = temp_cache
        # Open a shared-memory session for the sweep: workers publish each
        # distinct underlay once and everyone else attaches zero-copy.
        # The parent owns the session and sweeps every segment in the
        # finally below — including segments left by crashed workers (a
        # retried job simply re-attaches; see repro.topology.shm).
        shm_session = None
        prior_session = os.environ.get(shm.ENV_SHM_SESSION)
        if prior_session is None and shm.shm_available():
            shm_session = shm.new_session_token()
            os.environ[shm.ENV_SHM_SESSION] = shm_session
        try:
            clock = stage_timer()
            units_by_job, unique_units = self._plan_units(jobs)
            record_stage("pool.plan", clock())
            # Never oversubscribe the machine: the sims are CPU-bound, so
            # workers beyond the core count only add contention and
            # duplicated per-process cache state.  ``--jobs`` stays the
            # requested ceiling (and the dedup plan is identical at any
            # value); the executor just won't start more processes than
            # can actually run.
            worker_slots = min(
                self.jobs,
                max(len(jobs), len(unique_units)),
                max(1, os.cpu_count() or 1),
            )
            executor = ProcessPoolExecutor(
                max_workers=worker_slots,
                initializer=_worker_init,
                initargs=(cache_dir, obs_env(), shm_session, store_env()),
            )
            try:
                # Phase 2: execute each deduplicated simulation unit once,
                # alongside the legacy whole jobs (they share the worker
                # pool, so unit work and campaign work overlap freely).
                clock = stage_timer()
                unit_futures = [
                    executor.submit(units_mod.run_unit_task, unit)
                    for unit in unique_units
                ]
                job_futures = {
                    i: executor.submit(execute_job, job)
                    for i, job in enumerate(jobs)
                    if units_by_job[i] is None
                }
                record_stage("pool.submit", clock())
                clock = stage_timer()
                for unit, future in zip(unique_units, unit_futures):
                    try:
                        payload = future.result(timeout=self.timeout_s)
                    except (BrokenExecutor, FutureTimeoutError, OSError):
                        # Crashed or wedged worker: retry once, in-process.
                        future.cancel()
                        self.retried_jobs += 1
                        payload = units_mod.run_unit_task(unit)
                    units_mod.seed_unit(unit, payload)
                record_stage("pool.units", clock())
                # Phase 3: gather legacy jobs in submission order and
                # demux unit-backed figures in-process — every simulation
                # they consume is now a cache hit, so extraction costs
                # milliseconds and still flows through the execute_job
                # chokepoint (obs capture + store recording).
                clock = stage_timer()
                results: List[ExperimentResult] = []
                for i, job in enumerate(jobs):
                    if units_by_job[i] is None:
                        future = job_futures[i]
                        try:
                            results.append(future.result(timeout=self.timeout_s))
                        except (BrokenExecutor, FutureTimeoutError, OSError):
                            future.cancel()
                            results.append(self._retry_in_process(job))
                    else:
                        # Demux with the workers' disk cache joined: a
                        # figure that needs the topology itself (e.g. the
                        # probe figures) loads the workers' precomputed
                        # underlay instead of regenerating it.  Scoped to
                        # the demux call so legacy retries (above) run
                        # under the caller's own environment.
                        prior = os.environ.get(ENV_CACHE_DIR)
                        os.environ[ENV_CACHE_DIR] = cache_dir
                        try:
                            results.append(execute_job(job))
                        finally:
                            if prior is None:
                                os.environ.pop(ENV_CACHE_DIR, None)
                            else:
                                os.environ[ENV_CACHE_DIR] = prior
                record_stage("pool.gather", clock())
                return results
            finally:
                executor.shutdown(wait=False, cancel_futures=True)
        finally:
            if shm_session is not None:
                shm.cleanup_session(shm_session)
                os.environ.pop(shm.ENV_SHM_SESSION, None)
            if temp_cache is not None:
                shutil.rmtree(temp_cache, ignore_errors=True)


def run_jobs(
    jobs: Sequence[ExperimentJob],
    parallel_jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
) -> List[ExperimentResult]:
    """One-shot convenience wrapper around :class:`ExperimentPool`."""
    return ExperimentPool(jobs=parallel_jobs, timeout_s=timeout_s).run(jobs)

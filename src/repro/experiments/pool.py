"""Parallel fan-out of (experiment × seed) jobs over worker processes.

The paper's evaluation is a sweep of independent simulations, which makes
it embarrassingly parallel: a :class:`ProcessPoolExecutor` runs the jobs
across ``--jobs N`` workers while the harness preserves **deterministic
result ordering** — results come back in submission order no matter which
worker finishes first, so merged tables are byte-identical to a serial
run.

Robustness model:

* ``jobs=1`` (or a single job) short-circuits to plain in-process
  execution — no executor, no subprocesses — so ``pdb``, profilers and
  coverage keep working and there is zero overhead for small runs.
* A job whose worker crashes (``BrokenProcessPool``) or exceeds the
  per-job ``timeout_s`` is retried **once, in-process**; the retry is
  deterministic, so a flaky worker cannot change results.  A second
  failure propagates.
* Workers share the expensive underlay precompute through the on-disk
  topology cache (:mod:`repro.topology.cache`): if ``REPRO_CACHE_DIR``
  is not set, the pool provisions a temporary shared cache directory for
  the duration of the run, so N workers pay for each distinct underlay
  once instead of N times — and nothing needs to pickle oracles across
  the process boundary.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..obs.capture import apply_obs_env, job_capture, obs_env
from ..obs.profile import record_stage, stage_timer
from ..store.runstore import (
    active_store,
    apply_store_env,
    resume_enabled,
    store_env,
)
from ..topology import shm
from ..topology.cache import ENV_CACHE_DIR
from .registry import ExperimentResult, run_experiment


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None -> $REPRO_JOBS or cpu count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        jobs = int(env) if env else (os.cpu_count() or 1)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True)
class ExperimentJob:
    """One (experiment, seed, scale, extra-kwargs) unit of work.

    ``kwargs`` is a sorted tuple of pairs rather than a dict so jobs are
    hashable and their pickled form is canonical.
    """

    experiment_id: str
    scale: float = 1.0
    seed: int = 42
    kwargs: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(
        cls, experiment_id: str, scale: float = 1.0, seed: int = 42, **kwargs
    ) -> "ExperimentJob":
        return cls(experiment_id, scale, seed, tuple(sorted(kwargs.items())))


def execute_job(job: ExperimentJob) -> ExperimentResult:
    """Run one job in the current process (also the worker entry point).

    This is the single chokepoint both the worker path and the
    in-process path go through, so observability artifacts (trace lines,
    metrics/profile units — see :mod:`repro.obs.capture`) are captured
    here and attached to the result regardless of where the job ran.

    It is also where the durable run store (:mod:`repro.store`) hooks
    in: with ``REPRO_STORE_DIR`` set, every completed unit commits its
    result payload to the ledger, and with ``REPRO_STORE_RESUME`` a unit
    the ledger already has is *replayed* — execution skipped, the stored
    table/data/artifacts returned verbatim — which is what makes
    ``--resume`` after a crash byte-identical to an uninterrupted run.
    """
    store = active_store()
    key = store.job_key(job) if store is not None else None
    if store is not None and resume_enabled():
        replayed = store.replay(key)
        if replayed is not None:
            return replayed
    with job_capture() as capture:
        result = run_experiment(
            job.experiment_id, scale=job.scale, seed=job.seed, **dict(job.kwargs)
        )
    if capture is not None:
        artifacts = capture.artifacts()
        if artifacts:
            result.artifacts.update(artifacts)
    if store is not None:
        store.record_result(key, job, result)
    return result


def _worker_init(
    cache_dir: Optional[str],
    obs_flags: dict,
    shm_session: Optional[str] = None,
    store_flags: Optional[dict] = None,
) -> None:
    if cache_dir:
        os.environ[ENV_CACHE_DIR] = cache_dir
    if shm_session:
        # Join the pool's shared-memory session: the topology cache will
        # attach published artefacts zero-copy (see repro.topology.shm).
        os.environ[shm.ENV_SHM_SESSION] = shm_session
    # Re-export the observability and run-store flags explicitly: with
    # the fork start method they are inherited anyway, but spawn-based
    # platforms would otherwise silently drop tracing/checkpointing in
    # workers.
    apply_obs_env(obs_flags)
    apply_store_env(store_flags or {})


class ExperimentPool:
    """Runs batches of :class:`ExperimentJob` with deterministic ordering."""

    def __init__(self, jobs: Optional[int] = None, timeout_s: Optional[float] = None):
        self.jobs = resolve_jobs(jobs)
        #: Per-job wall-clock limit when running in worker processes
        #: (None = no limit).  Ignored on the in-process path.
        self.timeout_s = timeout_s
        self.retried_jobs = 0

    def run(self, jobs: Sequence[ExperimentJob]) -> List[ExperimentResult]:
        """Execute ``jobs``; results are returned in submission order."""
        jobs = list(jobs)
        if not jobs:
            return []
        if self.jobs == 1 or len(jobs) == 1:
            clock = stage_timer()
            results = [execute_job(job) for job in jobs]
            record_stage("pool.serial", clock())
            return results
        return self._run_parallel(jobs)

    def _retry_in_process(self, job: ExperimentJob) -> ExperimentResult:
        """Retry a crashed or wedged job in the parent process.

        The retry re-runs the job from scratch under a fresh artifact
        capture (via :func:`execute_job`), so any trace/metrics artifacts
        the dead worker produced — and which died with it — are re-emitted
        in full on the retried result.  The merged trace is therefore
        byte-identical to a run in which the worker never crashed.
        """
        self.retried_jobs += 1
        clock = stage_timer()
        try:
            return execute_job(job)
        finally:
            record_stage("pool.retry", clock())

    def _run_parallel(self, jobs: List[ExperimentJob]) -> List[ExperimentResult]:
        cache_dir = os.environ.get(ENV_CACHE_DIR) or None
        temp_cache = None
        if cache_dir is None:
            temp_cache = tempfile.mkdtemp(prefix="repro-topo-cache-")
            cache_dir = temp_cache
        # Open a shared-memory session for the sweep: workers publish each
        # distinct underlay once and everyone else attaches zero-copy.
        # The parent owns the session and sweeps every segment in the
        # finally below — including segments left by crashed workers (a
        # retried job simply re-attaches; see repro.topology.shm).
        shm_session = None
        prior_session = os.environ.get(shm.ENV_SHM_SESSION)
        if prior_session is None and shm.shm_available():
            shm_session = shm.new_session_token()
            os.environ[shm.ENV_SHM_SESSION] = shm_session
        try:
            executor = ProcessPoolExecutor(
                max_workers=min(self.jobs, len(jobs)),
                initializer=_worker_init,
                initargs=(cache_dir, obs_env(), shm_session, store_env()),
            )
            try:
                clock = stage_timer()
                futures = [executor.submit(execute_job, job) for job in jobs]
                record_stage("pool.submit", clock())
                clock = stage_timer()
                results: List[ExperimentResult] = []
                for job, future in zip(jobs, futures):
                    try:
                        results.append(future.result(timeout=self.timeout_s))
                    except (BrokenExecutor, FutureTimeoutError, OSError):
                        # Crashed or wedged worker: retry once, in-process.
                        future.cancel()
                        results.append(self._retry_in_process(job))
                record_stage("pool.gather", clock())
                return results
            finally:
                executor.shutdown(wait=False, cancel_futures=True)
        finally:
            if shm_session is not None:
                shm.cleanup_session(shm_session)
                os.environ.pop(shm.ENV_SHM_SESSION, None)
            if temp_cache is not None:
                shutil.rmtree(temp_cache, ignore_errors=True)


def run_jobs(
    jobs: Sequence[ExperimentJob],
    parallel_jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
) -> List[ExperimentResult]:
    """One-shot convenience wrapper around :class:`ExperimentPool`."""
    return ExperimentPool(jobs=parallel_jobs, timeout_s=timeout_s).run(jobs)

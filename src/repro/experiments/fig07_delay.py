"""Figure 7: average end-to-end service delay vs network size.

Service delay is the sum of underlay delays along the overlay path from
the source.  ROST should be the best of the three distributed algorithms
and within a modest factor of the centralized bandwidth-ordered tree.
"""

from __future__ import annotations

from ..metrics.report import render_series_table
from .common import PAPER_SIZES, PROTOCOL_ORDER, SweepSettings, churn_run
from .registry import ExperimentResult, register
from .units import ChurnUnit, declare_units


@declare_units("fig07")
def units(scale: float = 1.0, seed: int = 42, sizes=PAPER_SIZES, **_):
    settings = SweepSettings(scale=scale, seed=seed)
    return [
        ChurnUnit(protocol, size, settings)
        for protocol in PROTOCOL_ORDER
        for size in sizes
    ]


@register(
    "fig07",
    "Avg. service delay (ms) vs network size",
    "Figure 7",
)
def run(scale: float = 1.0, seed: int = 42, sizes=PAPER_SIZES, **_) -> ExperimentResult:
    settings = SweepSettings(scale=scale, seed=seed)
    series = []
    for protocol in PROTOCOL_ORDER:
        values = [
            churn_run(protocol, size, settings).avg_service_delay_ms
            for size in sizes
        ]
        series.append((protocol, values))
    table = render_series_table(
        f"Fig. 7 — avg service delay in ms (scale {scale:g})",
        "size",
        list(sizes),
        series,
        precision=1,
    )
    return ExperimentResult(
        experiment_id="fig07",
        title="Avg. service delay vs network size",
        table=table,
        data={"sizes": list(sizes), "series": dict(series)},
    )

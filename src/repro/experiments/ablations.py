"""Ablation experiments: quantifying the design choices DESIGN.md makes.

Not figures from the paper — these isolate mechanisms the paper's text
underdetermines (spare-slot promotion, grandparent succession, the
bandwidth guard, referee verification) and CER's ingredients (MLC
selection, striping, ELN), so the contribution of each is measurable.
"""

from __future__ import annotations

from ..metrics.report import render_table
from ..recovery.schemes import RecoveryScheme, cer_scheme, single_source_scheme
from .common import DEFAULT_SINGLE_SIZE, SweepSettings, churn_run, recovery_run
from .registry import ExperimentResult, register

ROST_VARIANTS = {
    "full-rost": {},
    "no-promotion": {"promote_into_spare": False},
    "no-succession": {"grandparent_rejoin": False},
    "no-bw-guard": {"bandwidth_guard": False},
    "no-referees": {"use_referees": False},
    "swaps-only": {"promote_into_spare": False, "grandparent_rejoin": False},
}


from .units import ChurnUnit, RecoveryUnit, declare_units


@declare_units("ablation-rost")
def rost_units(
    scale: float = 1.0, seed: int = 42, population: int = DEFAULT_SINGLE_SIZE, **_
):
    settings = SweepSettings(scale=scale, seed=seed)
    return [
        ChurnUnit("rost", population, settings, rost_flags=tuple(sorted(flags.items())))
        for flags in ROST_VARIANTS.values()
    ]


def _ablation_schemes():
    return (
        cer_scheme(3),  # the full protocol
        RecoveryScheme(  # striping without loss-correlation awareness
            name="cer-k3-random",
            group_size=3,
            use_mlc=False,
            striped=True,
            buffer_s=5.0,
        ),
        RecoveryScheme(  # MLC selection but one source at a time
            name="ss-k3-mlc",
            group_size=3,
            use_mlc=True,
            striped=False,
            buffer_s=5.0,
        ),
        cer_scheme(3, eln=False),  # every descendant recovers alone
        single_source_scheme(3),  # neither ingredient
    )


@declare_units("ablation-recovery")
def recovery_units(
    scale: float = 1.0, seed: int = 42, population: int = DEFAULT_SINGLE_SIZE, **_
):
    settings = SweepSettings(scale=scale, seed=seed)
    return [RecoveryUnit("min-depth", population, settings, _ablation_schemes())]


@register(
    "ablation-rost",
    "ROST mechanism ablations (promotion / succession / guards)",
    "Extension",
)
def run_rost_ablation(
    scale: float = 1.0,
    seed: int = 42,
    population: int = DEFAULT_SINGLE_SIZE,
    **_,
) -> ExperimentResult:
    settings = SweepSettings(scale=scale, seed=seed)
    rows = []
    data = {}
    for label, flags in ROST_VARIANTS.items():
        result = churn_run("rost", population, settings, rost_flags=flags)
        rows.append(
            [
                label,
                result.avg_disruptions_per_node,
                result.avg_service_delay_ms,
                result.avg_stretch,
                result.avg_optimization_reconnections,
            ]
        )
        data[label] = {
            "disruptions": result.avg_disruptions_per_node,
            "delay_ms": result.avg_service_delay_ms,
            "stretch": result.avg_stretch,
            "overhead": result.avg_optimization_reconnections,
        }
    table = render_table(
        f"ROST ablations (population {population}, scale {scale:g})",
        ["variant", "disr/node", "delay ms", "stretch", "reconn/node"],
        rows,
    )
    return ExperimentResult(
        experiment_id="ablation-rost",
        title="ROST mechanism ablations",
        table=table,
        data=data,
    )


@register(
    "ablation-recovery",
    "CER ingredient ablations (MLC / striping / ELN)",
    "Extension",
)
def run_recovery_ablation(
    scale: float = 1.0,
    seed: int = 42,
    population: int = DEFAULT_SINGLE_SIZE,
    **_,
) -> ExperimentResult:
    settings = SweepSettings(scale=scale, seed=seed)
    schemes = list(_ablation_schemes())
    result = recovery_run("min-depth", population, settings, schemes)
    rows = []
    data = {}
    for scheme in schemes:
        outcome = result.schemes[scheme.name]
        rows.append(
            [
                scheme.name,
                "mlc" if scheme.use_mlc else "random",
                "striped" if scheme.striped else "sequential",
                "yes" if scheme.eln else "no",
                outcome.avg_starving_ratio_pct,
                outcome.mean_coverage,
            ]
        )
        data[scheme.name] = {
            "starving_pct": outcome.avg_starving_ratio_pct,
            "coverage": outcome.mean_coverage,
        }
    table = render_table(
        f"CER ingredient ablations (min-depth tree, population {population}, "
        f"scale {scale:g})",
        ["scheme", "selection", "repair", "ELN", "starving %", "coverage"],
        rows,
    )
    return ExperimentResult(
        experiment_id="ablation-recovery",
        title="CER ingredient ablations",
        table=table,
        data=data,
    )

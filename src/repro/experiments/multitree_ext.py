"""Extension experiment: single-tree vs multiple-tree delivery.

The paper's future-work claim is that its techniques carry over to
multiple-tree delivery.  This experiment runs ROST-maintained stripe
trees for K in {1, 2, 4} on the same workload and compares:

* blackouts (all stripes down at once — the single-tree "disruption"
  equivalent) per member lifetime,
* stripe-level interruptions per member lifetime,
* mean delivered stream quality, and
* effective (slowest-stripe) service delay.

Interior-disjointness should make blackouts collapse as K grows, at the
cost of more (but 1/K-sized) stripe interruptions and a modest delay
increase.
"""

from __future__ import annotations

from ..metrics.report import render_table
from ..multitree.driver import MultiTreeSimulation
from ..protocols import PROTOCOLS
from .common import DEFAULT_SINGLE_SIZE, SweepSettings
from .registry import ExperimentResult, register

TREE_COUNTS = (1, 2, 4)


@register(
    "ext-multitree",
    "Single-tree vs multiple-tree (SplitStream-style) delivery",
    "Extension",
)
def run(
    scale: float = 1.0,
    seed: int = 42,
    population: int = DEFAULT_SINGLE_SIZE,
    tree_counts=TREE_COUNTS,
    **_,
) -> ExperimentResult:
    settings = SweepSettings(scale=scale, seed=seed)
    config = settings.config(population)
    rows = []
    data = {}
    topology = oracle = None
    for num_trees in tree_counts:
        sim = MultiTreeSimulation(
            config,
            PROTOCOLS["rost"],
            num_trees=num_trees,
            topology=topology,
            oracle=oracle,
        )
        topology, oracle = sim.topology, sim.oracle
        result = sim.run()
        rows.append(
            [
                num_trees,
                result.blackouts_per_node,
                result.stripe_disruptions_per_node,
                100.0 * result.mean_delivered_quality,
                result.effective_delay_ms,
            ]
        )
        data[str(num_trees)] = {
            "blackouts": result.blackouts_per_node,
            "stripe_disruptions": result.stripe_disruptions_per_node,
            "quality_pct": 100.0 * result.mean_delivered_quality,
            "effective_delay_ms": result.effective_delay_ms,
        }
    table = render_table(
        f"Multi-tree extension — ROST stripes "
        f"(population {population}, scale {scale:g})",
        ["trees", "blackouts/node", "stripe disr/node", "quality %",
         "slowest-stripe delay ms"],
        rows,
    )
    return ExperimentResult(
        experiment_id="ext-multitree",
        title="Single-tree vs multiple-tree delivery",
        table=table,
        data=data,
    )

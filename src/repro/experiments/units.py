"""First-class simulation units for the sweep-unit scheduler.

The paper's figures are *views* over a much smaller set of simulations:
Figs 4/7/8/10 read different metrics off the same five-protocol size
sweep, Fig 5 and the message accounting share its 8000-member column,
and Figs 6/9 share the probe runs.  With ``--jobs 1`` the in-process
caches in :mod:`~repro.experiments.common` already exploit that; with
``--jobs N`` the legacy pool sharded work *by figure* and every worker
re-simulated the shared runs from scratch.

This module makes the underlying simulations schedulable objects:

* :class:`ChurnUnit` / :class:`RecoveryUnit` identify one simulation by
  exactly the parameters the run caches key on — so a unit executed in a
  worker can be installed into the parent's cache under the very key the
  consuming figures will look up;
* figure modules declare their units with :func:`declare_units`; the
  pool plans over ``units_for(...)``, dedups across figures, executes
  each unit once, and replays the figures in-process as cheap demux
  (see :meth:`~repro.experiments.pool.ExperimentPool.run`);
* payloads cross process boundaries as canonical JSON built from the
  exact serializers on :class:`~repro.simulation.churn.ChurnRunResult` /
  :class:`~repro.simulation.streaming.RecoveryRunResult`, so floats are
  bit-identical on both sides and captured :class:`ObsUnit` traces
  replay byte-for-byte;
* with the durable store active, executed units are recorded under
  ``sim:churn`` / ``sim:recovery`` ledger ids and ``--resume`` replays
  them instead of re-simulating (:func:`run_unit_task`).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..obs.capture import ObsUnit
from ..recovery.schemes import RecoveryScheme
from ..simulation.churn import ChurnRunResult
from ..simulation.streaming import RecoveryRunResult
from ..store.keys import unit_key
from ..store.runstore import active_store, resume_enabled
from . import common
from .common import SweepSettings

#: Schema tag embedded in every unit payload (bump on layout changes so
#: a stale store entry can never be deserialized into the wrong shape).
PAYLOAD_VERSION = 1

#: Marker carried by probe units instead of a :class:`Session`: the
#: Fig. 6/9 probe is a deterministic function of (settings, population),
#: so the unit stays a small frozen value and the session is rebuilt
#: where the unit executes.
DEFAULT_PROBE = "default"


@dataclass(frozen=True)
class ChurnUnit:
    """One churn simulation: (protocol, population, settings, variant)."""

    protocol: str
    population: int
    settings: SweepSettings
    probe: Optional[str] = None
    switch_interval_s: Optional[float] = None
    #: Sorted (name, value) pairs — hashable form of the rost_flags dict.
    rost_flags: Tuple[Tuple[str, bool], ...] = ()

    kind = "churn"

    def cache_key(self) -> tuple:
        """The parent/worker run-cache key (environment-dependent: folds
        the invariant flag and obs fingerprint at call time)."""
        probe_lifetime_s = (
            common.DEFAULT_PROBE_LIFETIME_S if self.probe == DEFAULT_PROBE else None
        )
        return common.churn_key(
            self.protocol,
            self.population,
            self.settings,
            probe_lifetime_s=probe_lifetime_s,
            switch_interval_s=self.switch_interval_s,
            rost_flags=dict(self.rost_flags),
        )

    def store_doc(self) -> dict:
        """Canonical JSON-able identity for the durable store's ledger."""
        return {
            "unit": "churn",
            "version": PAYLOAD_VERSION,
            "protocol": self.protocol,
            "population": self.population,
            "settings": dataclasses.asdict(self.settings),
            "probe": self.probe,
            "switch_interval_s": self.switch_interval_s,
            "rost_flags": [list(pair) for pair in self.rost_flags],
            "checked": common._invariants_enabled(),
        }

    def execute(self) -> dict:
        """Run (or hit the local cache for) this unit; exact payload."""
        probe = None
        if self.probe == DEFAULT_PROBE:
            probe = common.default_probe(self.settings, self.population)
        result = common.churn_run(
            self.protocol,
            self.population,
            self.settings,
            probe=probe,
            switch_interval_s=self.switch_interval_s,
            rost_flags=dict(self.rost_flags) or None,
        )
        obs_unit = common.captured_churn_obs(self.cache_key())
        return _payload(self, result, obs_unit)

    def seed(self, payload: dict) -> None:
        """Install a deserialized payload into this process's run cache."""
        result = ChurnRunResult.from_payload(payload["result"])
        common.seed_churn_result(self.cache_key(), result, _obs_from(payload))


@dataclass(frozen=True)
class RecoveryUnit:
    """One recovery simulation: a scheme grid over one churn pass."""

    protocol: str
    population: int
    settings: SweepSettings
    schemes: Tuple[RecoveryScheme, ...]
    replica: int = 0

    kind = "recovery"

    def cache_key(self) -> tuple:
        return common.recovery_key(
            self.protocol,
            self.population,
            self.settings,
            [s.name for s in self.schemes],
            replica=self.replica,
        )

    def store_doc(self) -> dict:
        return {
            "unit": "recovery",
            "version": PAYLOAD_VERSION,
            "protocol": self.protocol,
            "population": self.population,
            "settings": dataclasses.asdict(self.settings),
            "schemes": [dataclasses.asdict(s) for s in self.schemes],
            "replica": self.replica,
            "checked": common._invariants_enabled(),
        }

    def execute(self) -> dict:
        result = common.recovery_run(
            self.protocol,
            self.population,
            self.settings,
            list(self.schemes),
            replica=self.replica,
        )
        obs_unit = common.captured_recovery_obs(self.cache_key())
        return _payload(self, result, obs_unit)

    def seed(self, payload: dict) -> None:
        result = RecoveryRunResult.from_payload(payload["result"])
        common.seed_recovery_result(self.cache_key(), result, _obs_from(payload))


SimulationUnit = Union[ChurnUnit, RecoveryUnit]


def _payload(unit: SimulationUnit, result, obs_unit: Optional[ObsUnit]) -> dict:
    return {
        "version": PAYLOAD_VERSION,
        "kind": unit.kind,
        "result": result.to_payload(),
        "obs": dataclasses.asdict(obs_unit) if obs_unit is not None else None,
    }


def _obs_from(payload: dict) -> Optional[ObsUnit]:
    data = payload.get("obs")
    if data is None:
        return None
    return ObsUnit(
        meta=data["meta"],
        trace_lines=data["trace_lines"],
        metrics=data["metrics"],
        profile=data["profile"],
    )


def sim_unit_store_key(unit: SimulationUnit) -> str:
    """The durable-store ledger key for one simulation unit.

    Reuses the canonical-JSON key folding of :mod:`repro.store.keys`;
    the obs fingerprint is folded in for the same reason figure-level
    job keys fold it (traced and untraced captures must never
    cross-replay).
    """
    from ..obs.capture import obs_fingerprint

    doc = unit.store_doc()
    return unit_key(
        f"sim:{doc['unit']}",
        unit.settings.scale,
        unit.settings.seed,
        sorted(doc.items()),
        obs_fingerprint(),
    )


def run_unit_task(unit: SimulationUnit) -> str:
    """Execute one unit (worker entry point); returns the payload JSON.

    The durable store composes at this level: with ``--resume`` a stored
    unit is replayed instead of simulated, and every genuinely executed
    unit is recorded, so a campaign killed mid-sweep resumes at unit —
    not figure — granularity.  Shipping the canonical JSON string (not
    the dict) across the process boundary makes the byte-exactness of
    the payload independent of pickle's float handling.
    """
    store = active_store()
    key = sim_unit_store_key(unit) if store is not None else None
    if store is not None and resume_enabled():
        stored = store.replay_sim_unit(key)
        if stored is not None:
            parsed = json.loads(stored)
            if parsed.get("version") == PAYLOAD_VERSION:
                return stored
            store.ledger.forget_unit(key)
    payload = unit.execute()
    blob = json.dumps(payload, separators=(",", ":"))
    if store is not None:
        store.record_sim_unit(key, unit, blob)
    return blob


def seed_unit(unit: SimulationUnit, payload_json: str) -> None:
    """Install a worker-produced payload into this process's caches."""
    unit.seed(json.loads(payload_json))


# -- figure declarations ----------------------------------------------------------

_DECLARERS: Dict[str, Callable[..., List[SimulationUnit]]] = {}


def declare_units(experiment_id: str):
    """Register the unit declarer for one experiment.

    The declarer receives the same kwargs as the experiment's ``run``
    (scale, seed, and any figure-specific overrides) and must return the
    exact simulation units ``run`` will consume — same parameters, same
    cache keys — or the demux phase would re-simulate in the parent.
    Experiments without a declarer (campaign drivers, the direct-sim
    extensions) are scheduled as whole jobs, as before.
    """

    def decorate(fn):
        _DECLARERS[experiment_id] = fn
        return fn

    return decorate


def units_for(
    experiment_id: str, scale: float, seed: int, **kwargs
) -> Optional[List[SimulationUnit]]:
    """The units one job would simulate, or ``None`` if not declared."""
    declarer = _DECLARERS.get(experiment_id)
    if declarer is None:
        return None
    return declarer(scale=scale, seed=seed, **kwargs)

"""Figure 8: average network stretch vs network size.

Stretch = overlay service delay over direct-unicast delay from the
source, averaged over members.
"""

from __future__ import annotations

from ..metrics.report import render_series_table
from .common import PAPER_SIZES, PROTOCOL_ORDER, SweepSettings, churn_run
from .registry import ExperimentResult, register
from .units import ChurnUnit, declare_units


@declare_units("fig08")
def units(scale: float = 1.0, seed: int = 42, sizes=PAPER_SIZES, **_):
    settings = SweepSettings(scale=scale, seed=seed)
    return [
        ChurnUnit(protocol, size, settings)
        for protocol in PROTOCOL_ORDER
        for size in sizes
    ]


@register(
    "fig08",
    "Avg. network stretch vs network size",
    "Figure 8",
)
def run(scale: float = 1.0, seed: int = 42, sizes=PAPER_SIZES, **_) -> ExperimentResult:
    settings = SweepSettings(scale=scale, seed=seed)
    series = []
    for protocol in PROTOCOL_ORDER:
        values = [
            churn_run(protocol, size, settings).avg_stretch for size in sizes
        ]
        series.append((protocol, values))
    table = render_series_table(
        f"Fig. 8 — avg network stretch (scale {scale:g})",
        "size",
        list(sizes),
        series,
    )
    return ExperimentResult(
        experiment_id="fig08",
        title="Avg. network stretch vs network size",
        table=table,
        data={"sizes": list(sizes), "series": dict(series)},
    )

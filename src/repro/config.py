"""Configuration dataclasses for every tunable the paper's evaluation uses.

Defaults follow Section 5 ("Simulation Setup") of the paper exactly:

* a GT-ITM transit-stub underlay of 15600 nodes (15360 stubs),
* link delays U[15,25] ms transit-transit, U[5,9] ms transit-stub and
  U[2,4] ms stub-stub,
* a unit media streaming rate, root bandwidth 100,
* member bandwidths Bounded Pareto(shape 1.2, lower 0.5, upper 100),
* member lifetimes lognormal(location 5.5, shape 2.0) with mean 1809 s,
* arrival rate from Little's law (lambda = M / mean lifetime),
* a 360 s default ROST switching interval,
* 5 s failure detection + 10 s rejoin = 15 s recovery window,
* a 10 packets/s stream with a 5 s (50-packet) playback buffer and
  per-node residual bandwidth U[0, 9] packets/s for error recovery.

Every experiment constructs one of these dataclasses (or derives a scaled
variant); nothing in the library reads module-level mutable globals.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Tuple

from .errors import ConfigError

#: Mean of lognormal(mu=5.5, sigma=2.0) = exp(5.5 + 2.0**2 / 2) ~= 1808.04 s.
#: The paper rounds this to 1809 s; we compute it exactly from the law.
PAPER_MEAN_LIFETIME_S = math.exp(5.5 + 2.0**2 / 2.0)


@dataclass(frozen=True)
class TopologyConfig:
    """Parameters of the transit-stub underlay generator.

    The defaults recreate the paper's 15600-node topology:
    ``transit_domains * transit_nodes_per_domain`` transit nodes (240) plus
    ``transit nodes * stub_domains_per_transit * stub_nodes_per_domain``
    stub nodes (15360).
    """

    transit_domains: int = 12
    transit_nodes_per_domain: int = 20
    stub_domains_per_transit: int = 4
    stub_nodes_per_domain: int = 16
    #: Probability of an extra edge between any two nodes of the same
    #: transit domain (domains are always connected by a random spanning
    #: tree first, so the graph is connected for any value in [0, 1]).
    transit_edge_prob: float = 0.5
    #: Extra-edge probability inside a stub domain.
    stub_edge_prob: float = 0.4
    #: Delay ranges in milliseconds, inclusive bounds, per the paper.
    transit_transit_delay_ms: Tuple[float, float] = (15.0, 25.0)
    transit_stub_delay_ms: Tuple[float, float] = (5.0, 9.0)
    stub_stub_delay_ms: Tuple[float, float] = (2.0, 4.0)
    seed: int = 1

    def __post_init__(self) -> None:
        for name in (
            "transit_domains",
            "transit_nodes_per_domain",
            "stub_domains_per_transit",
            "stub_nodes_per_domain",
        ):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1, got {getattr(self, name)}")
        for name in ("transit_edge_prob", "stub_edge_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {p}")
        for name in (
            "transit_transit_delay_ms",
            "transit_stub_delay_ms",
            "stub_stub_delay_ms",
        ):
            lo, hi = getattr(self, name)
            if lo < 0 or hi < lo:
                raise ConfigError(f"{name} must satisfy 0 <= lo <= hi, got {(lo, hi)}")

    @property
    def total_transit_nodes(self) -> int:
        return self.transit_domains * self.transit_nodes_per_domain

    @property
    def total_stub_nodes(self) -> int:
        return (
            self.total_transit_nodes
            * self.stub_domains_per_transit
            * self.stub_nodes_per_domain
        )

    @property
    def total_nodes(self) -> int:
        return self.total_transit_nodes + self.total_stub_nodes

    def scaled(self, scale: float) -> "TopologyConfig":
        """Return a smaller topology preserving the transit/stub structure.

        ``scale`` shrinks the number of stub *domains* per transit node and
        transit nodes per domain; the hierarchy shape is preserved so delay
        statistics stay comparable.
        """
        if scale <= 0:
            raise ConfigError(f"scale must be > 0, got {scale}")
        if scale >= 1.0:
            return self
        shrink = math.sqrt(scale)
        return dataclasses.replace(
            self,
            transit_nodes_per_domain=max(2, round(self.transit_nodes_per_domain * shrink)),
            stub_nodes_per_domain=max(2, round(self.stub_nodes_per_domain * shrink)),
        )


@dataclass(frozen=True)
class WorkloadConfig:
    """Member population, bandwidth and lifetime model.

    ``target_population`` is M, the intended steady-state number of
    concurrent members; the Poisson arrival rate is M / mean-lifetime
    (Little's law), as in the paper.
    """

    target_population: int = 8000
    #: Media streaming rate (bandwidth units); out-degree = floor(bw / rate).
    stream_rate: float = 1.0
    #: Root (source server) outbound bandwidth.
    root_bandwidth: float = 100.0
    #: Bounded Pareto parameters for member outbound bandwidth.
    pareto_shape: float = 1.2
    pareto_lower: float = 0.5
    pareto_upper: float = 100.0
    #: Lognormal lifetime parameters (location = mu of log, shape = sigma).
    lifetime_location: float = 5.5
    lifetime_shape: float = 2.0
    #: Cap on a single lifetime draw, in seconds.  The raw lognormal has a
    #: heavy tail (draws of years); capping at a long horizon keeps runs
    #: bounded without visibly altering the body of the distribution.
    lifetime_cap_s: float = 10 * 24 * 3600.0
    #: Age cap for the stationary initial population, i.e. how long the
    #: streaming session has been running when the simulation starts.  The
    #: paper observes live events a few hours old (its longitudinal
    #: figures span 300 minutes); with an unbounded equilibrium the
    #: lognormal tail seeds members that are weeks old, a regime no live
    #: broadcast reaches.
    max_initial_age_s: float = 2 * 3600.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.target_population < 1:
            raise ConfigError("target_population must be >= 1")
        if self.stream_rate <= 0:
            raise ConfigError("stream_rate must be > 0")
        if self.root_bandwidth < self.stream_rate:
            raise ConfigError("root_bandwidth must be >= stream_rate")
        if self.pareto_shape <= 0:
            raise ConfigError("pareto_shape must be > 0")
        if not 0 < self.pareto_lower < self.pareto_upper:
            raise ConfigError("need 0 < pareto_lower < pareto_upper")
        if self.lifetime_shape <= 0:
            raise ConfigError("lifetime_shape must be > 0")
        if self.lifetime_cap_s <= 0:
            raise ConfigError("lifetime_cap_s must be > 0")
        if self.max_initial_age_s < 0:
            raise ConfigError("max_initial_age_s must be >= 0")

    @property
    def mean_lifetime_s(self) -> float:
        """Mean of the (uncapped) lognormal lifetime distribution."""
        return math.exp(self.lifetime_location + self.lifetime_shape**2 / 2.0)

    @property
    def arrival_rate(self) -> float:
        """Poisson arrival rate lambda = M / mean lifetime (Little's law)."""
        return self.target_population / self.mean_lifetime_s


@dataclass(frozen=True)
class ProtocolConfig:
    """Parameters shared by the tree construction protocols."""

    #: How many known members a joining node queries (the paper uses "up to
    #: 100 nodes in the network").
    join_candidates: int = 100
    #: Size of each node's gossip-maintained partial view of the overlay.
    partial_view_size: int = 100
    #: Number of upper-tree members every view additionally contains.  The
    #: members closest to the root are the longest-advertised, best-known
    #: peers in any gossip overlay, and the paper's minimum-depth join
    #: "searches from the tree root downward" — which requires joiners to
    #: see the top of the tree reliably.  Set to 0 for purely uniform views.
    well_known_top: int = 50
    #: ROST switching interval in seconds (paper default 360 s).
    switch_interval_s: float = 360.0
    #: Wait before retrying a switch whose lock acquisition failed.
    lock_retry_wait_s: float = 15.0
    #: Failure detection time (time from abrupt departure to children
    #: noticing), per Section 6: 5 seconds.
    failure_detect_s: float = 5.0
    #: Time to re-find a parent and rejoin after detection: 10 seconds.
    rejoin_s: float = 10.0
    #: Proactive rescue plans (Yang & Fei, INFOCOM'04 — cited as [18]):
    #: members precompute a backup attachment point (the grandparent),
    #: so orphans whose plan is still valid skip the parent re-finding
    #: phase and reattach ``rescue_s`` after detection.  Off by default;
    #: the paper's evaluation uses the full 15 s window.
    proactive_rescue: bool = False
    #: Reattachment time after detection when a rescue plan applies.
    rescue_s: float = 1.0
    #: Number of age referees / bandwidth referees per node (both > 1 for
    #: fault tolerance, per Section 3.4).
    age_referees: int = 2
    bandwidth_referees: int = 2
    #: Size of the bandwidth *measurer* set: the nodes a newcomer
    #: concurrently transmits test data to, whose partial rates jointly
    #: form the aggregated bandwidth measurement (Section 3.4).
    bandwidth_measurers: int = 3
    #: Relative standard deviation of each measurer's partial-rate
    #: estimate.  The default models ideal measurement (the paper's
    #: implicit assumption); set > 0 to study noisy measurers.
    measurement_noise: float = 0.0

    def __post_init__(self) -> None:
        if self.join_candidates < 1:
            raise ConfigError("join_candidates must be >= 1")
        if self.partial_view_size < 1:
            raise ConfigError("partial_view_size must be >= 1")
        if self.well_known_top < 0:
            raise ConfigError("well_known_top must be >= 0")
        if self.switch_interval_s <= 0:
            raise ConfigError("switch_interval_s must be > 0")
        if self.lock_retry_wait_s < 0:
            raise ConfigError("lock_retry_wait_s must be >= 0")
        if self.failure_detect_s < 0 or self.rejoin_s < 0:
            raise ConfigError("failure_detect_s and rejoin_s must be >= 0")
        if self.rescue_s < 0:
            raise ConfigError("rescue_s must be >= 0")
        if self.age_referees < 2 or self.bandwidth_referees < 2:
            raise ConfigError("referee counts must be > 1 (fault tolerance)")
        if self.bandwidth_measurers < 1:
            raise ConfigError("bandwidth_measurers must be >= 1")
        if self.measurement_noise < 0:
            raise ConfigError("measurement_noise must be >= 0")

    @property
    def recovery_window_s(self) -> float:
        """Total outage window seen by a child of a failed node (15 s)."""
        return self.failure_detect_s + self.rejoin_s


@dataclass(frozen=True)
class RecoveryConfig:
    """Parameters of the CER / packet-level recovery experiments."""

    #: Stream packet rate (Section 6: 10 packets per second).
    packet_rate_pps: float = 10.0
    #: Playback buffer in seconds (default 5 s = 50 packets).
    buffer_s: float = 5.0
    #: Number of recovery nodes in the MLC group.
    group_size: int = 3
    #: Residual bandwidth per node, uniform in [0, residual_max_pps] pkt/s.
    residual_max_pps: float = 9.0
    #: Per-hop request/NACK forwarding latency budget, in seconds.  This is
    #: the time lost each time a recovery node must pass the request on.
    request_hop_s: float = 0.5
    #: How long after a packet's delivery deadline the member fires its
    #: first repair request.  Per Section 4.2 packet-loss detection is
    #: per-packet ("when a member detects a delivery deadline missing, it
    #: regards this as a packet loss") — a few packet periods plus a
    #: request RTT, *not* the 5 s parent-failure declaration that gates
    #: the rejoin.
    repair_detect_s: float = 0.5
    #: ELN sequence-gap threshold beyond which a member concludes its
    #: parent failed and launches a rejoin (Section 4.2: gap > 3).
    eln_gap_threshold: int = 3
    seed: int = 13

    def __post_init__(self) -> None:
        if self.packet_rate_pps <= 0:
            raise ConfigError("packet_rate_pps must be > 0")
        if self.buffer_s <= 0:
            raise ConfigError("buffer_s must be > 0")
        if self.group_size < 1:
            raise ConfigError("group_size must be >= 1")
        if self.residual_max_pps < 0:
            raise ConfigError("residual_max_pps must be >= 0")
        if self.request_hop_s < 0:
            raise ConfigError("request_hop_s must be >= 0")
        if self.repair_detect_s < 0:
            raise ConfigError("repair_detect_s must be >= 0")
        if self.eln_gap_threshold < 1:
            raise ConfigError("eln_gap_threshold must be >= 1")

    @property
    def buffer_packets(self) -> int:
        return int(round(self.buffer_s * self.packet_rate_pps))


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level bundle tying everything together for one simulation run."""

    topology: TopologyConfig = field(default_factory=TopologyConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)
    #: Warm-up time before measurements start, as a multiple of the mean
    #: lifetime.  The paper measures "in the steady state"; two mean
    #: lifetimes of warm-up is ample for the population to stabilise.
    warmup_lifetimes: float = 2.0
    #: Measurement window, as a multiple of the mean lifetime.
    measure_lifetimes: float = 2.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.warmup_lifetimes < 0:
            raise ConfigError("warmup_lifetimes must be >= 0")
        if self.measure_lifetimes <= 0:
            raise ConfigError("measure_lifetimes must be > 0")

    @property
    def warmup_s(self) -> float:
        return self.warmup_lifetimes * self.workload.mean_lifetime_s

    @property
    def measure_s(self) -> float:
        return self.measure_lifetimes * self.workload.mean_lifetime_s

    @property
    def horizon_s(self) -> float:
        return self.warmup_s + self.measure_s

    def with_population(self, population: int) -> "SimulationConfig":
        """Return a copy targeting a different steady-state population."""
        return dataclasses.replace(
            self,
            workload=dataclasses.replace(self.workload, target_population=population),
        )

    def with_switch_interval(self, interval_s: float) -> "SimulationConfig":
        """Return a copy using a different ROST switching interval."""
        return dataclasses.replace(
            self,
            protocol=dataclasses.replace(self.protocol, switch_interval_s=interval_s),
        )

    def with_seed(self, seed: int) -> "SimulationConfig":
        """Return a copy with new top-level and derived sub-seeds."""
        return dataclasses.replace(
            self,
            seed=seed,
            topology=dataclasses.replace(self.topology, seed=seed * 31 + 1),
            workload=dataclasses.replace(self.workload, seed=seed * 31 + 7),
            recovery=dataclasses.replace(self.recovery, seed=seed * 31 + 13),
        )


def config_to_dict(config: SimulationConfig) -> dict:
    """JSON-ready dict capturing every config field exactly.

    Inverse of :func:`config_from_dict`; used by the result-serialization
    layer (:mod:`repro.experiments.units`) to ship
    :class:`SimulationConfig` across process boundaries.  All fields are
    ints, floats, bools or tuples of floats, so a JSON round-trip is
    bit-exact (Python's float repr is shortest-round-trip).
    """
    return dataclasses.asdict(config)


def config_from_dict(data: dict) -> SimulationConfig:
    """Rebuild a :class:`SimulationConfig` from :func:`config_to_dict`.

    JSON turns the delay-range tuples into lists; they are restored here
    so the rebuilt config compares equal to (and hashes like) the
    original.
    """
    topology = dict(data["topology"])
    for name in (
        "transit_transit_delay_ms",
        "transit_stub_delay_ms",
        "stub_stub_delay_ms",
    ):
        topology[name] = tuple(topology[name])
    return SimulationConfig(
        topology=TopologyConfig(**topology),
        workload=WorkloadConfig(**data["workload"]),
        protocol=ProtocolConfig(**data["protocol"]),
        recovery=RecoveryConfig(**data["recovery"]),
        warmup_lifetimes=data["warmup_lifetimes"],
        measure_lifetimes=data["measure_lifetimes"],
        seed=data["seed"],
    )


def paper_config(
    population: int = 8000,
    seed: int = 42,
    scale: float = 1.0,
) -> SimulationConfig:
    """Build the paper's default configuration, optionally scaled down.

    ``scale`` multiplies the target population and shrinks the underlay
    proportionally; ``scale=1.0`` is the exact setup of Section 5.
    """
    if scale <= 0:
        raise ConfigError(f"scale must be > 0, got {scale}")
    workload = WorkloadConfig(target_population=max(8, int(round(population * scale))))
    topo = TopologyConfig().scaled(scale)
    cfg = SimulationConfig(topology=topo, workload=workload)
    return cfg.with_seed(seed)

"""Workload trace serialization.

A :class:`~repro.workload.generator.ChurnWorkload` fully determines the
member population a run sees; saving it lets experiments be re-run (and
shared) bit-for-bit without re-generating from seeds — e.g. to compare a
code change on a frozen trace, or to feed the same churn into an external
system.  The format is a single JSON document with a version tag and the
originating configuration, so loads validate against schema drift.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

from ..config import WorkloadConfig
from ..errors import ConfigError
from .generator import ChurnWorkload
from .session import RootSpec, Session

FORMAT_VERSION = 1

PathLike = Union[str, Path]


def workload_to_dict(workload: ChurnWorkload) -> dict:
    """A JSON-serialisable representation of the whole trace."""
    return {
        "format": "repro-churn-trace",
        "version": FORMAT_VERSION,
        "config": dataclasses.asdict(workload.config),
        "horizon_s": workload.horizon_s,
        "root": {
            "bandwidth": workload.root.bandwidth,
            "underlay_node": workload.root.underlay_node,
        },
        "sessions": [
            {
                "id": s.member_id,
                "arrival_s": s.arrival_s,
                "lifetime_s": s.lifetime_s,
                "bandwidth": s.bandwidth,
                "underlay_node": s.underlay_node,
                "initial_age_s": s.initial_age_s,
            }
            for s in workload.sessions
        ],
    }


def workload_from_dict(data: dict) -> ChurnWorkload:
    """Reconstruct a trace; raises :class:`ConfigError` on schema drift."""
    if data.get("format") != "repro-churn-trace":
        raise ConfigError(f"not a churn trace: format={data.get('format')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise ConfigError(
            f"unsupported trace version {data.get('version')!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    try:
        config = WorkloadConfig(**data["config"])
        root = RootSpec(
            bandwidth=data["root"]["bandwidth"],
            underlay_node=data["root"]["underlay_node"],
        )
        sessions = [
            Session(
                member_id=row["id"],
                arrival_s=row["arrival_s"],
                lifetime_s=row["lifetime_s"],
                bandwidth=row["bandwidth"],
                underlay_node=row["underlay_node"],
                initial_age_s=row.get("initial_age_s", 0.0),
            )
            for row in data["sessions"]
        ]
        horizon = float(data["horizon_s"])
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed churn trace: {exc}") from exc
    return ChurnWorkload(
        config=config, root=root, sessions=sessions, horizon_s=horizon
    )


def save_workload(workload: ChurnWorkload, path: PathLike) -> None:
    """Write the trace as JSON."""
    Path(path).write_text(json.dumps(workload_to_dict(workload)))


def load_workload(path: PathLike) -> ChurnWorkload:
    """Read a trace written by :func:`save_workload`."""
    return workload_from_dict(json.loads(Path(path).read_text()))

"""Session traces: the unit of workload consumed by the churn simulator."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class Session:
    """One member's visit to the multicast group.

    A session is fully determined before the simulation starts (arrival
    time, lifetime, bandwidth, attachment point), which lets every protocol
    be evaluated on a byte-identical workload.
    """

    member_id: int
    arrival_s: float
    lifetime_s: float
    #: Outbound (access uplink) bandwidth in stream-rate units.
    bandwidth: float
    #: Underlay stub node this member sits on.
    underlay_node: int
    #: Time the member had already spent in the overlay before the
    #: simulation started (> 0 only for the stationary initial population;
    #: ages matter to the time-ordered and BTP-based protocols).
    initial_age_s: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ConfigError(f"negative arrival time {self.arrival_s}")
        if self.lifetime_s <= 0:
            raise ConfigError(f"lifetime must be > 0, got {self.lifetime_s}")
        if self.bandwidth < 0:
            raise ConfigError(f"negative bandwidth {self.bandwidth}")
        if self.initial_age_s < 0:
            raise ConfigError(f"negative initial age {self.initial_age_s}")
        if self.initial_age_s > 0 and self.arrival_s > 0:
            raise ConfigError("only initial (t=0) members may carry an age")

    @property
    def departure_s(self) -> float:
        return self.arrival_s + self.lifetime_s

    def out_degree(self, stream_rate: float) -> int:
        """Number of full-rate children this member can serve."""
        return int(self.bandwidth / stream_rate)


@dataclass(frozen=True)
class RootSpec:
    """The multicast source: present for the whole run, never fails."""

    bandwidth: float
    underlay_node: int

    def out_degree(self, stream_rate: float) -> int:
        return int(self.bandwidth / stream_rate)

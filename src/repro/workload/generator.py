"""Churn workload generation: Poisson arrivals sized by Little's law.

A :class:`ChurnWorkload` is a fully materialised, sorted list of
:class:`~repro.workload.session.Session` objects plus the root
specification.  Generating the whole trace up front (rather than drawing
lazily inside the simulator) is what allows the five tree protocols to be
compared on *identical* member populations — the comparison methodology
the paper's figures rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..config import WorkloadConfig
from ..errors import ConfigError
from .distributions import BoundedPareto, LogNormalLifetime
from .session import RootSpec, Session


@dataclass(frozen=True)
class ChurnWorkload:
    """A complete, immutable churn trace for one simulation run."""

    config: WorkloadConfig
    root: RootSpec
    #: Sessions sorted by arrival time; member ids are 1..len(sessions)
    #: (id 0 is reserved for the root).
    sessions: List[Session]
    horizon_s: float

    def __len__(self) -> int:
        return len(self.sessions)

    def population_at(self, t: float) -> int:
        """Number of member sessions alive at virtual time ``t``."""
        return sum(1 for s in self.sessions if s.arrival_s <= t < s.departure_s)

    def expected_population(self) -> float:
        """Little's-law steady-state population (the configured target M)."""
        return self.config.target_population


def generate_workload(
    config: WorkloadConfig,
    horizon_s: float,
    attach_nodes: Sequence[int],
    rng: np.random.Generator,
    root_node: Optional[int] = None,
    probe: Optional[Session] = None,
    prepopulate: bool = True,
) -> ChurnWorkload:
    """Generate a churn trace covering ``[0, horizon_s]``.

    ``attach_nodes`` is the pool of underlay stub nodes members may sit on
    (sampled uniformly with replacement, like the paper's "a fraction of
    [stub nodes] are randomly selected to participate").  ``root_node``
    defaults to a uniformly random attach node.  If a ``probe`` session is
    given (the "typical member" of Figs. 6 and 9), it is spliced into the
    trace with the reserved id it carries.

    With ``prepopulate`` (default), the trace starts with
    ``target_population`` members already present at t=0, their (age,
    residual lifetime) pairs drawn from the equilibrium renewal
    distribution — i.e. the system *begins* in the steady state the paper
    measures in.  Heavy-tailed lognormal lifetimes make reaching that
    state by pure arrivals impractically slow (the population integral
    converges over hundreds of mean lifetimes), so stationary
    initialisation is both faster and statistically correct.
    """
    if horizon_s <= 0:
        raise ConfigError(f"horizon must be > 0, got {horizon_s}")
    if not attach_nodes:
        raise ConfigError("attach_nodes must be non-empty")

    bandwidth_dist = BoundedPareto(
        config.pareto_shape, config.pareto_lower, config.pareto_upper
    )
    lifetime_dist = LogNormalLifetime(
        config.lifetime_location, config.lifetime_shape, cap=config.lifetime_cap_s
    )

    rate = config.arrival_rate
    # Expected count plus generous head-room, then trim: vectorised draws
    # are far cheaper than an exponential-gap loop in Python.
    expected = rate * horizon_s
    budget = int(expected + 6.0 * np.sqrt(expected) + 16)
    gaps = rng.exponential(1.0 / rate, size=budget)
    arrivals = np.cumsum(gaps)
    while arrivals[-1] < horizon_s:  # astronomically rare; stay correct anyway
        extra = rng.exponential(1.0 / rate, size=budget)
        arrivals = np.concatenate([arrivals, arrivals[-1] + np.cumsum(extra)])
    arrivals = arrivals[arrivals <= horizon_s]

    count = len(arrivals)
    lifetimes = lifetime_dist.sample(rng, size=count)
    bandwidths = bandwidth_dist.sample(rng, size=count)
    nodes = rng.choice(np.asarray(attach_nodes), size=count, replace=True)

    sessions = [
        Session(
            member_id=i + 1,
            arrival_s=float(arrivals[i]),
            lifetime_s=float(lifetimes[i]),
            bandwidth=float(bandwidths[i]),
            underlay_node=int(nodes[i]),
        )
        for i in range(count)
    ]

    if prepopulate:
        initial = config.target_population
        # A member alive at a random instant has a length-biased total
        # lifetime, split uniformly into (age, residual).
        totals = lifetime_dist.sample_length_biased(rng, size=initial)
        ages = rng.uniform(0.0, 1.0, size=initial) * totals
        residuals = np.maximum(totals - ages, 1e-6)
        # The broadcast has only been running for so long; members cannot
        # be older than the stream itself.
        ages = np.minimum(ages, config.max_initial_age_s)
        initial_bw = bandwidth_dist.sample(rng, size=initial)
        initial_nodes = rng.choice(np.asarray(attach_nodes), size=initial, replace=True)
        for i in range(initial):
            sessions.append(
                Session(
                    member_id=count + i + 1,
                    arrival_s=0.0,
                    lifetime_s=float(residuals[i]),
                    bandwidth=float(initial_bw[i]),
                    underlay_node=int(initial_nodes[i]),
                    initial_age_s=float(ages[i]),
                )
            )

    if probe is not None:
        sessions.append(probe)
    sessions.sort(key=lambda s: s.arrival_s)

    if root_node is None:
        root_node = int(rng.choice(np.asarray(attach_nodes)))
    root = RootSpec(bandwidth=config.root_bandwidth, underlay_node=root_node)

    return ChurnWorkload(
        config=config, root=root, sessions=sessions, horizon_s=horizon_s
    )

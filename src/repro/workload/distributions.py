"""The two distributions the paper's workload is built from.

Both are implemented via inverse-CDF sampling on a caller-supplied numpy
generator, keeping all randomness under the simulation's named-stream
discipline (:class:`repro.sim.rng.RngRegistry`).
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from ..errors import ConfigError

ArrayOrFloat = Union[float, np.ndarray]


class BoundedPareto:
    """Bounded Pareto distribution on ``[lower, upper]`` with shape alpha.

    CDF: ``F(x) = (1 - (L/x)^a) / (1 - (L/H)^a)`` for ``L <= x <= H``.

    With the paper's parameters (a=1.2, L=0.5, H=100) the probability of a
    draw below the unit streaming rate — i.e. of a member being a
    free-rider — is ~0.56, matching the paper's quoted 55.5%.
    """

    def __init__(self, shape: float, lower: float, upper: float):
        if shape <= 0:
            raise ConfigError(f"shape must be > 0, got {shape}")
        if not 0 < lower < upper:
            raise ConfigError(f"need 0 < lower < upper, got {lower}, {upper}")
        self.shape = shape
        self.lower = lower
        self.upper = upper
        self._ratio_pow = (lower / upper) ** shape

    def cdf(self, x: ArrayOrFloat) -> ArrayOrFloat:
        """P(X <= x), clamped to [0, 1] outside the support."""
        x = np.clip(x, self.lower, self.upper)
        return (1.0 - (self.lower / x) ** self.shape) / (1.0 - self._ratio_pow)

    def ppf(self, u: ArrayOrFloat) -> ArrayOrFloat:
        """Inverse CDF (quantile function) for ``u`` in [0, 1]."""
        u = np.asarray(u, dtype=float)
        if np.any((u < 0) | (u > 1)):
            raise ConfigError("quantile argument must lie in [0, 1]")
        value = self.lower * (1.0 - u * (1.0 - self._ratio_pow)) ** (-1.0 / self.shape)
        return float(value) if value.ndim == 0 else value

    def mean(self) -> float:
        """Analytic mean of the bounded Pareto."""
        a, low, high = self.shape, self.lower, self.upper
        if math.isclose(a, 1.0):
            return math.log(high / low) * low / (1.0 - low / high)
        num = low**a / (1.0 - (low / high) ** a)
        return num * a / (a - 1.0) * (low ** (1.0 - a) - high ** (1.0 - a))

    def sample(self, rng: np.random.Generator, size: int = None) -> ArrayOrFloat:
        """Draw one value (``size=None``) or an array of ``size`` values."""
        if size is None:
            return float(self.ppf(rng.random()))
        return self.ppf(rng.random(size))


class LogNormalLifetime:
    """Lognormal session lifetimes, optionally capped.

    ``location`` and ``shape`` are the mu and sigma of the underlying
    normal, matching the paper's "location and shape parameters set to 5.5
    and 2.0" (mean ``exp(mu + sigma^2/2)`` ~= 1809 s).  The heavy upper
    tail is capped at ``cap`` seconds so that single sessions cannot exceed
    the experiment horizon by orders of magnitude; with the default 10-day
    cap less than 0.7% of the mass is affected.
    """

    def __init__(self, location: float, shape: float, cap: float = math.inf):
        if shape <= 0:
            raise ConfigError(f"shape must be > 0, got {shape}")
        if cap <= 0:
            raise ConfigError(f"cap must be > 0, got {cap}")
        self.location = location
        self.shape = shape
        self.cap = cap

    def mean(self) -> float:
        """Mean of the *uncapped* lognormal."""
        return math.exp(self.location + self.shape**2 / 2.0)

    def median(self) -> float:
        return math.exp(self.location)

    def sample(self, rng: np.random.Generator, size: int = None) -> ArrayOrFloat:
        """Draw one lifetime (``size=None``) or an array of them."""
        draws = rng.lognormal(self.location, self.shape, size)
        if size is None:
            return float(min(draws, self.cap))
        return np.minimum(draws, self.cap)

    def sample_length_biased(
        self, rng: np.random.Generator, size: int = None
    ) -> ArrayOrFloat:
        """Draw from the *length-biased* lifetime distribution.

        A member observed alive at a random instant of a stationary system
        has a total lifetime distributed with density ``l * f(l) / E[L]``
        — long sessions are over-represented in any cross-section.  For a
        lognormal this is again lognormal, with location shifted by
        ``sigma^2``.  Together with a uniformly split (age, residual) pair
        this yields an *exactly stationary* initial population — how the
        simulation realises the paper's "steady state".
        """
        draws = rng.lognormal(self.location + self.shape**2, self.shape, size)
        if size is None:
            return float(min(draws, self.cap))
        return np.minimum(draws, self.cap)

"""Workload model: member bandwidths, lifetimes and the arrival process.

Implements Section 5 of the paper: outbound bandwidths follow a Bounded
Pareto distribution (shape 1.2, bounds [0.5, 100]) so that ~55% of members
are free-riders; lifetimes follow a lognormal (location 5.5, shape 2.0)
with mean ~1809 s; arrivals are Poisson with rate fixed by Little's law so
the steady-state population hits the experiment's target M.
"""

from .distributions import BoundedPareto, LogNormalLifetime
from .generator import ChurnWorkload, generate_workload
from .session import RootSpec, Session
from .trace_io import load_workload, save_workload

__all__ = [
    "BoundedPareto",
    "ChurnWorkload",
    "LogNormalLifetime",
    "RootSpec",
    "Session",
    "generate_workload",
    "load_workload",
    "save_workload",
]

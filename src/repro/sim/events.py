"""Event and event-queue primitives for the discrete-event kernel.

Events are ordered by ``(time, priority, sequence)``.  The monotonically
increasing sequence number makes ordering total and deterministic: two
events scheduled for the same instant at the same priority fire in the
order they were scheduled, which keeps every simulation run exactly
reproducible for a given seed.

The heap itself stores plain ``(time, priority, seq, event)`` tuples, so
sift operations compare small tuples of floats/ints in C instead of
dispatching to rich-comparison methods on :class:`Event` instances; the
``seq`` component is unique, so the trailing ``event`` element is never
compared.  :class:`Event` uses ``__slots__`` to keep instances small and
attribute access off the instance-dict path — together these are the
kernel's single hottest allocation and comparison site.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from ..errors import SimulationError


class Event:
    """A scheduled callback.

    Instances are created by :meth:`EventQueue.schedule`; user code normally
    holds one only to :meth:`cancel` it.
    """

    __slots__ = ("time", "priority", "seq", "action", "label", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        action: Callable[[], None],
        label: str = "",
        cancelled: bool = False,
        _queue: Optional["EventQueue"] = None,
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.label = label
        self.cancelled = cancelled
        self._queue = _queue

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, priority={self.priority!r}, "
            f"seq={self.seq!r}, label={self.label!r}, "
            f"cancelled={self.cancelled!r})"
        )

    def _key(self):
        return (self.time, self.priority, self.seq)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._key() == other._key()

    def __lt__(self, other) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._key() < other._key()

    def __le__(self, other) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._key() <= other._key()

    def __gt__(self, other) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._key() > other._key()

    def __ge__(self, other) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._key() >= other._key()

    def __hash__(self) -> int:
        return hash((Event, self.seq))

    def cancel(self) -> None:
        """Mark the event so it is skipped when it reaches the queue head.

        Cancellation is lazy (O(1)): the entry stays in the heap and is
        dropped when it surfaces.  Cancelling twice is a no-op.
        """
        if not self.cancelled:
            self.cancelled = True
            if self._queue is not None:
                self._queue._live -= 1


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def schedule(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Insert ``action`` to fire at ``time``; returns a cancellable handle."""
        if time != time:  # NaN guard
            raise SimulationError("cannot schedule an event at time NaN")
        seq = next(self._seq)
        event = Event(time, priority, seq, action, label, False, self)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Event:
        """Remove and return the next live event."""
        self._drop_cancelled_head()
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        event = heapq.heappop(self._heap)[3]
        self._live -= 1
        # The event has left the queue: cancelling its handle later (e.g. a
        # timer disarmed after firing) must not touch the live count.
        event._queue = None
        return event

    def live_events(self):
        """Iterate over the pending (non-cancelled) events, heap order.

        O(n) diagnostic surface for audits and invariant checking; the
        hot path never calls it.  The iteration order is the raw heap
        layout, not firing order.
        """
        for entry in self._heap:
            event = entry[3]
            if not event.cancelled:
                yield event

    def _drop_cancelled_head(self) -> None:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)

    def clear(self) -> None:
        """Discard every pending event."""
        for entry in self._heap:
            entry[3].cancelled = True
        self._heap.clear()
        self._live = 0

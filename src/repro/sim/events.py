"""Event and event-queue primitives for the discrete-event kernel.

Events are ordered by ``(time, priority, sequence)``.  The monotonically
increasing sequence number makes ordering total and deterministic: two
events scheduled for the same instant at the same priority fire in the
order they were scheduled, which keeps every simulation run exactly
reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Instances are created by :meth:`EventQueue.schedule`; user code normally
    holds one only to :meth:`cancel` it.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    _queue: Optional["EventQueue"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so it is skipped when it reaches the queue head.

        Cancellation is lazy (O(1)): the entry stays in the heap and is
        dropped when it surfaces.  Cancelling twice is a no-op.
        """
        if not self.cancelled:
            self.cancelled = True
            if self._queue is not None:
                self._queue._live -= 1


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def schedule(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Insert ``action`` to fire at ``time``; returns a cancellable handle."""
        if time != time:  # NaN guard
            raise SimulationError("cannot schedule an event at time NaN")
        event = Event(time, priority, next(self._seq), action, label, False, self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Event:
        """Remove and return the next live event."""
        self._drop_cancelled_head()
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def clear(self) -> None:
        """Discard every pending event."""
        for event in self._heap:
            event.cancelled = True
        self._heap.clear()
        self._live = 0

"""The simulation engine: a virtual clock driving an event queue."""

from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter
from typing import Callable, Optional

from ..errors import SimulationError
from .events import Event, EventQueue

#: Process-wide count of events dispatched by every Simulator instance.
#: Accumulated once per run (not per event) so the hot loop stays clean;
#: benchmarks snapshot it around a figure to report per-figure workload.
_TOTAL_EVENTS = 0


def total_events_processed() -> int:
    """Events dispatched by all simulators in this process so far."""
    return _TOTAL_EVENTS


class Simulator:
    """Single-threaded discrete-event simulator.

    Example::

        sim = Simulator()
        sim.schedule_at(10.0, lambda: print("fires at t=10"))
        sim.run_until(100.0)
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0
        self._running = False
        #: Optional per-event observation hooks: ``trace_pre(event)`` runs
        #: after the clock advances but before the action, ``trace_post``
        #: after the action returns (a quiescent point — no handler is on
        #: the stack).  ``None`` (the default) costs one attribute check
        #: per event; used by :mod:`repro.invariants`.  Hooks must be
        #: installed *before* ``run``/``run_until`` starts — the dispatch
        #: loop snapshots them once at entry, so installing one from
        #: inside an event action takes effect at the next run call.
        self.trace_pre: Optional[Callable[[Event], None]] = None
        self.trace_post: Optional[Callable[[Event], None]] = None
        #: Optional profiling hook: ``profile(event, wall_s)`` runs after
        #: each action with its wall-clock duration in seconds.  ``None``
        #: (the default) keeps the dispatch loop free of any timing calls;
        #: used by :mod:`repro.obs` for per-event-type attribution.
        self.profile: Optional[Callable[[Event, float], None]] = None

    @property
    def event_queue(self) -> EventQueue:
        """The underlying queue (read-only diagnostic surface)."""
        return self._queue

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-fired events."""
        return len(self._queue)

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute virtual time ``time``.

        Scheduling in the past raises :class:`SimulationError` — silent
        time travel is a classic source of unreproducible runs.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        if time != time:  # NaN guard (mirrors EventQueue.schedule)
            raise SimulationError("cannot schedule an event at time NaN")
        queue = self._queue
        seq = next(queue._seq)
        event = Event(time, priority, seq, action, label, False, queue)
        heappush(queue._heap, (time, priority, seq, event))
        queue._live += 1
        return event

    def schedule_in(
        self,
        delay: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` after a relative ``delay`` (>= 0) seconds.

        The queue insert is inlined (same steps as ``EventQueue.schedule``)
        because this is the single hottest scheduling entry point — every
        timer in every simulation goes through here.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self._now + delay
        if time != time:  # NaN guard (mirrors EventQueue.schedule)
            raise SimulationError("cannot schedule an event at time NaN")
        queue = self._queue
        seq = next(queue._seq)
        event = Event(time, priority, seq, action, label, False, queue)
        heappush(queue._heap, (time, priority, seq, event))
        queue._live += 1
        return event

    def run_until(self, end_time: float) -> None:
        """Process events in order until virtual time reaches ``end_time``.

        The clock is left exactly at ``end_time`` even if the queue drains
        earlier, so back-to-back ``run_until`` calls compose naturally.
        """
        if end_time < self._now:
            raise SimulationError(
                f"run_until({end_time}) but now is t={self._now}"
            )
        if self._running:
            raise SimulationError("run_until re-entered from an event action")
        self._running = True
        entered = self._events_processed
        # Dispatch-loop fast path: the queue head test and pop are inlined
        # (same steps as EventQueue.peek_time + EventQueue.pop, minus most
        # of the method-call overhead) and the observation hooks are
        # snapshotted once — per-event cost is what pays for 300k+ events
        # per figure.  The cancelled-head filter stays a queue method so
        # the filtering policy has exactly one implementation (it is also
        # the seam the mutation-smoke suite sabotages to prove the
        # invariant checker catches cancelled events firing).
        queue = self._queue
        heap = queue._heap
        drop_cancelled = queue._drop_cancelled_head
        trace_pre = self.trace_pre
        trace_post = self.trace_post
        profile = self.profile
        processed = entered
        try:
            while True:
                drop_cancelled()
                if not heap or heap[0][0] > end_time:
                    break
                event = heappop(heap)[3]
                queue._live -= 1
                event._queue = None
                self._now = event.time
                processed += 1
                if trace_pre is not None:
                    trace_pre(event)
                if profile is None:
                    event.action()
                else:
                    started = perf_counter()
                    event.action()
                    profile(event, perf_counter() - started)
                if trace_post is not None:
                    trace_post(event)
            self._now = end_time
        finally:
            self._running = False
            self._events_processed = processed
            global _TOTAL_EVENTS
            _TOTAL_EVENTS += processed - entered

    def run(self, max_events: Optional[int] = None) -> None:
        """Drain the queue completely (or up to ``max_events`` events)."""
        if self._running:
            raise SimulationError("run re-entered from an event action")
        self._running = True
        fired = 0
        entered = self._events_processed
        # Same inlined fast path as run_until (see comment there).
        queue = self._queue
        heap = queue._heap
        drop_cancelled = queue._drop_cancelled_head
        trace_pre = self.trace_pre
        trace_post = self.trace_post
        profile = self.profile
        processed = entered
        try:
            while queue._live > 0:
                if max_events is not None and fired >= max_events:
                    break
                drop_cancelled()
                event = heappop(heap)[3]
                queue._live -= 1
                event._queue = None
                self._now = event.time
                processed += 1
                if trace_pre is not None:
                    trace_pre(event)
                if profile is None:
                    event.action()
                else:
                    started = perf_counter()
                    event.action()
                    profile(event, perf_counter() - started)
                if trace_post is not None:
                    trace_post(event)
                fired += 1
        finally:
            self._running = False
            self._events_processed = processed
            global _TOTAL_EVENTS
            _TOTAL_EVENTS += processed - entered

    def reset(self) -> None:
        """Clear all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._events_processed = 0

"""The simulation engine: a virtual clock driving an event queue."""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Optional

from ..errors import SimulationError
from .events import Event, EventQueue


class Simulator:
    """Single-threaded discrete-event simulator.

    Example::

        sim = Simulator()
        sim.schedule_at(10.0, lambda: print("fires at t=10"))
        sim.run_until(100.0)
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0
        self._running = False
        #: Optional per-event observation hooks: ``trace_pre(event)`` runs
        #: after the clock advances but before the action, ``trace_post``
        #: after the action returns (a quiescent point — no handler is on
        #: the stack).  ``None`` (the default) costs one attribute check
        #: per event; used by :mod:`repro.invariants`.
        self.trace_pre: Optional[Callable[[Event], None]] = None
        self.trace_post: Optional[Callable[[Event], None]] = None
        #: Optional profiling hook: ``profile(event, wall_s)`` runs after
        #: each action with its wall-clock duration in seconds.  ``None``
        #: (the default) keeps the dispatch loop free of any timing calls;
        #: used by :mod:`repro.obs` for per-event-type attribution.
        self.profile: Optional[Callable[[Event, float], None]] = None

    @property
    def event_queue(self) -> EventQueue:
        """The underlying queue (read-only diagnostic surface)."""
        return self._queue

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-fired events."""
        return len(self._queue)

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute virtual time ``time``.

        Scheduling in the past raises :class:`SimulationError` — silent
        time travel is a classic source of unreproducible runs.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        return self._queue.schedule(time, action, priority, label)

    def schedule_in(
        self,
        delay: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` after a relative ``delay`` (>= 0) seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self._queue.schedule(self._now + delay, action, priority, label)

    def run_until(self, end_time: float) -> None:
        """Process events in order until virtual time reaches ``end_time``.

        The clock is left exactly at ``end_time`` even if the queue drains
        earlier, so back-to-back ``run_until`` calls compose naturally.
        """
        if end_time < self._now:
            raise SimulationError(
                f"run_until({end_time}) but now is t={self._now}"
            )
        if self._running:
            raise SimulationError("run_until re-entered from an event action")
        self._running = True
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > end_time:
                    break
                event = self._queue.pop()
                self._now = event.time
                self._events_processed += 1
                if self.trace_pre is not None:
                    self.trace_pre(event)
                if self.profile is None:
                    event.action()
                else:
                    started = perf_counter()
                    event.action()
                    self.profile(event, perf_counter() - started)
                if self.trace_post is not None:
                    self.trace_post(event)
            self._now = end_time
        finally:
            self._running = False

    def run(self, max_events: Optional[int] = None) -> None:
        """Drain the queue completely (or up to ``max_events`` events)."""
        if self._running:
            raise SimulationError("run re-entered from an event action")
        self._running = True
        fired = 0
        try:
            while self._queue:
                if max_events is not None and fired >= max_events:
                    break
                event = self._queue.pop()
                self._now = event.time
                self._events_processed += 1
                if self.trace_pre is not None:
                    self.trace_pre(event)
                if self.profile is None:
                    event.action()
                else:
                    started = perf_counter()
                    event.action()
                    self.profile(event, perf_counter() - started)
                if self.trace_post is not None:
                    self.trace_post(event)
                fired += 1
        finally:
            self._running = False

    def reset(self) -> None:
        """Clear all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._events_processed = 0

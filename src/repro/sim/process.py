"""Timer and periodic-process helpers built on top of :class:`Simulator`.

These are thin conveniences: protocols in this codebase (e.g. the ROST
switching loop, gossip refresh) are naturally expressed as "do X every T
seconds, with optional jitter, until stopped".
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import SimulationError
from .engine import Simulator
from .events import Event


class Timer:
    """A restartable one-shot timer.

    ``start`` schedules the callback after the timer's delay; ``restart``
    cancels any pending firing and schedules anew (the idiom for failure
    detectors and retry backoffs).
    """

    def __init__(self, sim: Simulator, delay: float, action: Callable[[], None]):
        if delay < 0:
            raise SimulationError(f"negative timer delay {delay}")
        self._sim = sim
        self.delay = delay
        self._action = action
        self._event: Optional[Event] = None

    @property
    def pending(self) -> bool:
        """True if the timer is armed and has not fired or been cancelled."""
        return self._event is not None and not self._event.cancelled

    def start(self) -> None:
        """Arm the timer; raises if it is already armed."""
        if self.pending:
            raise SimulationError("timer already armed")
        self._event = self._sim.schedule_in(self.delay, self._fire)

    def restart(self) -> None:
        """(Re-)arm the timer, cancelling any pending firing first."""
        self.cancel()
        self._event = self._sim.schedule_in(self.delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if armed; no-op otherwise."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._action()


class PeriodicProcess:
    """Repeats an action every ``interval`` seconds until stopped.

    An optional ``jitter`` callable returning a per-round offset decorrelates
    the phase of many concurrent processes (e.g. per-node switching loops),
    mirroring how real deployments avoid synchronized rounds.

    Round ``k`` fires at ``epoch + k * interval (+ jitter)``, computed
    multiplicatively from the anchor set at :meth:`start` — **not** by
    accumulating ``now + interval`` — so long-horizon processes stay
    phase-exact: a million rounds of a non-representable interval (say
    0.1 s) accumulate no floating-point drift, and jitter perturbs each
    round around the nominal grid instead of permanently shifting the
    phase.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        action: Callable[[], None],
        jitter: Optional[Callable[[], float]] = None,
    ):
        if interval <= 0:
            raise SimulationError(f"period must be > 0, got {interval}")
        self._sim = sim
        self.interval = interval
        self._action = action
        self._jitter = jitter
        self._event: Optional[Event] = None
        self._stopped = True
        self._epoch = 0.0
        self._round = 0

    @property
    def running(self) -> bool:
        return not self._stopped

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Begin firing; the first round happens after ``initial_delay``
        (default: one full interval, plus jitter if configured)."""
        if not self._stopped:
            raise SimulationError("periodic process already running")
        self._stopped = False
        delay = self.interval if initial_delay is None else initial_delay
        # The anchor excludes jitter: every later round is placed on the
        # epoch + k*interval grid, with jitter a per-round perturbation.
        self._epoch = self._sim.now + delay
        self._round = 0
        self._schedule_round()

    def stop(self) -> None:
        """Stop firing; safe to call multiple times or from the action."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _draw_jitter(self) -> float:
        return self._jitter() if self._jitter is not None else 0.0

    def _schedule_round(self) -> None:
        target = self._epoch + self._round * self.interval + self._draw_jitter()
        self._event = self._sim.schedule_at(max(self._sim.now, target), self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self._action()
        if self._stopped:  # the action may have stopped us
            return
        self._round += 1
        self._schedule_round()

"""Discrete-event simulation kernel.

A deliberately small, dependency-free kernel: a binary-heap event queue
(:mod:`repro.sim.events`), a virtual-clock engine with run-until semantics
(:mod:`repro.sim.engine`), periodic/one-shot process helpers
(:mod:`repro.sim.process`) and named, independently seeded RNG streams
(:mod:`repro.sim.rng`).
"""

from .engine import Simulator
from .events import Event, EventQueue
from .process import PeriodicProcess, Timer
from .rng import RngRegistry

__all__ = [
    "Event",
    "EventQueue",
    "PeriodicProcess",
    "RngRegistry",
    "Simulator",
    "Timer",
]

"""Named, independently seeded random streams.

Distinct aspects of a simulation (topology wiring, bandwidth draws,
lifetime draws, tie-breaking, residual bandwidths, ...) each get their own
``numpy`` Generator derived from one root seed.  Adding a new consumer of
randomness therefore never perturbs the draw sequence of existing ones —
the property that makes A/B comparisons between protocols run on *the same*
workload meaningful.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RngRegistry:
    """Factory of named :class:`numpy.random.Generator` streams.

    Streams are derived with ``SeedSequence.spawn``-style child seeding
    keyed by the stream name, so the mapping name -> stream is stable
    across runs and insensitive to creation order.
    """

    def __init__(self, seed: int):
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            # Key the child seed on a stable hash of the name so that the
            # stream does not depend on which other streams exist.
            digest = 0
            for ch in name:
                digest = (digest * 131 + ord(ch)) % (2**31 - 1)
            seq = np.random.SeedSequence([self._seed, digest])
            generator = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = generator
        return generator

    def fork(self, salt: int) -> "RngRegistry":
        """Derive an independent registry (e.g. for a replica run)."""
        return RngRegistry(self._seed * 1_000_003 + salt)

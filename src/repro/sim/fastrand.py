"""Draw-exact batched replication of ``Generator.integers(0, n)``.

The membership service's rejection-sampling loop is the hottest code in a
churn run: every join/recovery query makes ~100 scalar
``Generator.integers(0, population)`` calls, each paying the full
cython-call overhead for one 32-bit Lemire draw.  This module replays the
*identical* draw sequence from batched raw 64-bit outputs of the
underlying PCG64 bit generator and then rewinds the generator to exactly
the state the scalar loop would have left, so interleaved ``choice()`` /
``random()`` calls on the same stream stay byte-identical.

How numpy draws a bounded integer for ``0 < n <= 2**32`` (the
``buffered_bounded_lemire_uint32`` path):

* ``next_uint32`` splits each raw 64-bit output into two halves: the low
  half is returned first and the high half is buffered in the bit
  generator state (``has_uint32`` / ``uinteger``), persisting across
  calls;
* each draw computes ``m = next_uint32() * n`` and rejects while
  ``m & 0xffffffff < (2**32 - n) % n``; the value is ``m >> 32``.

Both the splitting and the rejection are deterministic, so a batch of raw
outputs decodes into the exact scalar draw sequence with vectorized
numpy arithmetic.  State resync after a partial batch uses
``bit_generator.advance`` (to rewind unused raws) plus the state-dict
setter (to restore a pending half-buffer).

Safety: the replication is verified once per process against an actual
``Generator`` on a cloned state (:func:`replication_ok`); any mismatch —
e.g. a future numpy changing the bounded-integer path — permanently
disables the fast path, falling back to scalar draws.  Wrong results are
impossible; only speed is at stake.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

_M32 = (1 << 32) - 1
_PERIOD = 1 << 128
#: Bounds verified against numpy's implementation (the 32-bit Lemire path
#: covers up to 2**32, but staying strictly below 2**31 keeps all
#: intermediate products inside verified territory).
_MAX_BOUND = (1 << 31) - 1

_REPLICATION_OK: Optional[bool] = None


def replication_ok() -> bool:
    """True when this numpy's ``integers`` path matches our decoder."""
    global _REPLICATION_OK
    if _REPLICATION_OK is None:
        try:
            _REPLICATION_OK = _verify_replication()
        except Exception:
            _REPLICATION_OK = False
    return _REPLICATION_OK


class BatchedIntegers:
    """Batched, draw-exact ``integers(0, bound)`` over one generator.

    Usage::

        batch = BatchedIntegers(generator)
        if batch.begin(population):
            try:
                while ...:
                    idx = batch.next()     # == int(generator.integers(0, population))
            finally:
                batch.end()                # generator state resynced exactly
        else:
            ...scalar fallback...

    Between ``begin`` and ``end`` nothing else may draw from the
    generator.  ``begin`` returns False (and touches nothing) when the
    fast path is unavailable — non-PCG64 bit generator, out-of-range
    bound, or a failed replication self-check.
    """

    #: Raw uint64s fetched per refill (each yields two 32-bit draws).
    BLOCK = 64

    def __init__(self, generator: np.random.Generator, _unchecked: bool = False):
        self._bg = generator.bit_generator
        self._enabled = type(self._bg).__name__ == "PCG64" and (
            _unchecked or replication_ok()
        )
        self._active = False
        self._bound = 0
        self._threshold = 0
        self._off = 0  # 1 when a pre-existing half-buffer heads the u32 stream
        self._init_half = 0
        self._raws: List[int] = []  # every raw fetched this batch, in order
        self._fetched = 0
        self._accepted: List[int] = []  # decoded draw values, in order
        self._uidx: List[int] = []  # u32-stream index consumed by each draw
        self._ai = 0  # next accepted index to hand out

    def begin(self, bound: int) -> bool:
        if not self._enabled or self._active or not 2 <= bound <= _MAX_BOUND:
            return False
        state = self._bg.state
        self._off = 1 if state["has_uint32"] else 0
        #: Captured verbatim: numpy leaves the last split-off high half in
        #: ``uinteger`` even once consumed (``has_uint32 == 0``), so exact
        #: state reproduction must carry it through untouched batches.
        self._init_half = int(state["uinteger"])
        self._bound = bound
        self._threshold = ((1 << 32) - bound) % bound
        self._raws = []
        self._fetched = 0
        self._accepted = []
        self._uidx = []
        self._ai = 0
        self._active = True
        return True

    def _refill(self) -> None:
        chunk = self._bg.random_raw(self.BLOCK)
        base_u = self._off + 2 * len(self._raws)
        self._raws.extend(int(r) for r in chunk.tolist())
        self._fetched += self.BLOCK
        # Interleave low/high halves in consumption order; a pending
        # pre-batch half heads the very first chunk.
        u = np.empty(2 * self.BLOCK + (self._off if base_u == self._off else 0),
                     dtype=np.uint64)
        if base_u == self._off and self._off:
            u[0] = self._init_half
            u[1::2] = chunk & np.uint64(_M32)
            u[2::2] = chunk >> np.uint64(32)
            base_u = 0
        else:
            u[0::2] = chunk & np.uint64(_M32)
            u[1::2] = chunk >> np.uint64(32)
        m = u * np.uint64(self._bound)
        leftover = m & np.uint64(_M32)
        keep = np.nonzero(leftover >= np.uint64(self._threshold))[0]
        self._accepted.extend((m[keep] >> np.uint64(32)).tolist())
        self._uidx.extend((keep + base_u).tolist() if base_u else keep.tolist())

    def next(self) -> int:
        """The next draw, identical to ``int(gen.integers(0, bound))``."""
        i = self._ai
        if i == len(self._accepted):
            self._refill()
            while i == len(self._accepted):  # pathological all-rejected block
                self._refill()
        self._ai = i + 1
        return self._accepted[i]

    def end(self) -> None:
        """Rewind the bit generator to the exact post-sequence state."""
        if not self._active:
            return
        self._active = False
        if self._ai == 0:
            consumed_u = 0
        else:
            consumed_u = self._uidx[self._ai - 1] + 1
        c = consumed_u - self._off
        if consumed_u == 0:
            # Nothing drawn: any pre-existing half-buffer is still pending.
            raws_used = 0
            has_half, half = bool(self._off), self._init_half
        elif c == 0:
            # Only the pre-existing half was consumed; it goes stale.
            raws_used = 0
            has_half, half = False, self._init_half
        else:
            q, r = divmod(c, 2)
            raws_used = q + r
            has_half = bool(r)
            # The last raw split in two leaves its high half in the
            # buffer slot — still there (stale) even when consumed.
            half = self._raws[q] >> 32 if r else self._raws[q - 1] >> 32
        unused = self._fetched - raws_used
        if unused:
            self._bg.advance((-unused) % _PERIOD)
        state = self._bg.state
        state["has_uint32"] = 1 if has_half else 0
        state["uinteger"] = int(half)
        self._bg.state = state
        self._raws = []
        self._accepted = []
        self._uidx = []


def _verify_replication() -> bool:
    """Mirror fast draws against a real Generator on a cloned state."""
    bg_fast = np.random.PCG64(0x5EED_CAFE)
    bg_ref = np.random.PCG64(0x5EED_CAFE)
    gen_fast = np.random.Generator(bg_fast)
    gen_ref = np.random.Generator(bg_ref)
    batch = BatchedIntegers(gen_fast, _unchecked=True)
    bounds = (2, 3, 5, 7, 13, 100, 1000, 15601, (1 << 16) + 1, _MAX_BOUND)
    for rounds in (1, 3, 7):
        for bound in bounds:
            if not batch.begin(bound):
                return False
            got = [batch.next() for _ in range(rounds)]
            batch.end()
            want = [int(gen_ref.integers(0, bound)) for _ in range(rounds)]
            if got != want:
                return False
        # Interleave other draw kinds so a broken state resync (including
        # a mishandled pending half-buffer) is caught immediately.
        if float(gen_fast.random()) != float(gen_ref.random()):
            return False
        a = gen_fast.choice(50, size=5, replace=False)
        b = gen_ref.choice(50, size=5, replace=False)
        if a.tolist() != b.tolist():
            return False
    return bg_fast.state == bg_ref.state

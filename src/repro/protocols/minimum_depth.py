"""The minimum-depth join algorithm (Section 2.1).

A joining member queries up to ``join_candidates`` known members and
attaches under the one highest in the tree (smallest layer) that has spare
out-degree; ties break toward the smallest network delay.  The tree is
never restructured afterwards, so the algorithm carries zero optimization
overhead (Fig. 10) but is "reliability-ignorant" beyond its shortness.
"""

from __future__ import annotations

from ..overlay.node import OverlayNode
from .base import TreeProtocol


class MinimumDepthProtocol(TreeProtocol):
    """Distributed minimum-depth joining; no proactive maintenance."""

    name = "min-depth"
    centralized = False

    def place(self, node: OverlayNode, rejoin: bool) -> bool:
        candidates = self.sample_candidates(node, mature_view=rejoin)
        parent = self.select_min_depth(node, candidates)
        if parent is None:
            return False
        self.attach(node, parent)
        return True

"""Shared machinery for the centralized relaxed-ordered protocols.

Both the relaxed bandwidth-ordered and relaxed time-ordered algorithms
(Section 5, algorithms (3) and (4)) follow the same template: on every
join or rejoin, scan the tree's layers from the top looking for a node
that is *worse* than the joiner under the protocol's ordering (smaller
bandwidth, respectively younger).  If one exists the worst such node in
the first qualifying layer is evicted and the joiner takes its position,
adopting as many of its children as capacity allows; the evicted node and
any unadoptable children are forced to rejoin through the same procedure.
If no node is worse, the joiner attaches under the globally highest member
with spare capacity (these algorithms assume a central administrator with
global topological information).

The scan is made efficient with per-layer lazy max-heaps keyed by the
protocol's *eviction priority* (higher = more evictable) and a global lazy
min-heap of spare-capacity nodes.  Both orderings key on immutable member
attributes (bandwidth / join time), so heap entries only go stale through
layer changes or detachment — which lazy validation handles.
"""

from __future__ import annotations

import abc
import heapq
import itertools
from typing import Dict, List, Optional

from ..errors import ProtocolError
from ..overlay.messages import MessageType
from ..overlay.node import OverlayNode
from .base import ProtocolContext, TreeProtocol


class RelaxedOrderedProtocol(TreeProtocol):
    """Template for the centralized relaxed BO / relaxed TO algorithms."""

    centralized = True
    #: Whether the layer scan replaces whichever qualifying member it
    #: happens to find first (the paper's "the located node"), or the
    #: extreme (worst-ordered) member of the layer.
    evict_first_found = True

    def __init__(self, ctx: ProtocolContext):
        super().__init__(ctx)
        # layer -> max-heap of (-priority, seq, node, layer)
        self._layer_heaps: Dict[int, List[tuple]] = {}
        # min-heap of (layer, seq, node) over nodes with spare capacity
        self._spare_heap: List[tuple] = []
        self._seq = itertools.count()
        self._max_layer = 0
        ctx.tree.position_listeners.append(self._on_position)
        self._on_position(ctx.tree.root)

    # -- ordering hooks --------------------------------------------------------

    @abc.abstractmethod
    def eviction_priority(self, node: OverlayNode) -> float:
        """Higher = more evictable (worse under the protocol's ordering)."""

    def adoption_order(self, node: OverlayNode) -> float:
        """Sort key for adopting an evictee's children: best (lowest
        priority) first, so the most deserving children keep a position."""
        return self.eviction_priority(node)

    # -- index maintenance -------------------------------------------------------

    def _on_position(self, node: OverlayNode) -> None:
        if not node.attached:
            return
        layer = node.layer
        if layer > self._max_layer:
            self._max_layer = layer
        if not node.is_root and layer > 0:
            heap = self._layer_heaps.setdefault(layer, [])
            heapq.heappush(
                heap, (-self.eviction_priority(node), next(self._seq), node, layer)
            )
        if node.spare_degree > 0:
            heapq.heappush(self._spare_heap, (layer, next(self._seq), node))

    def _entry_alive(self, node: OverlayNode, layer: int) -> bool:
        return (
            self.ctx.tree.members.get(node.member_id) is node
            and node.attached
            and node.layer == layer
        )

    def _peek_worst_in_layer(self, layer: int) -> Optional[OverlayNode]:
        heap = self._layer_heaps.get(layer)
        if not heap:
            return None
        while heap:
            _, _, node, entry_layer = heap[0]
            if self._entry_alive(node, entry_layer):
                return node
            heapq.heappop(heap)
        return None

    def _first_found_in_layer(
        self, layer: int, my_priority: float, probes: int = 8
    ) -> Optional[OverlayNode]:
        """A qualifying member of ``layer``, as a top-down search would
        stumble on one — *not* necessarily the worst.

        The paper's relaxed algorithms replace "the located node", i.e.
        whichever qualifying member the layer scan finds first.  We model
        that by probing a few random entries of the layer's index and
        falling back to the worst member only if no probe qualifies.
        """
        heap = self._layer_heaps.get(layer)
        if heap:
            size = len(heap)
            for _ in range(min(probes, size)):
                _, _, node, entry_layer = heap[int(self.ctx.rng.integers(0, size))]
                if (
                    self._entry_alive(node, entry_layer)
                    and self.eviction_priority(node) > my_priority
                ):
                    return node
        worst = self._peek_worst_in_layer(layer)
        if worst is not None and self.eviction_priority(worst) > my_priority:
            return worst
        return None

    def _pop_global_spare(self, exclude: OverlayNode) -> Optional[OverlayNode]:
        """Globally highest attached node with spare capacity."""
        while self._spare_heap:
            layer, _, node = self._spare_heap[0]
            if (
                self._entry_alive(node, layer)
                and node.spare_degree > 0
                and node is not exclude
            ):
                return node
            heapq.heappop(self._spare_heap)
        return None

    # -- placement ----------------------------------------------------------------

    def place(self, node: OverlayNode, rejoin: bool) -> bool:
        """Attach ``node`` by eviction or by global min-depth fallback.

        Displaced members (the evictee and any children the joiner cannot
        adopt) re-place themselves through the central administrator after
        the rejoin delay — evictions therefore ripple over simulated time
        rather than cascading instantaneously, matching the per-node
        rejoin cost the relaxed algorithms were defined to expose.
        """
        spare_parent = self._pop_global_spare(exclude=node)
        target = self._find_eviction_target(node)
        # Evict only when that yields a strictly higher position than the
        # best free slot — a central administrator has no reason to force
        # a rejoin for a position the member could take for free.
        if target is not None and spare_parent is not None:
            if target.layer >= spare_parent.layer + 1:
                target = None
        if target is None:
            if spare_parent is None:
                return False
            self.attach(node, spare_parent)
            return True

        parent = target.parent
        if parent is None:
            raise ProtocolError("eviction target must have a parent")
        self.ctx.tree.detach(target)
        orphans = self.ctx.tree.pop_children(target)
        self.attach(node, parent)
        self.ctx.messages.record(MessageType.REJECT)

        for child in sorted(orphans, key=self.adoption_order):
            child.optimization_reconnections += 1
            self._count_overhead()
            if node.spare_degree > 0:
                self.ctx.tree.attach(child, node)
            else:
                self._schedule_placement(child)
        target.optimization_reconnections += 1
        self._count_overhead()
        self._schedule_placement(target)
        return True

    def _find_eviction_target(self, node: OverlayNode) -> Optional[OverlayNode]:
        """Scan layers top-down for the first node worse than ``node``."""
        my_priority = self.eviction_priority(node)
        for layer in range(1, self._max_layer + 1):
            worst = self._peek_worst_in_layer(layer)
            if worst is None or worst is node:
                continue
            if self.eviction_priority(worst) > my_priority:
                if self.evict_first_found:
                    found = self._first_found_in_layer(layer, my_priority)
                    if found is not None and found is not node:
                        return found
                return worst
        return None

    def _schedule_placement(self, node: OverlayNode) -> None:
        """Re-place a displaced member after the rejoin delay."""
        delay = self.ctx.config.rejoin_s

        def retry() -> None:
            if self.ctx.tree.members.get(node.member_id) is not node:
                return
            if node.attached or node.parent is not None:
                return
            if not self.place(node, rejoin=True):
                self._schedule_placement(node)

        self.ctx.sim.schedule_in(delay, retry, label="ordered-eviction-rejoin")

    # -- accounting ------------------------------------------------------------------

    def _count_overhead(self) -> None:
        """Hook for the driver's metrics; bound by the churn driver."""
        if self.overhead_callback is not None:
            self.overhead_callback(1)

    #: Set by the churn driver to route optimization-reconnection events
    #: into the metrics window.
    overhead_callback = None

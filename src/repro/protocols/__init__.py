"""Overlay tree construction protocols.

Five protocols, matching Section 5 of the paper:

* :class:`~repro.protocols.minimum_depth.MinimumDepthProtocol` — joins
  under the highest (smallest-layer) member with spare capacity among up
  to 100 known members; no optimization overhead.
* :class:`~repro.protocols.longest_first.LongestFirstProtocol` — joins
  under the oldest member with spare capacity; no optimization overhead.
* :class:`~repro.protocols.relaxed_bo.RelaxedBandwidthOrderedProtocol` —
  centralized: joins/rejoins evict the first smaller-bandwidth node found
  scanning layers top-down.
* :class:`~repro.protocols.relaxed_to.RelaxedTimeOrderedProtocol` — same,
  evicting younger nodes.
* :class:`~repro.protocols.rost.RostProtocol` — the paper's contribution:
  distributed min-depth joining plus periodic BTP-based parent/child
  switching with locking and referee-verified claims.

All protocols share the :class:`~repro.protocols.base.TreeProtocol`
interface consumed by the churn driver.
"""

from .base import ProtocolContext, TreeProtocol
from .longest_first import LongestFirstProtocol
from .minimum_depth import MinimumDepthProtocol
from .relaxed_bo import RelaxedBandwidthOrderedProtocol
from .relaxed_to import RelaxedTimeOrderedProtocol
from .rost import RostProtocol

PROTOCOLS = {
    cls.name: cls
    for cls in (
        MinimumDepthProtocol,
        LongestFirstProtocol,
        RelaxedBandwidthOrderedProtocol,
        RelaxedTimeOrderedProtocol,
        RostProtocol,
    )
}


def protocol_by_name(name: str):
    """Look up a protocol class by its registry name."""
    try:
        return PROTOCOLS[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; available: {sorted(PROTOCOLS)}"
        ) from None


__all__ = [
    "PROTOCOLS",
    "LongestFirstProtocol",
    "MinimumDepthProtocol",
    "ProtocolContext",
    "RelaxedBandwidthOrderedProtocol",
    "RelaxedTimeOrderedProtocol",
    "RostProtocol",
    "TreeProtocol",
    "protocol_by_name",
]

"""Relaxed time-ordered (TO) tree algorithm (Section 5, algorithm 4).

The centralized relaxation of the strict time-ordered tree: parents are
always at least as old as their children.  A *new* member (age zero) can
never evict anyone and therefore first attaches under the highest member
with spare capacity; as members age and rejoin (after upstream failures)
they displace younger nodes toward the leaves.  Because a time-ordered
node's capacity is uncorrelated with its age, an evicting member often
cannot adopt all of the evictee's children — those forced rejoins are why
the TO family pays a high protocol overhead (Fig. 10).

Eviction cascades terminate because each evicted node is strictly younger
than its evictor.
"""

from __future__ import annotations

from ..overlay.node import OverlayNode
from ._ordered import RelaxedOrderedProtocol


class RelaxedTimeOrderedProtocol(RelaxedOrderedProtocol):
    """Evict the youngest node of the first qualifying layer."""

    name = "relaxed-to"
    #: Time ordering targets the youngest member of the layer — the
    #: member the ordering most clearly says does not belong there.
    #: (First-found eviction makes TO churn pathologically: displacing a
    #: mid-aged member triggers further evictions by *it*, inflating the
    #: reconnection overhead far beyond the paper's Fig. 10 levels.)
    evict_first_found = False

    def eviction_priority(self, node: OverlayNode) -> float:
        # Larger join time = younger = more evictable.
        return node.join_time

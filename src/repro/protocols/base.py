"""Shared protocol machinery: context bundle and the protocol interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

import numpy as np

from ..config import ProtocolConfig
from ..overlay.membership import MembershipService
from ..overlay.messages import MessageStats, MessageType
from ..overlay.node import OverlayNode
from ..overlay.tree import MulticastTree
from ..sim.engine import Simulator
from ..topology.routing import DelayOracle


@dataclass
class ProtocolContext:
    """Everything a tree protocol needs to operate.

    One context is shared by the protocol and the churn driver; the
    protocol must treat the tree as its single source of structural truth.
    """

    sim: Simulator
    tree: MulticastTree
    membership: MembershipService
    oracle: DelayOracle
    config: ProtocolConfig
    stream_rate: float
    rng: np.random.Generator
    messages: MessageStats = field(default_factory=MessageStats)

    def delay_ms(self, a: OverlayNode, b: OverlayNode) -> float:
        """Underlay delay between two members, ms."""
        return self.oracle.delay_ms(a.underlay_node, b.underlay_node)

    def service_delay_ms(self, node: OverlayNode) -> float:
        """End-to-end overlay delay from the root to ``node``, ms.

        Sums underlay delays hop by hop along the tree path.  Infinite for
        a detached member (no data path).
        """
        if not node.attached:
            return float("inf")
        total = 0.0
        current = node
        if getattr(self.oracle, "stable_delays", False):
            # Per-edge delays never change, so each node can memoize its
            # uplink delay; parent identity is the validity check.  The
            # walk then costs one float add per hop instead of an oracle
            # query (service delay is evaluated for every attached member
            # on every metrics sample).
            while True:
                parent = current.parent
                if parent is None:
                    return total
                if current._uplink_parent is parent:
                    total += current._uplink_delay
                else:
                    d = self.delay_ms(current, parent)
                    current._uplink_parent = parent
                    current._uplink_delay = d
                    total += d
                current = parent
        while current.parent is not None:
            total += self.delay_ms(current, current.parent)
            current = current.parent
        return total

    def stretch(self, node: OverlayNode) -> float:
        """Service delay over direct-unicast delay from the root (Fig. 8)."""
        direct = self.oracle.delay_ms(
            self.tree.root.underlay_node, node.underlay_node
        )
        if direct <= 0:
            # Member co-located with the root; stretch is defined as 1.
            return 1.0
        return self.service_delay_ms(node) / direct


class TreeProtocol(abc.ABC):
    """Interface between the churn driver and a tree construction policy.

    Drivers call :meth:`place` to attach a (re)joining member and
    :meth:`on_departure` when a member leaves.  ``place`` returns True on
    success; on False the driver schedules a retry.
    """

    #: Registry name, e.g. ``"rost"``.
    name: str = ""
    #: True for the centralized algorithms that assume a global view.
    centralized: bool = False

    def __init__(self, ctx: ProtocolContext):
        self.ctx = ctx

    @abc.abstractmethod
    def place(self, node: OverlayNode, rejoin: bool) -> bool:
        """Attach ``node`` (a detached subtree root) somewhere in the tree.

        ``rejoin`` is True when the node already held a position (failure
        recovery or eviction), False on first join.
        """

    def on_departure(self, node: OverlayNode) -> None:
        """Hook invoked just before the driver dismantles a departed member."""

    def on_recovery_lock(self, node: OverlayNode, until: float) -> None:
        """Hook: the driver locked ``node`` for failure recovery until
        ``until`` (ROST's switching defers to such locks)."""
        node.lock(until)

    # -- shared helpers ------------------------------------------------------------

    def sample_candidates(
        self,
        node: OverlayNode,
        extra_exclude: Iterable[OverlayNode] = (),
        mature_view: bool = True,
    ) -> List[OverlayNode]:
        """Up to ``join_candidates`` known attached members, excluding the
        joiner itself (the paper's "queries ... up to 100 known members").

        A *mature* view is a uniform sample plus the ``well_known_top``
        members closest to the root — the upper region a member learns
        through the periodic neighbour-information exchange, and what lets
        it "search from the tree root downward" as the minimum-depth
        algorithm requires.  A freshly bootstrapped member has not
        gossiped yet; its view is just the uniform sample
        (``mature_view=False``), so newcomers rarely see (and grab) slots
        at the very top of the tree.
        """
        candidates = self.ctx.membership.sample_for(
            node,
            self.ctx.config.join_candidates,
            exclude=list(extra_exclude),
            attached_only=True,
        )
        top = self.ctx.config.well_known_top if mature_view else 0
        if top > 0:
            seen = {c.member_id for c in candidates}
            seen.add(node.member_id)
            for member in self.ctx.tree.attached_nodes():
                if top <= 0:
                    break
                if member.member_id not in seen:
                    candidates.append(member)
                    seen.add(member.member_id)
                top -= 1
        self.ctx.messages.record(MessageType.JOIN, len(candidates))
        return candidates

    def select_min_depth(
        self, node: OverlayNode, candidates: Iterable[OverlayNode]
    ) -> Optional[OverlayNode]:
        """The paper's join rule: among candidates with spare capacity pick
        the smallest layer, breaking ties by network delay.

        Two-phase: find the minimum layer first, then compare delays only
        among the tied candidates (batched through the oracle).  Delay
        lookups are pure, so skipping them for non-minimal layers changes
        nothing; first-occurrence tie-breaking matches the original
        strict-less scan.
        """
        tied: List[OverlayNode] = []
        best_layer = None
        for candidate in candidates:
            if candidate.spare_degree <= 0 or not candidate.attached:
                continue
            layer = candidate.layer
            if best_layer is None or layer < best_layer:
                best_layer = layer
                tied = [candidate]
            elif layer == best_layer:
                tied.append(candidate)
        if not tied:
            return None
        if len(tied) == 1:
            return tied[0]
        delays = self.ctx.oracle.delays_from(
            node.underlay_node, [c.underlay_node for c in tied]
        )
        return tied[int(np.argmin(delays))]

    def attach(self, node: OverlayNode, parent: OverlayNode) -> None:
        """Perform the attachment and account the ACCEPT message."""
        self.ctx.tree.attach(node, parent)
        self.ctx.messages.record(MessageType.ACCEPT)

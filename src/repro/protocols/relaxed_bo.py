"""Relaxed bandwidth-ordered (BO) tree algorithm (Section 5, algorithm 3).

A centralized relaxation of the high-bandwidth-first algorithm: parents
always have at least the bandwidth of their children (ordering holds along
parent-child paths), but not necessarily across siblings/cousins — the
modification the paper makes to keep protocol overhead realistic.
Eviction cascades terminate because every evicted node has strictly
smaller bandwidth than its evictor.
"""

from __future__ import annotations

from ..overlay.node import OverlayNode
from ._ordered import RelaxedOrderedProtocol


class RelaxedBandwidthOrderedProtocol(RelaxedOrderedProtocol):
    """Evict the first smaller-bandwidth node found scanning top-down."""

    name = "relaxed-bo"

    def eviction_priority(self, node: OverlayNode) -> float:
        # Smaller bandwidth = more evictable.
        return -node.bandwidth

"""All-or-nothing lock acquisition over a set of overlay nodes.

Section 3.3: before switching, the initiating node locks "its parent, its
grandparent and all of its children and siblings, in order to maintain a
consistent state".  If any of them is already participating in another
switch or in failure recovery, the acquisition fails as a whole and the
initiator retries after ``lock_retry_wait_s``.
"""

from __future__ import annotations

from typing import Iterable, List

from ...overlay.node import OverlayNode


def switch_lock_set(initiator: OverlayNode) -> List[OverlayNode]:
    """The nodes a BTP switch must lock, per Section 3.3.

    Includes the initiator itself; the parent and grandparent must exist
    (callers check the structural preconditions first).
    """
    parent = initiator.parent
    if parent is None or parent.parent is None:
        raise ValueError("switch requires a parent and a grandparent")
    involved = [initiator, parent, parent.parent]
    involved.extend(initiator.children)
    involved.extend(c for c in parent.children if c is not initiator)
    return involved


def try_lock_all(nodes: Iterable[OverlayNode], now: float, until: float) -> bool:
    """Atomically lock every node until ``until``; False if any is busy.

    On failure no lock is taken (checking precedes acquisition, and the
    simulator is single-threaded within an event).
    """
    nodes = list(nodes)
    if any(node.is_locked(now) for node in nodes):
        return False
    for node in nodes:
        node.lock(until)
    return True

"""The reference-node (referee) mechanism of Section 3.4.

Truth telling is critical for ROST: a member could claim a huge bandwidth
or age to climb toward the root and then disrupt the whole tree.  The
paper's defence:

* **Age referees** — when a member joins, its *parent* records the joining
  time with ``r_age > 1`` randomly chosen members, who keep heartbeat
  connections with the new member and act as its age witnesses.  The
  member cannot designate its own referees (no collusion); the parent has
  no incentive to collude with a potential competitor.
* **Bandwidth referees** — the parent hands the new member a *measurer
  set* which jointly measures its effective outgoing bandwidth; the
  aggregated measurement is stored with ``r_bw > 1`` bandwidth referees.

Whenever ROST needs another member's BTP it consults that member's
referees rather than trusting the member's own claim.  Referees that
depart are replaced (the new referee synchronizes with the surviving
ones), so the recorded truth outlives individual referees.

:class:`RefereeService` implements all of this bookkeeping; setting
``use_referees=False`` on :class:`~repro.protocols.rost.protocol.RostProtocol`
ablates the mechanism so its effect on cheaters can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ...errors import ProtocolError
from ...overlay.messages import MessageType
from ...overlay.node import OverlayNode
from ..base import ProtocolContext


@dataclass
class RefereeRecord:
    """The referee-replicated truth about one member."""

    member_id: int
    #: Measured (true) outbound bandwidth, recorded by the measurer set.
    measured_bandwidth: float
    #: Join time recorded by the parent at join.
    recorded_join_time: float
    age_referees: List[int] = field(default_factory=list)
    bandwidth_referees: List[int] = field(default_factory=list)


class RefereeService:
    """Tracks referee assignments and answers verification queries."""

    def __init__(self, ctx: ProtocolContext):
        self.ctx = ctx
        self._records: Dict[int, RefereeRecord] = {}
        #: referee member id -> ids of members it referees for.
        self._refereeing: Dict[int, Set[int]] = {}
        self.replacements = 0
        self.lost_records = 0

    # -- registration -------------------------------------------------------------

    def register(self, node: OverlayNode, now: float) -> None:
        """Record the member's measured bandwidth and join time with fresh
        referees (called once, at the member's first join)."""
        if node.member_id in self._records:
            raise ProtocolError(f"member {node.member_id} already has referees")
        record = RefereeRecord(
            member_id=node.member_id,
            measured_bandwidth=self._measure_bandwidth(node),
            recorded_join_time=node.join_time,
        )
        config = self.ctx.config
        record.age_referees = self._pick_referees(node, config.age_referees)
        record.bandwidth_referees = self._pick_referees(
            node, config.bandwidth_referees
        )
        for referee_id in record.age_referees + record.bandwidth_referees:
            self._refereeing.setdefault(referee_id, set()).add(node.member_id)
        self._records[node.member_id] = record
        self.ctx.messages.record(
            MessageType.REFEREE_ASSIGN,
            len(record.age_referees) + len(record.bandwidth_referees),
        )

    def _measure_bandwidth(self, node: OverlayNode) -> float:
        """The measurer set's aggregated estimate of the node's *effective*
        outgoing bandwidth (Section 3.4).

        The newcomer concurrently transmits test data to
        ``bandwidth_measurers`` members; each observes a partial rate (an
        equal share of the true outbound capacity, up to measurement
        noise) and the parent aggregates the partials.  The estimate is
        grounded in what the node actually transmits — a cheater's *claim*
        never enters it.
        """
        config = self.ctx.config
        measurers = max(1, config.bandwidth_measurers)
        self.ctx.messages.record(MessageType.REFEREE_ASSIGN, measurers)
        if config.measurement_noise <= 0:
            return node.bandwidth
        share = node.bandwidth / measurers
        partials = share * (
            1.0 + self.ctx.rng.normal(0.0, config.measurement_noise, size=measurers)
        )
        return float(max(0.0, partials.sum()))

    def _pick_referees(self, node: OverlayNode, count: int) -> List[int]:
        picked = self.ctx.membership.sample(count, exclude=[node], attached_only=False)
        return [p.member_id for p in picked]

    # -- verification -----------------------------------------------------------------

    def verified(self, node: OverlayNode) -> Tuple[float, float]:
        """(bandwidth, join_time) as vouched for by the member's referees.

        Falls back to the member's own claims only if the record was lost
        (every referee failed before replacement — tracked for reporting).
        """
        record = self._records.get(node.member_id)
        self.ctx.messages.record(MessageType.REFEREE_QUERY)
        self.ctx.messages.record(MessageType.REFEREE_REPLY)
        if record is None:
            return node.claimed_bandwidth, node.claimed_join_time
        return record.measured_bandwidth, record.recorded_join_time

    def verified_btp(self, node: OverlayNode, now: float) -> float:
        """Referee-verified Bandwidth-Time Product."""
        if node.is_root:
            return float("inf")
        bandwidth, join_time = self.verified(node)
        return bandwidth * (now - join_time)

    def has_record(self, member_id: int) -> bool:
        return member_id in self._records

    def referee_count(self, member_id: int) -> int:
        record = self._records.get(member_id)
        if record is None:
            return 0
        return len(record.age_referees) + len(record.bandwidth_referees)

    # -- churn handling ----------------------------------------------------------------

    def on_departure(self, node: OverlayNode) -> None:
        """Drop the departing member's record and replace it wherever it
        served as a referee."""
        self._records.pop(node.member_id, None)
        wards = self._refereeing.pop(node.member_id, None)
        if not wards:
            return
        for ward_id in wards:
            record = self._records.get(ward_id)
            if record is None:
                continue
            self._replace_referee(record, node.member_id)

    def _replace_referee(self, record: RefereeRecord, departed_id: int) -> None:
        """The ward asks its parent for a new referee, which synchronizes
        with the surviving ones (Section 3.4)."""
        ward = self.ctx.tree.members.get(record.member_id)
        for referee_list in (record.age_referees, record.bandwidth_referees):
            if departed_id not in referee_list:
                continue
            referee_list.remove(departed_id)
            survivors = [
                r for r in record.age_referees + record.bandwidth_referees
            ]
            replacement: Optional[OverlayNode] = None
            if ward is not None:
                exclude = [ward] + [
                    self.ctx.tree.members[r]
                    for r in survivors
                    if r in self.ctx.tree.members
                ]
                replacement = self.ctx.membership.random_member(
                    exclude=exclude, attached_only=False
                )
            if replacement is not None:
                referee_list.append(replacement.member_id)
                self._refereeing.setdefault(replacement.member_id, set()).add(
                    record.member_id
                )
                self.replacements += 1
                self.ctx.messages.record(MessageType.REFEREE_ASSIGN)
            elif not survivors:
                # Every referee died with no replacement available: the
                # replicated record is lost.
                self._records.pop(record.member_id, None)
                self.lost_records += 1
                return

    def estimated_heartbeat_messages(self, duration_s: float, interval_s: float = 30.0) -> int:
        """Analytic count of referee heartbeats over ``duration_s``.

        Heartbeats are constant-rate background traffic; counting them
        analytically (members x referees x rate) avoids flooding the event
        queue with no behavioural consequence.
        """
        per_member = self.ctx.config.age_referees + self.ctx.config.bandwidth_referees
        return int(len(self._records) * per_member * duration_s / interval_s)

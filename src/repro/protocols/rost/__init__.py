"""ROST: the Reliability-Oriented Switching Tree algorithm (Section 3).

Members join via distributed minimum-depth selection over a ~100-member
partial view, then periodically compare their Bandwidth-Time Product (BTP
= outbound bandwidth x age) against their parent's.  When a member's BTP
exceeds its parent's *and* its bandwidth is at least the parent's, the two
exchange positions under a short-lived lock covering the parent,
grandparent, children and siblings.  Claims of bandwidth and age are
verified through the referee mechanism of Section 3.4, which defeats
cheating/malicious members.
"""

from .protocol import RostProtocol
from .referees import RefereeService
from .locking import try_lock_all

__all__ = ["RefereeService", "RostProtocol", "try_lock_all"]

"""The ROST protocol: distributed joining + BTP-based switching.

Implements Section 3.3's three operations:

* **Joining** — query up to ``join_candidates`` known members, attach
  under the smallest-layer member with spare bandwidth (ties broken by
  network delay).  New members therefore start near the leaves and earn
  higher positions over time — the gradual-ascent property that keeps
  short-lived members away from the top of the tree.
* **Leaving** — handled by the churn driver (children rejoin); ROST only
  tears down the member's switching process and referee state.
* **BTP-based switching** — every ``switch_interval_s`` a member compares
  its (referee-verified) BTP with its parent's.  If its BTP is larger and
  its bandwidth is no less than the parent's, it locks the involved nodes
  and exchanges positions with the parent (Fig. 2); the parent's overflow
  children reconnect under the initiator, largest BTP first.  A failed
  lock acquisition retries after ``lock_retry_wait_s``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ...overlay.messages import MessageType
from ...overlay.node import OverlayNode
from ...sim.process import PeriodicProcess
from ..base import ProtocolContext, TreeProtocol
from .locking import switch_lock_set, try_lock_all
from .referees import RefereeService


class RostProtocol(TreeProtocol):
    """Reliability-Oriented Switching Tree (the paper's contribution)."""

    name = "rost"
    centralized = False

    def __init__(
        self,
        ctx: ProtocolContext,
        use_referees: bool = True,
        bandwidth_guard: bool = True,
        promote_into_spare: bool = True,
        grandparent_rejoin: bool = True,
        lock_hold_s: float = 2.0,
    ):
        """``use_referees=False`` trusts members' claims (ablation for the
        cheating study); ``bandwidth_guard=False`` drops the "child
        bandwidth >= parent bandwidth" switching condition (ablation
        showing why the guard prevents churny, short-lived promotions);
        ``promote_into_spare=False`` disables moving a BTP-dominant member
        into a spare slot of its grandparent (the cheaper alternative to a
        full role exchange whenever free capacity exists one level up);
        ``grandparent_rejoin=False`` disables grandparent-first failure
        recovery (succession: the freed slot under the failed member's own
        parent goes to one of its children, preserving the BTP ordering
        across failures instead of raffling top slots to arbitrary
        rejoiners)."""
        super().__init__(ctx)
        self.use_referees = use_referees
        self.bandwidth_guard = bandwidth_guard
        self.promote_into_spare = promote_into_spare
        self.grandparent_rejoin = grandparent_rejoin
        self.lock_hold_s = lock_hold_s
        self.referees = RefereeService(ctx) if use_referees else None
        self._switch_processes: Dict[int, PeriodicProcess] = {}
        #: Completed switch operations.
        self.switches = 0
        #: Completed spare-slot promotions.
        self.promotions = 0
        #: Switch attempts that found the condition true but lost the lock.
        self.lock_failures = 0
        #: Optional driver hook receiving optimization-reconnection counts.
        self.overhead_callback: Optional[Callable[[int], None]] = None

    # -- protocol interface -----------------------------------------------------------

    def place(self, node: OverlayNode, rejoin: bool) -> bool:
        parent = None
        if rejoin and self.grandparent_rejoin:
            parent = self._succession_parent(node)
        if parent is None:
            # Uniform views for both fresh joins and rejoin fallbacks:
            # freed slots near the root are claimed through succession and
            # BTP-earned promotion, never raffled to whoever rejoins next.
            candidates = self.sample_candidates(node, mature_view=False)
            parent = self.select_min_depth(node, candidates)
        node.rejoin_hint = None
        if parent is None:
            return False
        self.attach(node, parent)
        if node.member_id not in self._switch_processes:
            self._start_switching(node)
            if self.referees is not None and not self.referees.has_record(
                node.member_id
            ):
                self.referees.register(node, self.ctx.sim.now)
        return True

    def _succession_parent(self, node: OverlayNode) -> Optional[OverlayNode]:
        """The failed parent's own parent, if still usable by this heir.

        Heirs must be able to forward data (bandwidth at least the stream
        rate); a zero-degree orphan falls back to the normal rejoin so the
        inherited slot stays useful.
        """
        hint = node.rejoin_hint
        if hint is None:
            return None
        if node.bandwidth < self.ctx.stream_rate:
            return None
        if self.ctx.tree.members.get(hint.member_id) is not hint:
            return None
        if not hint.attached or hint.spare_degree <= 0:
            return None
        return hint

    def on_departure(self, node: OverlayNode) -> None:
        process = self._switch_processes.pop(node.member_id, None)
        if process is not None:
            process.stop()
        if self.referees is not None:
            self.referees.on_departure(node)

    # -- switching ---------------------------------------------------------------------

    def _start_switching(self, node: OverlayNode) -> None:
        interval = self.ctx.config.switch_interval_s
        process = PeriodicProcess(
            self.ctx.sim, interval, lambda: self._switch_check(node)
        )
        # Random phase so member checks are decorrelated.
        process.start(initial_delay=float(self.ctx.rng.uniform(0.0, interval)))
        self._switch_processes[node.member_id] = process

    def _values_of(self, node: OverlayNode) -> tuple:
        """(bandwidth, btp) used for switch decisions — referee-verified
        when the mechanism is on, otherwise whatever the node claims."""
        now = self.ctx.sim.now
        if node.is_root:
            return node.bandwidth, float("inf")
        if self.referees is not None:
            bandwidth, join_time = self.referees.verified(node)
        else:
            bandwidth, join_time = node.claimed_bandwidth, node.claimed_join_time
        return bandwidth, bandwidth * (now - join_time)

    def _switch_action(self, node: OverlayNode) -> str:
        """Decide what ``node`` should do this round.

        Returns ``"swap"`` (exchange roles with the parent), ``"promote"``
        (move into a spare slot of the grandparent — the cheaper operation,
        taken whenever free capacity exists one level up) or ``"none"``.
        """
        if not node.attached:
            return "none"
        parent = node.parent
        if parent is None or parent.is_root or parent.parent is None:
            return "none"
        self.ctx.messages.record(MessageType.BTP_QUERY)
        self.ctx.messages.record(MessageType.BTP_REPLY)
        my_bandwidth, my_btp = self._values_of(node)
        parent_bandwidth, parent_btp = self._values_of(parent)
        if self.promote_into_spare and parent.parent.spare_degree > 0:
            if self._may_promote(node, my_bandwidth, my_btp):
                return "promote"
        if my_btp <= parent_btp:
            return "none"
        if self.bandwidth_guard and my_bandwidth < parent_bandwidth:
            return "none"
        # Structural feasibility: the initiator must be able to adopt its
        # siblings plus the demoted parent (guaranteed when the bandwidth
        # guard holds and capacity is monotone in bandwidth).
        if node.out_degree_cap < len(parent.children):
            return "none"
        return "swap"

    def _may_promote(self, node: OverlayNode, my_bandwidth: float, my_btp: float) -> bool:
        """Can ``node`` claim a spare slot one level up?

        The free slot is contended, so entry to the layer must be earned
        against its *weakest incumbent*: the candidate needs a larger BTP
        than the weakest of the grandparent's current children and at
        least that member's bandwidth.  Zero-out-degree members never
        promote — parking a member that cannot forward data in a scarce
        near-root slot wastes tree capacity, and since a childless member
        can never be displaced by a switch, the slot would stay wasted for
        its whole lifetime.
        """
        if my_bandwidth < self.ctx.stream_rate:
            return False
        grandparent = node.parent.parent
        weakest_btp = float("inf")
        weakest_bandwidth = float("inf")
        for uncle in grandparent.children:
            bandwidth, btp = self._values_of(uncle)
            if btp < weakest_btp:
                weakest_btp = btp
                weakest_bandwidth = bandwidth
        if my_btp <= weakest_btp:
            return False
        if self.bandwidth_guard and my_bandwidth < weakest_bandwidth:
            return False
        return True

    def _switch_check(self, node: OverlayNode) -> None:
        """Periodic (and retry) entry point for one member's switch logic."""
        if self.ctx.tree.members.get(node.member_id) is not node:
            return
        action = self._switch_action(node)
        if action == "none":
            return
        now = self.ctx.sim.now
        if action == "promote":
            involved = [node, node.parent, node.parent.parent]
        else:
            involved = switch_lock_set(node)
        self.ctx.messages.record(MessageType.LOCK_REQUEST, len(involved))
        if not try_lock_all(involved, now, now + self.lock_hold_s):
            self.lock_failures += 1
            self.ctx.messages.record(MessageType.LOCK_DENY)
            self.ctx.sim.schedule_in(
                self.ctx.config.lock_retry_wait_s,
                lambda: self._switch_check(node),
                label="rost-lock-retry",
            )
            return
        self.ctx.messages.record(MessageType.LOCK_GRANT, len(involved))
        if action == "promote":
            self._execute_promotion(node)
        else:
            self._execute_switch(node)

    def _execute_promotion(self, node: OverlayNode) -> None:
        self.ctx.tree.promote_to_grandparent(node)
        self.promotions += 1
        node.optimization_reconnections += 1
        if self.overhead_callback is not None:
            self.overhead_callback(1)
        self.ctx.messages.record(MessageType.SWITCH_COMMIT)

    def _execute_switch(self, node: OverlayNode) -> None:
        parent = node.parent
        assert parent is not None
        affected = [node, parent]
        affected.extend(c for c in parent.children if c is not node)
        affected.extend(node.children)

        now = self.ctx.sim.now

        def overflow_priority(child: OverlayNode) -> float:
            if self.referees is not None:
                return self.referees.verified_btp(child, now)
            return child.claimed_btp(now)

        needs_rejoin = self.ctx.tree.swap_with_parent(node, overflow_priority)
        self.switches += 1
        for member in affected:
            member.optimization_reconnections += 1
        if self.overhead_callback is not None:
            self.overhead_callback(len(affected))
        self.ctx.messages.record(MessageType.SWITCH_COMMIT, len(affected))
        # With the bandwidth guard on, overflow always fits back under the
        # initiator; without it (ablation) leftover children rejoin.
        for orphan in needs_rejoin:
            if not self.place(orphan, rejoin=True):
                self.ctx.sim.schedule_in(
                    self.ctx.config.rejoin_s,
                    lambda o=orphan: self._retry_orphan(o),
                    label="rost-overflow-retry",
                )

    def _retry_orphan(self, orphan: OverlayNode) -> None:
        if self.ctx.tree.members.get(orphan.member_id) is not orphan:
            return
        if orphan.attached or orphan.parent is not None:
            return
        if not self.place(orphan, rejoin=True):
            self.ctx.sim.schedule_in(
                self.ctx.config.rejoin_s,
                lambda: self._retry_orphan(orphan),
                label="rost-overflow-retry",
            )

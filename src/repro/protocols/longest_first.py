"""The longest-first join algorithm (Section 2.1, from Sripanidkulchai et
al.).

A joining member attaches under the *oldest* known member with spare
capacity, exploiting the long-tailed lifetime distribution: old members
are likely to stay longer.  The paper notes (and Fig. 4/7 confirm) that
the resulting tree is tall, which ultimately hurts both reliability and
service delay.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..overlay.node import OverlayNode
from .base import TreeProtocol


class LongestFirstProtocol(TreeProtocol):
    """Attach under the longest-lived candidate; no proactive maintenance."""

    name = "longest-first"
    centralized = False

    def place(self, node: OverlayNode, rejoin: bool) -> bool:
        candidates = self.sample_candidates(node, mature_view=rejoin)
        parent = self._select_oldest(node, candidates)
        if parent is None:
            return False
        self.attach(node, parent)
        return True

    def _select_oldest(self, node, candidates) -> Optional[OverlayNode]:
        # Oldest = smallest join time; the root has join time 0 and in
        # the paper always has spare slots early on.  Ties break toward
        # network proximity, as in the join rule.  Two-phase like
        # select_min_depth: delays are computed (batched) only for the
        # candidates tied on join time.
        tied = []
        best_time = None
        for candidate in candidates:
            if candidate.spare_degree <= 0 or not candidate.attached:
                continue
            t = candidate.join_time
            if best_time is None or t < best_time:
                best_time = t
                tied = [candidate]
            elif t == best_time:
                tied.append(candidate)
        if not tied:
            return None
        if len(tied) == 1:
            return tied[0]
        delays = self.ctx.oracle.delays_from(
            node.underlay_node, [c.underlay_node for c in tied]
        )
        return tied[int(np.argmin(delays))]

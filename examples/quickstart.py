#!/usr/bin/env python
"""Quickstart: build a ROST overlay under churn and read the headline metrics.

Runs the paper's workload model (Bounded-Pareto bandwidths, lognormal
lifetimes, Poisson arrivals) over a generated transit-stub underlay,
maintains the multicast tree with the ROST algorithm, and prints the
reliability/quality numbers the paper's evaluation is built on.

Usage::

    python examples/quickstart.py           # ~2000 members, a minute or two
    python examples/quickstart.py --fast    # a few hundred members, seconds
"""

import argparse
import time

from repro import ChurnSimulation, RostProtocol, paper_config


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="small, seconds-long run")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    scale = 0.1 if args.fast else 1.0
    config = paper_config(population=2000, seed=args.seed, scale=scale)
    print(
        f"underlay: {config.topology.total_nodes} nodes "
        f"({config.topology.total_transit_nodes} transit), "
        f"target population {config.workload.target_population}, "
        f"switch interval {config.protocol.switch_interval_s:.0f}s"
    )

    started = time.time()
    simulation = ChurnSimulation(config, RostProtocol)
    result = simulation.run()
    elapsed = time.time() - started

    metrics = result.metrics
    print(f"\nsimulated {result.sessions_total} member sessions "
          f"in {elapsed:.1f}s wall-clock")
    print(f"mean population          : {metrics.mean_population:8.0f}")
    print(f"disruptions per lifetime : {metrics.avg_disruptions_per_node:8.2f}")
    print(f"avg service delay        : {metrics.avg_service_delay_ms:8.1f} ms")
    print(f"avg network stretch      : {metrics.avg_stretch:8.2f}")
    print(f"optimization overhead    : "
          f"{metrics.avg_optimization_reconnections_per_node:8.3f} reconnections/node")
    print(f"BTP switches             : {result.extras['switches']:8.0f}")
    print(f"spare-slot promotions    : {result.extras['promotions']:8.0f}")
    print(f"control messages         : {result.messages.total:8d}")


if __name__ == "__main__":
    main()

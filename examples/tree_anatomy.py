#!/usr/bin/env python
"""Tree anatomy: what each protocol's converged overlay actually looks like.

Runs the same churn workload under three protocols and dissects the
resulting trees layer by layer — member counts, forwarding capacity,
free-rider dead weight, ages and blast radii — the structural quantities
the paper's reliability arguments are made of.

Usage::

    python examples/tree_anatomy.py [--fast] [--seed N]
"""

import argparse

from repro import (
    ChurnSimulation,
    MinimumDepthProtocol,
    RelaxedBandwidthOrderedProtocol,
    RostProtocol,
    paper_config,
)
from repro.metrics.report import render_table
from repro.overlay.analysis import btp_ordering_violations, tree_statistics


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--seed", type=int, default=23)
    args = parser.parse_args()

    scale = 0.1 if args.fast else 0.5
    config = paper_config(population=4000, seed=args.seed, scale=scale)
    shared = {}
    protocols = (
        ("min-depth", MinimumDepthProtocol),
        ("relaxed-bo", RelaxedBandwidthOrderedProtocol),
        ("rost", RostProtocol),
    )
    for name, protocol in protocols:
        sim = ChurnSimulation(
            config,
            protocol,
            topology=shared.get("topology"),
            oracle=shared.get("oracle"),
        )
        shared.setdefault("topology", sim.topology)
        shared.setdefault("oracle", sim.oracle)
        result = sim.run()
        now = sim.sim.now
        stats = tree_statistics(sim.tree, now)

        rows = [
            [
                layer.layer,
                layer.members,
                layer.capacity,
                layer.spare,
                f"{100 * layer.free_rider_fraction:.0f}%",
                layer.mean_bandwidth,
                layer.mean_age_s / 60.0,
                layer.mean_descendants,
            ]
            for layer in stats.layers[:8]
        ]
        print()
        print(
            render_table(
                f"{name}: depth={stats.depth}, mean depth={stats.mean_depth:.2f}, "
                f"disruptions/node={result.avg_disruptions_per_node:.2f}, "
                f"BTP violations={btp_ordering_violations(sim.tree, now)}",
                ["layer", "members", "capacity", "spare", "riders",
                 "mean bw", "age (min)", "mean desc"],
                rows,
                precision=1,
            )
        )


if __name__ == "__main__":
    main()

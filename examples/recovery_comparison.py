#!/usr/bin/env python
"""Recovery comparison: CER vs single-source repair on the same failures.

Runs one churn pass over a minimum-depth tree and prices every streaming
disruption under a grid of recovery configurations simultaneously —
cooperative (CER: MLC-selected group, residual-bandwidth striping) versus
single-source repair, across group sizes and playback buffers.  The same
failures, the same residual bandwidths; only the recovery discipline
differs.

Usage::

    python examples/recovery_comparison.py [--fast] [--seed N]
"""

import argparse

from repro import (
    MinimumDepthProtocol,
    RecoverySimulation,
    cer_scheme,
    paper_config,
    single_source_scheme,
)
from repro.metrics.report import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    scale = 0.1 if args.fast else 0.5
    config = paper_config(population=4000, seed=args.seed, scale=scale)

    schemes = []
    for group_size in (1, 2, 3, 4):
        schemes.append(cer_scheme(group_size))
        if group_size <= 3:
            schemes.append(single_source_scheme(group_size))
    schemes.append(cer_scheme(3, buffer_s=15.0))
    schemes.append(single_source_scheme(1, buffer_s=27.0))
    schemes.append(cer_scheme(3, eln=False))

    print(
        f"pricing every disruption under {len(schemes)} recovery schemes "
        f"(population {config.workload.target_population})..."
    )
    simulation = RecoverySimulation(config, MinimumDepthProtocol, schemes)
    result = simulation.run()

    rows = []
    for scheme in schemes:
        outcome = result.schemes[scheme.name]
        rows.append(
            [
                scheme.name,
                "CER" if scheme.striped else "single-source",
                scheme.group_size,
                f"{scheme.buffer_s:g}",
                "yes" if scheme.eln else "no",
                outcome.avg_starving_ratio_pct,
                outcome.mean_coverage,
                outcome.episodes,
            ]
        )
    print()
    print(
        render_table(
            "Starving time ratio by recovery scheme (same tree, same failures)",
            ["scheme", "repair", "group", "buffer s", "ELN", "starving %", "coverage", "episodes"],
            rows,
        )
    )
    cer3 = result.ratio_pct("cer-k3-b5")
    ss1 = result.ratio_pct("ss-k1-b5")
    if cer3 > 0:
        print(f"\nCER with 3 recovery nodes starves {ss1 / cer3:.1f}x less "
              f"than classic single-source repair.")


if __name__ == "__main__":
    main()

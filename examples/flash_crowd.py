#!/usr/bin/env python
"""Flash crowd: a live event where the audience arrives in a burst.

The paper's motivating scenario is large-scale live media streaming —
think a match kickoff: a large fraction of the audience joins within the
first minutes, stays for heterogeneous (heavy-tailed) periods and leaves
without notice.  This example injects such a burst with the
:class:`repro.faults.FlashCrowd` primitive (a Gaussian arrival surge on
top of the Poisson baseline) and compares how the minimum-depth tree and
ROST hold up for the viewers.  Because every fault draws from a
generator keyed by ``(schedule seed, fault index)``, both protocols see
the *identical* crowd — same arrival times, bandwidths and lifetimes.

Usage::

    python examples/flash_crowd.py [--fast] [--seed N]
"""

import argparse

from repro import (
    ChurnSimulation,
    MinimumDepthProtocol,
    RostProtocol,
    paper_config,
)
from repro.faults import FaultInjector, FaultSchedule, FlashCrowd
from repro.sim.rng import RngRegistry
from repro.workload.generator import generate_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    scale = 0.1 if args.fast else 0.5
    config = paper_config(population=4000, seed=args.seed, scale=scale)
    burst_size = config.workload.target_population  # the audience doubles

    # Build one baseline workload shared by both protocols; the burst is
    # injected, not spliced into the workload.
    template = ChurnSimulation(config, MinimumDepthProtocol)
    workload = generate_workload(
        config.workload,
        horizon_s=config.horizon_s,
        attach_nodes=template.topology.stub_nodes,
        rng=RngRegistry(config.seed).stream("workload"),
    )
    schedule = FaultSchedule(
        seed=args.seed,
        faults=(
            FlashCrowd(at_s=config.warmup_s, size=burst_size, spread_s=120.0),
        ),
    )
    print(
        f"steady audience ~{config.workload.target_population}, "
        f"flash crowd of {burst_size} joining around t={config.warmup_s:.0f}s"
    )

    for name, protocol in (("min-depth", MinimumDepthProtocol), ("rost", RostProtocol)):
        sim = ChurnSimulation(
            config,
            protocol,
            topology=template.topology,
            oracle=template.oracle,
            workload=workload,
        )
        FaultInjector(schedule).bind(sim)
        result = sim.run()
        m = result.metrics
        print(
            f"{name:10s}  disruptions/lifetime={m.avg_disruptions_per_node:6.2f}  "
            f"delay={m.avg_service_delay_ms:7.1f} ms  "
            f"stretch={m.avg_stretch:5.2f}  "
            f"rejected={result.sessions_rejected}"
        )


if __name__ == "__main__":
    main()

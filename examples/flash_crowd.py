#!/usr/bin/env python
"""Flash crowd: a live event where the audience arrives in a burst.

The paper's motivating scenario is large-scale live media streaming —
think a match kickoff: a large fraction of the audience joins within the
first minutes, stays for heterogeneous (heavy-tailed) periods and leaves
without notice.  This example builds such a workload explicitly (a
Gaussian arrival burst on top of the Poisson baseline) and compares how
the minimum-depth tree and ROST hold up for the viewers.

Usage::

    python examples/flash_crowd.py [--fast] [--seed N]
"""

import argparse
import dataclasses

import numpy as np

from repro import (
    ChurnSimulation,
    MinimumDepthProtocol,
    RostProtocol,
    paper_config,
)
from repro.sim.rng import RngRegistry
from repro.workload.distributions import BoundedPareto, LogNormalLifetime
from repro.workload.generator import ChurnWorkload, generate_workload
from repro.workload.session import Session


def add_flash_crowd(workload: ChurnWorkload, burst_size: int, burst_at_s: float,
                    burst_spread_s: float, seed: int) -> ChurnWorkload:
    """Splice a burst of ``burst_size`` arrivals around ``burst_at_s``."""
    rng = np.random.default_rng(seed)
    config = workload.config
    bandwidth = BoundedPareto(
        config.pareto_shape, config.pareto_lower, config.pareto_upper
    )
    lifetimes = LogNormalLifetime(
        config.lifetime_location, config.lifetime_shape, cap=config.lifetime_cap_s
    )
    base_id = max(s.member_id for s in workload.sessions) + 1
    nodes = [s.underlay_node for s in workload.sessions]
    sessions = list(workload.sessions)
    for i in range(burst_size):
        arrival = max(0.0, rng.normal(burst_at_s, burst_spread_s))
        sessions.append(
            Session(
                member_id=base_id + i,
                arrival_s=float(arrival),
                lifetime_s=float(lifetimes.sample(rng)),
                bandwidth=float(bandwidth.sample(rng)),
                underlay_node=int(rng.choice(nodes)),
            )
        )
    sessions.sort(key=lambda s: s.arrival_s)
    return dataclasses.replace(workload, sessions=sessions)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    scale = 0.1 if args.fast else 0.5
    config = paper_config(population=4000, seed=args.seed, scale=scale)
    burst_size = config.workload.target_population  # the audience doubles

    # Build one workload (including the burst) shared by both protocols.
    template = ChurnSimulation(config, MinimumDepthProtocol)
    workload = generate_workload(
        config.workload,
        horizon_s=config.horizon_s,
        attach_nodes=template.topology.stub_nodes,
        rng=RngRegistry(config.seed).stream("workload"),
    )
    workload = add_flash_crowd(
        workload,
        burst_size=burst_size,
        burst_at_s=config.warmup_s,
        burst_spread_s=120.0,
        seed=args.seed,
    )
    print(
        f"steady audience ~{config.workload.target_population}, "
        f"flash crowd of {burst_size} joining around t={config.warmup_s:.0f}s"
    )

    for name, protocol in (("min-depth", MinimumDepthProtocol), ("rost", RostProtocol)):
        sim = ChurnSimulation(
            config,
            protocol,
            topology=template.topology,
            oracle=template.oracle,
            workload=workload,
        )
        result = sim.run()
        m = result.metrics
        print(
            f"{name:10s}  disruptions/lifetime={m.avg_disruptions_per_node:6.2f}  "
            f"delay={m.avg_service_delay_ms:7.1f} ms  "
            f"stretch={m.avg_stretch:5.2f}  "
            f"rejected={result.sessions_rejected}"
        )


if __name__ == "__main__":
    main()

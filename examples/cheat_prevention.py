#!/usr/bin/env python
"""Cheat prevention: what the referee mechanism is worth.

A fraction of members are liars: they claim a huge outbound bandwidth and
a fabricated early join time, hoping ROST's BTP ordering will carry them
to the top of the tree (where a malicious departure disrupts the most
viewers).  We run the same workload twice — once trusting claims, once
verifying them through the referee mechanism of Section 3.4 — and compare
where the cheaters end up and how much damage their departures cause.

Usage::

    python examples/cheat_prevention.py [--fast] [--seed N] [--cheaters 0.1]
"""

import argparse

import numpy as np

from repro import ChurnSimulation, paper_config
from repro.protocols.rost import RostProtocol


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--cheaters", type=float, default=0.1,
                        help="fraction of members that lie about bw/age")
    args = parser.parse_args()

    scale = 0.1 if args.fast else 0.5
    config = paper_config(population=2000, seed=args.seed, scale=scale)
    cheat_rng = np.random.default_rng(args.seed)
    cheater_ids = set()

    def member_setup(node):
        if cheat_rng.random() < args.cheaters:
            cheater_ids.add(node.member_id)
            node.claimed_bandwidth = 100.0
            node.claimed_join_time = node.join_time - 10**6

    shared = {}
    for label, use_referees in (("claims trusted", False), ("referees on", True)):
        cheater_ids.clear()
        cheat_rng = np.random.default_rng(args.seed)
        sim = ChurnSimulation(
            config,
            lambda ctx: RostProtocol(ctx, use_referees=use_referees),
            topology=shared.get("topology"),
            oracle=shared.get("oracle"),
            member_setup=member_setup,
        )
        shared.setdefault("topology", sim.topology)
        shared.setdefault("oracle", sim.oracle)

        cheat_disruptions = [0]

        def observer(event, sink=cheat_disruptions):
            if event.in_window and event.failed.member_id in cheater_ids:
                sink[0] += event.subtree_size - 1

        sim.disruption_observer = observer
        result = sim.run()

        cheaters = [
            n for n in sim.tree.attached_nodes() if n.member_id in cheater_ids
        ]
        honest = [
            n
            for n in sim.tree.attached_nodes()
            if not n.is_root and n.member_id not in cheater_ids
        ]
        mean_layer = np.mean([n.layer for n in cheaters]) if cheaters else float("nan")
        honest_layer = np.mean([n.layer for n in honest]) if honest else float("nan")
        print(
            f"{label:15s} cheater mean layer={mean_layer:5.2f} "
            f"(honest {honest_layer:5.2f})  "
            f"disruptions caused by cheaters={cheat_disruptions[0]:5d}  "
            f"overall disruptions/node={result.metrics.avg_disruptions_per_node:5.2f}"
        )

    print(
        "\nWith referees the cheaters' verified BTP is their real one, so they"
        "\nstay at the depth their true contribution earns; trusting claims"
        "\nlets them climb toward the root and multiply the damage of their"
        "\ndepartures."
    )


if __name__ == "__main__":
    main()

"""Statistics helpers."""

import math

import numpy as np
import pytest

from repro.metrics.stats import (
    bootstrap_ci_95,
    cdf_at,
    cdf_points,
    confidence_interval_95,
    describe,
    mean_and_ci,
    t_critical_95,
    within_tolerance,
)


def test_t_table_values():
    assert t_critical_95(1) == pytest.approx(12.706)
    assert t_critical_95(10) == pytest.approx(2.228)
    assert t_critical_95(100) == pytest.approx(1.96)


def test_t_critical_df_zero_is_unbounded():
    # A single sample (df == 0) has an unbounded interval, not an error:
    # callers can feed ``data.size - 1`` without special-casing singletons.
    assert t_critical_95(0) == math.inf
    with pytest.raises(ValueError):
        t_critical_95(-1)


def test_ci_zero_for_tiny_samples():
    assert confidence_interval_95([]) == 0.0
    assert confidence_interval_95([5.0]) == 0.0


def test_ci_exactly_zero_for_identical_samples():
    # 0.1 cannot be represented exactly; a naive std() accumulates
    # pairwise-summation noise and reports a ~1e-17 width.  The gate
    # engine treats CI widths as real dispersion, so identical samples
    # must produce a width of exactly 0.0.
    assert confidence_interval_95([0.1] * 30) == 0.0
    assert confidence_interval_95([1e16, 1e16, 1e16]) == 0.0


def test_ci_propagates_nan():
    assert math.isnan(confidence_interval_95([1.0, math.nan, 3.0]))


def test_ci_matches_formula():
    data = [1.0, 2.0, 3.0, 4.0, 5.0]
    sem = np.std(data, ddof=1) / math.sqrt(5)
    assert confidence_interval_95(data) == pytest.approx(2.776 * sem)


def test_ci_covers_true_mean_mostly():
    rng = np.random.default_rng(0)
    hits = 0
    for _ in range(200):
        sample = rng.normal(10.0, 2.0, size=20)
        mean, ci = mean_and_ci(sample)
        if abs(mean - 10.0) <= ci:
            hits += 1
    assert hits >= 180  # ~95% nominal coverage


def test_mean_and_ci_empty():
    mean, ci = mean_and_ci([])
    assert math.isnan(mean) and ci == 0.0


def test_cdf_points():
    xs, fs = cdf_points([3.0, 1.0, 2.0])
    assert list(xs) == [1.0, 2.0, 3.0]
    assert list(fs) == pytest.approx([1 / 3, 2 / 3, 1.0])


def test_cdf_at_thresholds():
    values = [1, 1, 2, 4, 8]
    fractions = cdf_at(values, [0, 1, 3, 8, 100])
    assert fractions == pytest.approx([0.0, 0.4, 0.6, 1.0, 1.0])


def test_cdf_at_empty_is_nan():
    assert all(math.isnan(v) for v in cdf_at([], [1.0]))


def test_describe():
    summary = describe(range(1, 101))
    assert summary.count == 100
    assert summary.mean == pytest.approx(50.5)
    assert summary.minimum == 1 and summary.maximum == 100
    assert summary.p50 == pytest.approx(50.5)
    assert summary.p99 > summary.p90 > summary.p50


def test_describe_empty_and_singleton():
    empty = describe([])
    assert empty.count == 0 and math.isnan(empty.mean)
    one = describe([7.0])
    assert one.count == 1 and one.std == 0.0


def test_bootstrap_ci_basic():
    rng = np.random.default_rng(7)
    sample = rng.normal(10.0, 2.0, size=40)
    lo, hi = bootstrap_ci_95(sample, seed=3)
    assert lo < sample.mean() < hi
    # Same seed -> same interval (baselines must be reproducible).
    assert (lo, hi) == bootstrap_ci_95(sample, seed=3)
    assert (lo, hi) != bootstrap_ci_95(sample, seed=4)


def test_bootstrap_ci_degenerate_samples():
    lo, hi = bootstrap_ci_95([])
    assert math.isnan(lo) and math.isnan(hi)
    assert bootstrap_ci_95([4.5]) == (4.5, 4.5)
    lo, hi = bootstrap_ci_95([2.0, 2.0, 2.0])
    assert lo == hi == 2.0


def test_within_tolerance_exact_and_relative():
    assert within_tolerance(1.0, 1.0)
    assert not within_tolerance(1.0, 1.0001)
    assert within_tolerance(1.0, 1.05, rtol=0.05)
    assert not within_tolerance(1.0, 1.2, rtol=0.05)
    assert within_tolerance(0.0, 0.01, atol=0.02)
    assert not within_tolerance(0.0, 0.03, atol=0.02)


def test_within_tolerance_is_symmetric():
    # rtol is applied to max(|a|, |b|), so swapping the operands can
    # never flip the verdict.  0.048 sits between 5/105 and 5/100, where
    # an asymmetric "rtol * |a|" formula would disagree with its mirror.
    for a, b in [(100.0, 105.0), (-3.0, -3.2), (0.0, 1e-9)]:
        for rtol in (0.0, 0.048, 0.05):
            assert within_tolerance(a, b, rtol=rtol) == within_tolerance(
                b, a, rtol=rtol
            )


def test_within_tolerance_nan_and_inf():
    assert within_tolerance(math.nan, math.nan)
    assert not within_tolerance(math.nan, 1.0, rtol=10.0, atol=10.0)
    assert not within_tolerance(1.0, math.nan, rtol=10.0, atol=10.0)
    assert within_tolerance(math.inf, math.inf)
    assert not within_tolerance(math.inf, -math.inf)
    assert not within_tolerance(math.inf, 1e300, rtol=1.0)
    with pytest.raises(ValueError):
        within_tolerance(1.0, 1.0, rtol=-0.1)

"""Statistics helpers."""

import math

import numpy as np
import pytest

from repro.metrics.stats import (
    cdf_at,
    cdf_points,
    confidence_interval_95,
    describe,
    mean_and_ci,
    t_critical_95,
)


def test_t_table_values():
    assert t_critical_95(1) == pytest.approx(12.706)
    assert t_critical_95(10) == pytest.approx(2.228)
    assert t_critical_95(100) == pytest.approx(1.96)
    with pytest.raises(ValueError):
        t_critical_95(0)


def test_ci_zero_for_tiny_samples():
    assert confidence_interval_95([]) == 0.0
    assert confidence_interval_95([5.0]) == 0.0


def test_ci_matches_formula():
    data = [1.0, 2.0, 3.0, 4.0, 5.0]
    sem = np.std(data, ddof=1) / math.sqrt(5)
    assert confidence_interval_95(data) == pytest.approx(2.776 * sem)


def test_ci_covers_true_mean_mostly():
    rng = np.random.default_rng(0)
    hits = 0
    for _ in range(200):
        sample = rng.normal(10.0, 2.0, size=20)
        mean, ci = mean_and_ci(sample)
        if abs(mean - 10.0) <= ci:
            hits += 1
    assert hits >= 180  # ~95% nominal coverage


def test_mean_and_ci_empty():
    mean, ci = mean_and_ci([])
    assert math.isnan(mean) and ci == 0.0


def test_cdf_points():
    xs, fs = cdf_points([3.0, 1.0, 2.0])
    assert list(xs) == [1.0, 2.0, 3.0]
    assert list(fs) == pytest.approx([1 / 3, 2 / 3, 1.0])


def test_cdf_at_thresholds():
    values = [1, 1, 2, 4, 8]
    fractions = cdf_at(values, [0, 1, 3, 8, 100])
    assert fractions == pytest.approx([0.0, 0.4, 0.6, 1.0, 1.0])


def test_cdf_at_empty_is_nan():
    assert all(math.isnan(v) for v in cdf_at([], [1.0]))


def test_describe():
    summary = describe(range(1, 101))
    assert summary.count == 100
    assert summary.mean == pytest.approx(50.5)
    assert summary.minimum == 1 and summary.maximum == 100
    assert summary.p50 == pytest.approx(50.5)
    assert summary.p99 > summary.p90 > summary.p50


def test_describe_empty_and_singleton():
    empty = describe([])
    assert empty.count == 0 and math.isnan(empty.mean)
    one = describe([7.0])
    assert one.count == 1 and one.std == 0.0

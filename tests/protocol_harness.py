"""A deterministic harness for driving protocols without the churn driver.

Builds a real ProtocolContext (simulator, tree, membership, oracle) over
the session-scoped tiny topology, with helpers to add members at chosen
bandwidths/ages so protocol decisions can be asserted precisely.
"""

from __future__ import annotations

import numpy as np

from repro.config import ProtocolConfig
from repro.overlay.membership import MembershipService
from repro.overlay.node import OverlayNode
from repro.overlay.tree import MulticastTree
from repro.protocols.base import ProtocolContext
from repro.sim.engine import Simulator


class Harness:
    def __init__(self, topology, oracle, protocol_config=None, seed=99, root_cap=4):
        self.topology = topology
        self.oracle = oracle
        self.sim = Simulator()
        stubs = topology.stub_nodes
        self._stubs = stubs
        root = OverlayNode(
            member_id=0,
            underlay_node=stubs[0],
            bandwidth=float(root_cap),
            out_degree_cap=root_cap,
            join_time=0.0,
            is_root=True,
        )
        self.tree = MulticastTree(root)
        self.membership = MembershipService(np.random.default_rng(seed))
        self.membership.register(root)
        self.ctx = ProtocolContext(
            sim=self.sim,
            tree=self.tree,
            membership=self.membership,
            oracle=oracle,
            config=protocol_config or ProtocolConfig(),
            stream_rate=1.0,
            rng=np.random.default_rng(seed + 1),
        )
        self._next_id = 1

    def new_member(self, bandwidth=2.0, cap=None, join_time=None, underlay_index=1):
        node = OverlayNode(
            member_id=self._next_id,
            underlay_node=self._stubs[underlay_index % len(self._stubs)],
            bandwidth=bandwidth,
            out_degree_cap=int(bandwidth) if cap is None else cap,
            join_time=self.sim.now if join_time is None else join_time,
        )
        self._next_id += 1
        self.tree.add_member(node)
        self.membership.register(node)
        return node

    def depart(self, node):
        self.membership.unregister(node)
        return self.tree.remove_departed(node)

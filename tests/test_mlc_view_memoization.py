"""Differential tests: memoized PartialTreeView == naive recomputation.

PR 10 memoizes the view's derived structures (sorted child lists, the
level decomposition and per-member subtree walks) because one starvation
episode prices every recovery scheme against the same view.
``recovery/mlc.py`` keeps naive references (``naive_view_children`` /
``naive_view_levels`` / ``naive_view_descendants``) that recompute from
the raw child sets on every call; Hypothesis interleaves random
``_add_path`` mutations with queries so the caches are exercised warm,
cold and freshly invalidated — every answer must match the naive walk,
including the RNG draw sequence of ``select_mlc_group``.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.recovery.mlc import (
    PartialTreeView,
    naive_view_children,
    naive_view_descendants,
    naive_view_levels,
    select_mlc_group,
    select_random_group,
)

#: A random tree: parents[i] is the parent of member ``i + 1`` and is
#: always a smaller id, so the implied structure is acyclic — exactly the
#: consistency real root paths have.  Each "gossiped path" is then the
#: root path of a randomly chosen member.
PARENTS = st.lists(st.integers(0, 10**6), min_size=1, max_size=25).map(
    lambda draws: [d % (i + 1) for i, d in enumerate(draws)]
)
PICKS = st.lists(st.integers(0, 10**6), min_size=1, max_size=20)
QUERIES = st.lists(st.integers(0, 10**6), min_size=1, max_size=30)


def _root_paths(parents, picks):
    """Root paths (each starting at 0) of the picked members."""
    paths = []
    for pick in picks:
        member = (pick % len(parents)) + 1
        path = [member]
        while path[-1] != 0:
            path.append(parents[path[-1] - 1])
        path.reverse()
        paths.append(path)
    return paths


def _view_from(paths):
    view = PartialTreeView(0)
    for path in paths:
        view._add_path(path)
    return view


def _assert_matches_naive(view):
    assert view.levels() == naive_view_levels(view)
    for member_id in view.member_ids():
        assert view.children_of(member_id) == naive_view_children(view, member_id)
        assert view.descendants_of(member_id) == naive_view_descendants(
            view, member_id
        )


@settings(max_examples=150, deadline=None)
@given(parents=PARENTS, picks=PICKS, queries=QUERIES)
def test_view_queries_match_naive_across_mutations(parents, picks, queries):
    """Queries stay exact while _add_path keeps invalidating the caches."""
    view = PartialTreeView(0)
    pending = _root_paths(parents, picks)
    for q in queries:
        if pending and q % 3 == 0:
            view._add_path(pending.pop())
            continue
        members = view.member_ids()
        target = members[q % len(members)]
        assert view.children_of(target) == naive_view_children(view, target)
        assert view.descendants_of(target) == naive_view_descendants(view, target)
        assert view.levels() == naive_view_levels(view)
    for path in pending:
        view._add_path(path)
    _assert_matches_naive(view)


@settings(max_examples=100, deadline=None)
@given(
    parents=PARENTS,
    picks=PICKS,
    seed=st.integers(0, 2**32 - 1),
    k=st.integers(1, 6),
)
def test_select_mlc_group_identical_on_warm_and_cold_views(parents, picks, seed, k):
    """Selection (and its RNG draw sequence) is independent of cache state.

    The warm view has been queried heavily (caches populated); the cold
    view is freshly built.  Identical RNG seeds must give identical
    groups — the memoization must not change iteration order anywhere.
    """
    paths = _root_paths(parents, picks)
    cold = _view_from(paths)
    warm = _view_from(paths)
    _assert_matches_naive(warm)  # populates every cache
    rng_a = np.random.default_rng(seed)
    rng_b = np.random.default_rng(seed)
    assert select_mlc_group(warm, k, rng_a) == select_mlc_group(cold, k, rng_b)
    rng_a = np.random.default_rng(seed + 1)
    rng_b = np.random.default_rng(seed + 1)
    assert select_random_group(warm, k, rng_a) == select_random_group(cold, k, rng_b)


def test_mutating_returned_lists_does_not_corrupt_caches():
    """Callers pop/append on the returned lists (select_mlc_group does);
    the shared internals must be insulated from that."""
    view = _view_from([[0, 1, 2], [0, 1, 3], [0, 4]])
    first = view.children_of(1)
    first.pop()
    assert view.children_of(1) == naive_view_children(view, 1)
    levels = view.levels()
    levels[1].append(999)
    assert view.levels() == naive_view_levels(view)
    desc = view.descendants_of(1)
    desc.append(999)
    assert view.descendants_of(1) == naive_view_descendants(view, 1)

"""Observability artifacts must survive worker crashes and timeouts.

A worker that dies takes its in-memory capture with it; the pool's
in-process retry re-runs the job under a fresh capture, so the retried
result carries the *full* artifact set — the merged trace is identical to
a run in which the worker never crashed.
"""

import json
import os

import pytest

from repro.experiments import common
from repro.experiments.pool import ExperimentJob, ExperimentPool
from repro.experiments.registry import REGISTRY, ExperimentResult, register
from repro.obs.capture import ObsUnit, emit_unit
from repro.topology.cache import ENV_CACHE_DIR


@pytest.fixture(autouse=True)
def obs_enabled(monkeypatch):
    common.clear_caches()
    monkeypatch.setenv("REPRO_OBS_TRACE", "1")
    monkeypatch.setenv("REPRO_OBS_METRICS", "1")
    yield
    common.clear_caches()


def _fault_line(seed):
    return json.dumps(
        {"type": "fault", "t": 1.0, "label": f"fault:retry-{seed}"},
        separators=(",", ":"),
    )


def _emit_marker_unit(seed):
    emit_unit(
        ObsUnit(
            meta={"kind": "churn", "seed": seed},
            trace_lines=[_fault_line(seed)],
            metrics={
                "counters": {"sim.events_processed": seed},
                "gauges": {},
                "histograms": {},
            },
        )
    )


def _register_flaky(experiment_id, run):
    register(experiment_id, f"test helper {experiment_id}", "test")(run)


def _assert_full_artifacts(results, pool):
    assert pool.retried_jobs >= 1
    for seed, result in zip((1, 2), results):
        assert result.artifacts["trace"] == [_fault_line(seed)]
        (unit,) = result.artifacts["metrics"]
        assert unit["meta"] == {"kind": "churn", "seed": seed}
        assert unit["counters"] == {"sim.events_processed": seed}


def test_crashed_worker_artifacts_are_reemitted_on_retry():
    experiment_id = "testobscrash"

    def run(scale=1.0, seed=42, **_):
        if os.environ.get(ENV_CACHE_DIR):
            os._exit(17)  # kill the worker before it can return artifacts
        _emit_marker_unit(seed)
        return ExperimentResult(experiment_id, "crashy", table=f"ok seed={seed}")

    _register_flaky(experiment_id, run)
    try:
        assert ENV_CACHE_DIR not in os.environ
        pool = ExperimentPool(jobs=2)
        results = pool.run([ExperimentJob.make(experiment_id, seed=s) for s in (1, 2)])
        assert [r.table for r in results] == ["ok seed=1", "ok seed=2"]
        _assert_full_artifacts(results, pool)
    finally:
        REGISTRY.pop(experiment_id, None)


def test_timed_out_worker_artifacts_are_reemitted_on_retry():
    experiment_id = "testobsslow"

    def run(scale=1.0, seed=42, **_):
        if os.environ.get(ENV_CACHE_DIR):
            import time

            time.sleep(3.0)
        _emit_marker_unit(seed)
        return ExperimentResult(experiment_id, "slow", table=f"done seed={seed}")

    _register_flaky(experiment_id, run)
    try:
        assert ENV_CACHE_DIR not in os.environ
        pool = ExperimentPool(jobs=2, timeout_s=0.25)
        results = pool.run([ExperimentJob.make(experiment_id, seed=s) for s in (1, 2)])
        assert [r.table for r in results] == ["done seed=1", "done seed=2"]
        _assert_full_artifacts(results, pool)
    finally:
        REGISTRY.pop(experiment_id, None)


def test_artifacts_absent_when_obs_disabled(monkeypatch):
    for name in (
        "REPRO_OBS_TRACE",
        "REPRO_OBS_TRACE_EVENTS",
        "REPRO_OBS_METRICS",
        "REPRO_OBS_PROFILE",
    ):
        monkeypatch.delenv(name, raising=False)
    experiment_id = "testobsoff"

    def run(scale=1.0, seed=42, **_):
        _emit_marker_unit(seed)  # no ambient capture: must be a no-op
        return ExperimentResult(experiment_id, "off", table="ok")

    _register_flaky(experiment_id, run)
    try:
        results = ExperimentPool(jobs=1).run([ExperimentJob.make(experiment_id)])
        assert results[0].artifacts == {}
    finally:
        REGISTRY.pop(experiment_id, None)

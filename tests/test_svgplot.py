"""SVG chart rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.registry import ExperimentResult
from repro.metrics.svgplot import experiment_chart, line_chart, nice_ticks


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


SERIES = {"rost": [0.4, 0.6, 0.8], "min-depth": [1.7, 4.5, 5.4]}
XS = [2000, 5000, 8000]


class TestNiceTicks:
    def test_covers_range(self):
        ticks = nice_ticks(0.0, 7.3)
        assert ticks[0] <= 0.0
        assert ticks[-1] >= 7.3

    def test_reasonable_count(self):
        for low, high in [(0, 1), (0, 14000), (0.1, 0.9), (-5, 5)]:
            ticks = nice_ticks(low, high)
            assert 2 <= len(ticks) <= 8

    def test_degenerate_range(self):
        assert len(nice_ticks(3.0, 3.0)) >= 2


class TestLineChart:
    def test_well_formed_xml(self):
        svg = line_chart("T", "x", "y", XS, SERIES)
        root = parse(svg)
        assert root.tag.endswith("svg")

    def test_one_polyline_per_series(self):
        svg = line_chart("T", "x", "y", XS, SERIES)
        root = parse(svg)
        polylines = root.findall(".//{http://www.w3.org/2000/svg}polyline")
        assert len(polylines) == 2

    def test_title_and_labels_present(self):
        svg = line_chart("My Title", "network size", "disruptions", XS, SERIES)
        assert "My Title" in svg
        assert "network size" in svg
        assert "disruptions" in svg
        assert "rost" in svg and "min-depth" in svg

    def test_y_mapping_is_monotone(self):
        svg = line_chart("T", "x", "y", XS, {"a": [0.0, 10.0, 20.0]})
        root = parse(svg)
        polyline = root.find(".//{http://www.w3.org/2000/svg}polyline")
        points = [
            tuple(map(float, p.split(","))) for p in polyline.get("points").split()
        ]
        ys = [p[1] for p in points]
        assert ys[0] > ys[1] > ys[2]  # larger values plot higher (smaller py)

    def test_nan_points_skipped(self):
        svg = line_chart("T", "x", "y", XS, {"a": [1.0, float("nan"), 3.0]})
        root = parse(svg)
        polyline = root.find(".//{http://www.w3.org/2000/svg}polyline")
        assert len(polyline.get("points").split()) == 2

    def test_log_scale_requires_positive(self):
        svg = line_chart("T", "x", "y", XS, {"a": [0.01, 1.0, 100.0]}, log_y=True)
        parse(svg)

    def test_title_escaping(self):
        svg = line_chart("a < b & c", "x", "y", XS, SERIES)
        parse(svg)  # must remain well-formed

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            line_chart("T", "x", "y", XS, {"a": [1.0]})

    def test_empty_x_rejected(self):
        with pytest.raises(ValueError):
            line_chart("T", "x", "y", [], {})


class TestExperimentChart:
    def test_renders_series_experiments(self):
        result = ExperimentResult(
            experiment_id="fig04",
            title="Avg disruptions",
            table="",
            data={"sizes": XS, "series": SERIES},
        )
        svg = experiment_chart(result)
        parse(svg)
        assert "network size" in svg

    def test_rejects_series_less_experiments(self):
        result = ExperimentResult("fig14", "combined", "", data={"1": {}})
        with pytest.raises(ValueError):
            experiment_chart(result)


def test_cli_svg_export(tmp_path):
    from repro.experiments import common
    from repro.experiments.runner import main as cli

    common.clear_caches()
    out_dir = tmp_path / "charts"
    assert cli([
        "run", "fig04", "--scale", "0.02", "--seed", "3", "--svg", str(out_dir),
    ]) == 0
    svg_file = out_dir / "fig04.svg"
    assert svg_file.exists()
    parse(svg_file.read_text())
    common.clear_caches()

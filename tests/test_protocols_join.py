"""Minimum-depth and longest-first placement policies."""

import pytest

from repro.protocols.longest_first import LongestFirstProtocol
from repro.protocols.minimum_depth import MinimumDepthProtocol
from tests.protocol_harness import Harness


@pytest.fixture()
def harness(tiny_topology, tiny_oracle):
    return Harness(tiny_topology, tiny_oracle, root_cap=2)


class TestMinimumDepth:
    def test_first_member_attaches_to_root(self, harness):
        proto = MinimumDepthProtocol(harness.ctx)
        node = harness.new_member()
        assert proto.place(node, rejoin=False)
        assert node.parent is harness.tree.root

    def test_prefers_highest_spare_parent(self, harness):
        proto = MinimumDepthProtocol(harness.ctx)
        high = harness.new_member(bandwidth=5.0)
        assert proto.place(high, rejoin=False)
        deep = harness.new_member(bandwidth=5.0)
        assert proto.place(deep, rejoin=False)
        # root now full (cap 2); the next member must land at layer 2
        joiner = harness.new_member(bandwidth=0.5, cap=0)
        assert proto.place(joiner, rejoin=False)
        assert joiner.layer == 2

    def test_fails_without_capacity(self, tiny_topology, tiny_oracle):
        harness = Harness(tiny_topology, tiny_oracle, root_cap=1)
        proto = MinimumDepthProtocol(harness.ctx)
        a = harness.new_member(bandwidth=0.5, cap=0)
        b = harness.new_member(bandwidth=0.5, cap=0)
        assert proto.place(a, rejoin=False)
        assert not proto.place(b, rejoin=False)
        assert not b.attached

    def test_no_optimization_overhead(self, harness):
        proto = MinimumDepthProtocol(harness.ctx)
        nodes = [harness.new_member() for _ in range(6)]
        for node in nodes:
            proto.place(node, rejoin=False)
        assert sum(n.optimization_reconnections for n in nodes) == 0


class TestLongestFirst:
    def test_prefers_oldest_parent(self, harness):
        proto = LongestFirstProtocol(harness.ctx)
        harness.sim.run_until(100.0)
        old = harness.new_member(bandwidth=3.0, join_time=0.0)
        young = harness.new_member(bandwidth=3.0, join_time=90.0)
        harness.tree.attach(old, harness.tree.root)
        harness.tree.attach(young, harness.tree.root)
        joiner = harness.new_member(join_time=100.0)
        assert proto.place(joiner, rejoin=False)
        # the root (join time 0) ties with `old`; both are acceptable
        assert joiner.parent in (old, harness.tree.root)
        assert joiner.parent is not young

    def test_skips_full_old_members(self, harness):
        proto = LongestFirstProtocol(harness.ctx)
        old_full = harness.new_member(bandwidth=1.0, cap=1, join_time=0.0)
        young = harness.new_member(bandwidth=3.0, join_time=50.0)
        harness.tree.attach(old_full, harness.tree.root)
        harness.tree.attach(young, harness.tree.root)
        harness.sim.run_until(60.0)
        filler = harness.new_member(bandwidth=0.5, cap=0)
        harness.tree.attach(filler, old_full)  # old_full now at capacity
        joiner = harness.new_member()
        assert proto.place(joiner, rejoin=False)
        assert joiner.parent is young

    def test_fails_without_capacity(self, tiny_topology, tiny_oracle):
        harness = Harness(tiny_topology, tiny_oracle, root_cap=1)
        proto = LongestFirstProtocol(harness.ctx)
        a = harness.new_member(bandwidth=0.5, cap=0)
        assert proto.place(a, rejoin=False)
        b = harness.new_member(bandwidth=0.5, cap=0)
        assert not proto.place(b, rejoin=False)

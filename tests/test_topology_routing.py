"""The hierarchical delay oracle must agree exactly with flat Dijkstra."""

import numpy as np
import pytest

from repro.config import TopologyConfig
from repro.topology.routing import DelayOracle
from repro.topology.transit_stub import generate_transit_stub


@pytest.fixture(scope="module", params=[3, 17, 42])
def topo_oracle(request):
    cfg = TopologyConfig(
        transit_domains=2,
        transit_nodes_per_domain=3,
        stub_domains_per_transit=2,
        stub_nodes_per_domain=4,
        seed=request.param,
    )
    topo = generate_transit_stub(cfg)
    return topo, DelayOracle(topo)


def test_oracle_matches_flat_dijkstra_everywhere(topo_oracle):
    topo, oracle = topo_oracle
    for source in range(topo.num_nodes):
        truth = topo.graph.shortest_paths_from(source)
        for target in range(topo.num_nodes):
            assert oracle.delay_ms(source, target) == pytest.approx(
                truth[target]
            ), f"mismatch {source}->{target}"


def test_zero_self_delay(topo_oracle):
    topo, oracle = topo_oracle
    for node in (0, topo.num_nodes - 1):
        assert oracle.delay_ms(node, node) == 0.0


def test_symmetry(topo_oracle):
    topo, oracle = topo_oracle
    rng = np.random.default_rng(0)
    for _ in range(200):
        a, b = rng.integers(0, topo.num_nodes, size=2)
        assert oracle.delay_ms(int(a), int(b)) == pytest.approx(
            oracle.delay_ms(int(b), int(a))
        )


def test_delays_from_vector(topo_oracle):
    topo, oracle = topo_oracle
    targets = list(range(0, topo.num_nodes, 7))
    vec = oracle.delays_from(5, targets)
    assert len(vec) == len(targets)
    for value, target in zip(vec, targets):
        assert value == pytest.approx(oracle.delay_ms(5, target))


def test_all_delays_finite_and_positive(topo_oracle):
    topo, oracle = topo_oracle
    rng = np.random.default_rng(1)
    for _ in range(300):
        a, b = rng.integers(0, topo.num_nodes, size=2)
        d = oracle.delay_ms(int(a), int(b))
        assert np.isfinite(d)
        assert d >= 0.0
        if a != b:
            assert d > 0.0

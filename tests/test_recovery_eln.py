"""Explicit Loss Notification state machine."""

import pytest

from repro.errors import RecoveryError
from repro.recovery.eln import ElnTracker, LossOrigin


def test_healthy_stream():
    tracker = ElnTracker()
    for seq in range(10):
        tracker.on_data(seq)
    assert tracker.origin(next_expected=0) is LossOrigin.NONE


def test_upstream_loss_via_eln():
    tracker = ElnTracker()
    tracker.on_data(0)
    tracker.on_data(1)
    for seq in (2, 3, 4, 5):
        tracker.on_eln(seq)  # parent says: I'm missing these too
    tracker.on_data(6)
    assert tracker.origin(next_expected=0) is LossOrigin.UPSTREAM


def test_silent_gap_means_parent_failure():
    tracker = ElnTracker(gap_threshold=3)
    tracker.on_data(0)
    tracker.on_data(8)  # sequences 1..7 completely silent
    assert tracker.origin(next_expected=0) is LossOrigin.PARENT


def test_small_silent_gap_tolerated():
    tracker = ElnTracker(gap_threshold=3)
    tracker.on_data(0)
    tracker.on_data(3)  # gap of 2 < threshold
    assert tracker.origin(next_expected=0) is LossOrigin.NONE


def test_eln_resets_silence_counter():
    tracker = ElnTracker(gap_threshold=3)
    tracker.on_data(0)
    tracker.on_eln(2)
    tracker.on_eln(5)
    tracker.on_data(7)
    # silent gaps are 1,1 and 1 — never above the threshold
    assert tracker.origin(next_expected=0) is LossOrigin.UPSTREAM


def test_totally_silent_parent():
    tracker = ElnTracker(gap_threshold=3)
    tracker.on_data(0)
    assert tracker.origin(next_expected=10) is LossOrigin.PARENT


def test_missing_below():
    tracker = ElnTracker()
    tracker.on_data(0)
    tracker.on_eln(1)
    tracker.on_data(3)
    assert tracker.missing_below(4) == [2]


def test_negative_sequences_rejected():
    tracker = ElnTracker()
    with pytest.raises(RecoveryError):
        tracker.on_data(-1)
    with pytest.raises(RecoveryError):
        tracker.on_eln(-5)

"""Property tests: vectorized/cached MLC kernels == the naive reference.

``recovery/mlc.py`` keeps the pre-vectorization implementations
(``naive_root_path_ids`` / ``naive_loss_correlation`` /
``naive_group_loss_correlation``) as executable ground truth.  Hypothesis
drives random tree histories — attaches, detaches, rejoins and
parent-child swaps, interleaved with queries so the epoch-based path
caches are exercised both warm and invalidated — and every query must
match the naive walk exactly, including the RNG draw sequence of
``select_mlc_group``.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.overlay.node import OverlayNode
from repro.overlay.tree import MulticastTree
from repro.recovery.mlc import (
    PartialTreeView,
    group_loss_correlation,
    loss_correlation,
    naive_group_loss_correlation,
    naive_loss_correlation,
    naive_root_path_ids,
    root_path_ids,
    select_mlc_group,
)

#: Each step: (op selector, parameter draw) — interpreted modulo the
#: currently applicable population so every history is valid.
STEPS = st.lists(
    st.tuples(st.integers(0, 99), st.integers(0, 10**6)),
    min_size=1,
    max_size=60,
)


def _build_history(steps):
    """Replay a random structural history; returns the tree."""
    root = OverlayNode(0, underlay_node=0, bandwidth=1.0, out_degree_cap=4,
                       join_time=0.0, is_root=True)
    tree = MulticastTree(root)
    next_id = 1
    detached = []
    for op, param in steps:
        attached = [n for n in tree.members.values() if n.attached]
        if op < 55 or len(attached) < 3:
            # join: new member under a random attached node with capacity
            parents = [n for n in attached if n.spare_degree > 0]
            if not parents:
                continue
            node = OverlayNode(next_id, underlay_node=next_id, bandwidth=1.0,
                               out_degree_cap=param % 4, join_time=float(next_id))
            next_id += 1
            tree.add_member(node)
            tree.attach(node, parents[param % len(parents)])
        elif op < 70:
            # detach a non-root subtree
            candidates = [n for n in attached if not n.is_root]
            if not candidates:
                continue
            node = candidates[param % len(candidates)]
            tree.detach(node)
            detached.append(node)
        elif op < 85 and detached:
            # reattach a previously detached subtree elsewhere
            node = detached.pop(param % len(detached))
            parents = [
                n for n in tree.members.values()
                if n.attached and n.spare_degree > 0
                and n not in node.descendants() and n is not node
            ]
            if parents:
                tree.attach(node, parents[param % len(parents)])
            else:
                detached.append(node)
        else:
            # swap a node with its (non-root) parent when capacity allows
            swappable = [
                n for n in attached
                if n.parent is not None and not n.parent.is_root
                and len([c for c in n.parent.children if c is not n]) + 1
                <= n.out_degree_cap
            ]
            if swappable:
                node = swappable[param % len(swappable)]
                tree.swap_with_parent(node, overflow_priority=lambda c: c.member_id)
    return tree


@settings(max_examples=60, deadline=None)
@given(steps=STEPS)
def test_root_paths_match_naive_across_mutations(steps):
    tree = _build_history(steps)
    for node in tree.members.values():
        assert root_path_ids(node) == naive_root_path_ids(node)
    # query again (fully warm caches) — still exact
    for node in tree.members.values():
        assert root_path_ids(node) == naive_root_path_ids(node)


@settings(max_examples=60, deadline=None)
@given(steps=STEPS, pair_seed=st.integers(0, 2**32 - 1))
def test_loss_correlation_matches_naive(steps, pair_seed):
    tree = _build_history(steps)
    nodes = list(tree.members.values())
    rng = np.random.default_rng(pair_seed)
    for _ in range(20):
        a = nodes[int(rng.integers(0, len(nodes)))]
        b = nodes[int(rng.integers(0, len(nodes)))]
        assert loss_correlation(a, b) == naive_loss_correlation(a, b)


@settings(max_examples=60, deadline=None)
@given(steps=STEPS, group_seed=st.integers(0, 2**32 - 1))
def test_group_loss_correlation_matches_naive(steps, group_seed):
    tree = _build_history(steps)
    nodes = list(tree.members.values())
    rng = np.random.default_rng(group_seed)
    k = int(rng.integers(0, min(12, len(nodes)))) + 1
    picks = rng.choice(len(nodes), size=k, replace=False)
    group = [nodes[int(i)] for i in picks]
    assert group_loss_correlation(group) == naive_group_loss_correlation(group)


@settings(max_examples=40, deadline=None)
@given(
    steps=STEPS,
    select_seed=st.integers(0, 2**32 - 1),
    group_size=st.integers(1, 8),
)
def test_select_mlc_group_matches_naive_view(steps, select_seed, group_size):
    """Algorithm 1 over cached paths == over naive paths, draw for draw.

    The view construction consumes ``root_path_ids`` (the cached kernel);
    a view built from ``naive_root_path_ids`` must be structurally
    identical, and identical-seeded selection must return the same group.
    """
    tree = _build_history(steps)
    attached = [n for n in tree.members.values() if n.attached]
    if len(attached) < 2:
        return

    view_fast = PartialTreeView.from_members(attached)
    view_naive = PartialTreeView(naive_root_path_ids(tree.root)[0])
    for member in attached:
        path = naive_root_path_ids(member)
        if len(path) >= 1:
            view_naive._add_path(path if len(path) >= 2 else path[:1])

    assert sorted(view_fast.member_ids()) == sorted(view_naive.member_ids())
    for mid in view_fast.member_ids():
        assert view_fast.children_of(mid) == view_naive.children_of(mid)

    fast = select_mlc_group(
        view_fast, group_size, np.random.default_rng(select_seed)
    )
    naive = select_mlc_group(
        view_naive, group_size, np.random.default_rng(select_seed)
    )
    assert fast == naive

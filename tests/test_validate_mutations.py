"""Mutation smoke tests: every deliberately-injected bug must be caught.

Each test plants one plausible regression — a metric skew, a kernel
off-by-one, a dropped repair path, a corrupted replay — and asserts that
a baseline gate or a differential oracle rejects it with a structured
failure report.  Together they demonstrate the validation subsystem has
teeth: a change that silently alters paper-relevant behavior cannot pass.

The in-process experiment caches are keyed by settings only (not by
monkeypatched code!), so every arm clears them — otherwise a mutated run
would happily replay the unmutated cached result and the mutation would
be invisible.
"""

import json

import numpy as np
import pytest

from repro.experiments.common import clear_caches
from repro.validate.baseline import Baseline, build_baseline, collect_samples
from repro.validate.differential import run_oracle
from repro.validate.gate import run_gate

#: Tiny per-figure operating points (2 seeds, reduced axes) so each
#: mutation round-trip (clean baseline + mutated re-run) stays around a
#: second.
OPERATING_POINTS = {
    "fig04": {"scale": 0.05, "seeds": [1, 2], "kwargs": {"sizes": [2000]}},
    "fig07": {"scale": 0.05, "seeds": [1, 2], "kwargs": {"sizes": [2000]}},
    "fig08": {"scale": 0.05, "seeds": [1, 2], "kwargs": {"sizes": [2000]}},
    "fig14": {
        "scale": 0.05,
        "seeds": [1, 2],
        "kwargs": {"population": 2000, "replicas": 2},
    },
}


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _gate_against_clean_baseline(experiment_id: str) -> "Baseline":
    point = OPERATING_POINTS[experiment_id]
    return build_baseline(
        experiment_id,
        scale=point["scale"],
        seeds=point["seeds"],
        kwargs=point["kwargs"],
    )


def _mutated_outcome(baseline: Baseline):
    """Re-run the baseline's experiment (mutation active) and gate it."""
    clear_caches()
    samples = collect_samples(
        baseline.experiment_id, baseline.scale, baseline.seeds, baseline.kwargs
    )
    return run_gate(baseline, samples=samples)


def _assert_structured_failure(payload: dict) -> None:
    """Any rejection must be a machine-readable report, not just an exit."""
    json.dumps(payload)  # serializable
    assert payload["passed"] is False
    if "metric_failures" in payload:
        failures = payload["metric_failures"] + [
            t for t in payload["trends"] if not t["passed"]
        ]
        assert failures
        assert all(f["detail"] for f in failures)
    else:
        assert payload["differences"]
        assert all(d["path"] and d["detail"] for d in payload["differences"])


# -- gate-caught mutations ---------------------------------------------------------


def test_delay_skew_caught_by_fig07_gate(monkeypatch):
    """Bug: service delays reported 1.5x too high (unit mix-up)."""
    from repro.metrics import collectors

    baseline = _gate_against_clean_baseline("fig07")
    original = collectors.ChurnMetrics.avg_service_delay_ms
    monkeypatch.setattr(
        collectors.ChurnMetrics,
        "avg_service_delay_ms",
        property(lambda self: original.fget(self) * 1.5),
    )
    outcome = _mutated_outcome(baseline)
    assert not outcome.passed
    assert any("series" in v.path for v in outcome.metric_failures)
    _assert_structured_failure(outcome.to_payload())


def test_disruption_undercount_caught_by_fig04_gate(monkeypatch):
    """Bug: half of all streaming disruptions go unrecorded."""
    from repro.metrics import collectors

    baseline = _gate_against_clean_baseline("fig04")
    original = collectors.ChurnMetrics.record_disruptions
    monkeypatch.setattr(
        collectors.ChurnMetrics,
        "record_disruptions",
        lambda self, t, affected: original(self, t, affected // 2),
    )
    outcome = _mutated_outcome(baseline)
    assert not outcome.passed
    _assert_structured_failure(outcome.to_payload())


def test_stretch_corruption_caught_by_fig08_gate(monkeypatch):
    """Bug: a constant additive error creeps into the stretch metric."""
    from repro.metrics import collectors

    baseline = _gate_against_clean_baseline("fig08")
    original = collectors.ChurnMetrics.avg_stretch
    monkeypatch.setattr(
        collectors.ChurnMetrics,
        "avg_stretch",
        property(lambda self: original.fget(self) + 0.5),
    )
    outcome = _mutated_outcome(baseline)
    assert not outcome.passed
    _assert_structured_failure(outcome.to_payload())


def test_dropped_repair_paths_caught_by_fig14_gate(monkeypatch):
    """Bug: MLC group selection silently returns one member, not k."""
    from repro.simulation import streaming

    baseline = _gate_against_clean_baseline("fig14")
    original = streaming.select_mlc_group
    monkeypatch.setattr(
        streaming,
        "select_mlc_group",
        lambda *args, **kwargs: original(*args, **kwargs)[:1],
    )
    outcome = _mutated_outcome(baseline)
    assert not outcome.passed
    _assert_structured_failure(outcome.to_payload())


# -- oracle-caught mutations -------------------------------------------------------


def test_stripe_timing_skew_caught_by_episode_oracle(monkeypatch):
    """Bug: striped repair arrivals shifted by a constant (an extra hop)."""
    from repro.recovery import episode

    original = episode._striped_arrivals

    def skewed(arrivals, packet_rate_pps, detect_s, request_hop_s, sources):
        outcome = original(
            arrivals, packet_rate_pps, detect_s, request_hop_s, sources
        )
        arrivals += 0.05
        return outcome

    monkeypatch.setattr(episode, "_striped_arrivals", skewed)
    outcome = run_oracle("episode_pricing", seed=0)
    assert not outcome.equal
    _assert_structured_failure(outcome.to_payload())


def test_group_correlation_off_by_one_caught_by_kernel_oracle(monkeypatch):
    """Bug: the vectorized group-correlation kernel over-counts by one."""
    from repro.recovery import mlc

    original = mlc.group_loss_correlation
    monkeypatch.setattr(
        mlc, "group_loss_correlation", lambda nodes: original(nodes) + 1
    )
    outcome = run_oracle("mlc_kernels", seed=0)
    assert not outcome.equal
    assert any("group_loss_correlation" in d["path"] for d in outcome.differences)
    _assert_structured_failure(outcome.to_payload())


def test_batch_delay_bias_caught_by_delay_oracle(monkeypatch):
    """Bug: the vectorized delay path gains a tiny constant bias."""
    from repro.topology import routing

    original = routing.DelayOracle.delays_from
    monkeypatch.setattr(
        routing.DelayOracle,
        "delays_from",
        lambda self, source, targets: original(self, source, targets) + 0.01,
    )
    outcome = run_oracle("delay_oracle", seed=0)
    assert not outcome.equal
    _assert_structured_failure(outcome.to_payload())


def test_corrupted_replay_caught_by_resume_oracle(monkeypatch):
    """Bug: store replay returns a subtly perturbed result payload."""
    from repro.store import runstore

    def _bump_first_float(data):
        if isinstance(data, dict):
            for key in sorted(data, key=str):
                if _bump_first_float(data[key]):
                    return True
                if isinstance(data[key], float) and np.isfinite(data[key]):
                    data[key] = data[key] * 1.01 + 0.01
                    return True
        elif isinstance(data, list):
            for index, item in enumerate(data):
                if _bump_first_float(item):
                    return True
                if isinstance(item, float) and np.isfinite(item):
                    data[index] = item * 1.01 + 0.01
                    return True
        return False

    original = runstore.RunStore.replay

    def corrupted(self, key):
        result = original(self, key)
        if result is not None:
            assert _bump_first_float(result.data), "no float leaf to corrupt"
        return result

    monkeypatch.setattr(runstore.RunStore, "replay", corrupted)
    outcome = run_oracle("resume", seed=0)
    assert not outcome.equal
    _assert_structured_failure(outcome.to_payload())

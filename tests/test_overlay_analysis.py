"""Tree analytics."""

import pytest

from repro.overlay.analysis import (
    btp_ordering_violations,
    depth_histogram,
    failure_impact_distribution,
    layer_statistics,
    tree_statistics,
)
from repro.overlay.tree import MulticastTree
from tests.conftest import make_node


@pytest.fixture()
def chain_tree():
    """root -> a(bw 4) -> b(bw 2) -> c(bw 0.5 free-rider)."""
    root = make_node(0, bandwidth=4.0, cap=4, is_root=True)
    tree = MulticastTree(root)
    a = make_node(1, bandwidth=4.0, cap=4, join_time=0.0)
    b = make_node(2, bandwidth=2.0, cap=2, join_time=10.0)
    c = make_node(3, bandwidth=0.5, cap=0, join_time=20.0)
    for node in (a, b, c):
        tree.add_member(node)
    tree.attach(a, root)
    tree.attach(b, a)
    tree.attach(c, b)
    return tree, a, b, c


def test_tree_statistics(chain_tree):
    tree, a, b, c = chain_tree
    stats = tree_statistics(tree, now=100.0)
    assert stats.members == 3
    assert stats.depth == 3
    assert stats.mean_depth == pytest.approx(2.0)
    assert stats.total_capacity == 6
    assert stats.total_spare == 4  # a has 3 spare, b has 1
    assert stats.free_rider_fraction == pytest.approx(1 / 3)
    assert len(stats.layers) == 3


def test_layer_statistics(chain_tree):
    tree, a, b, c = chain_tree
    layers = layer_statistics(tree, now=100.0)
    first = layers[0]
    assert first.layer == 1 and first.members == 1
    assert first.mean_bandwidth == pytest.approx(4.0)
    assert first.mean_age_s == pytest.approx(100.0)
    assert first.mean_descendants == pytest.approx(2.0)
    last = layers[-1]
    assert last.free_rider_fraction == 1.0


def test_depth_histogram(chain_tree):
    tree, *_ = chain_tree
    histogram = depth_histogram(tree)
    assert histogram == {0: 1, 1: 1, 2: 1, 3: 1}


def test_failure_impact_distribution(chain_tree):
    tree, *_ = chain_tree
    assert sorted(failure_impact_distribution(tree)) == [0, 1, 2]


def test_btp_violations(chain_tree):
    tree, a, b, c = chain_tree
    # BTPs at t=100: a=400, b=180, c=40 — properly ordered
    assert btp_ordering_violations(tree, now=100.0) == 0
    # move time so the child c (bw .5) cannot overtake, but push b's age
    # advantage: make b older than a by faking join times
    b.join_time = -10000.0
    assert btp_ordering_violations(tree, now=100.0) >= 1


def test_empty_tree():
    root = make_node(0, bandwidth=4.0, cap=4, is_root=True)
    tree = MulticastTree(root)
    stats = tree_statistics(tree, now=0.0)
    assert stats.members == 0
    assert stats.layers == []
    assert failure_impact_distribution(tree) == []

"""Mutation smoke tests: every invariant checker must catch a seeded bug.

Each test plants one deliberate defect — in the event kernel, the tree
maintenance, the ROST switch machinery, the recovery pricing or the
fault injector — runs a small simulation under a non-strict
:class:`~repro.invariants.InvariantChecker`, and asserts the matching
invariant fired.  Together they demonstrate the checker is a live
tripwire at every layer, not a formality that never triggers.

These are plain tier-1 tests (no hypothesis involved); the generative
counterparts live in ``test_protocol_fuzz.py``.
"""

from __future__ import annotations

import dataclasses
from types import SimpleNamespace

import repro.protocols.rost.protocol as rost_protocol_module
import repro.recovery.episode as episode_module
import repro.simulation.streaming as streaming_module
from repro.faults import FaultInjector, FaultSchedule, NodeCrash
from repro.invariants import InvariantChecker
from repro.overlay.node import OverlayNode
from repro.overlay.tree import MulticastTree
from repro.protocols import PROTOCOLS
from repro.protocols.rost.protocol import RostProtocol
from repro.recovery.episode import BackfillSpec, RepairSource
from repro.recovery.schemes import cer_scheme
from repro.sim.engine import Simulator
from repro.sim.events import EventQueue
from repro.simulation.churn import ChurnSimulation
from repro.simulation.streaming import RecoverySimulation
from repro.workload.generator import ChurnWorkload
from repro.workload.session import RootSpec, Session
from tests.conftest import make_node, small_sim_config


def build_workload(config, sessions, horizon):
    return ChurnWorkload(
        config=config.workload,
        root=RootSpec(bandwidth=config.workload.root_bandwidth, underlay_node=6),
        sessions=sorted(sessions, key=lambda s: s.arrival_s),
        horizon_s=horizon,
    )


def make_sessions(count, arrival, lifetime, bandwidth, start_id=1, node=6):
    return [
        Session(
            member_id=start_id + i,
            arrival_s=arrival,
            lifetime_s=lifetime,
            bandwidth=bandwidth,
            underlay_node=node + i % 48,
        )
        for i in range(count)
    ]


def narrow_root(cfg, bandwidth=4.0):
    """Cap the root's out-degree so trees grow deep instead of flat."""
    return dataclasses.replace(
        cfg, workload=dataclasses.replace(cfg.workload, root_bandwidth=bandwidth)
    )


def kernel_checker(**checker_kwargs):
    """A bare Simulator + empty tree wrapped for checker attachment."""
    sim = Simulator()
    tree = MulticastTree(make_node(0, bandwidth=10.0, cap=10, is_root=True))
    checker = InvariantChecker(strict=False, **checker_kwargs)
    checker.attach(SimpleNamespace(sim=sim, tree=tree, disruption_observer=None))
    return sim, checker


def always_swap(self, node):
    """Mutant _switch_action: swap whenever structurally possible,
    ignoring the BTP comparison entirely."""
    parent = node.parent
    if not node.attached or parent is None or parent.is_root or parent.parent is None:
        return "none"
    if node.out_degree_cap < len(parent.children):
        return "none"
    return "swap"


# -- sim layer -----------------------------------------------------------------


def test_cancelled_event_firing_is_detected(monkeypatch):
    """Break the queue's cancelled-head filtering: a cancelled timer fires."""
    monkeypatch.setattr(EventQueue, "_drop_cancelled_head", lambda self: None)
    sim, checker = kernel_checker(interval_events=10_000)
    victim = sim.schedule_at(60.0, lambda: None, label="victim")
    sim.schedule_at(50.0, victim.cancel)
    sim.run_until(100.0)
    assert "sim-no-fire-after-cancel" in checker.violation_names


def test_time_travel_scheduling_is_detected():
    """Bypass schedule_at's past-guard (as a buggy caller could, going
    through the raw queue): the clock runs backwards."""
    sim, checker = kernel_checker(interval_events=10_000)
    sim.schedule_at(
        300.0,
        lambda: sim._queue.schedule(100.0, lambda: None, 0, "time-travel-bug"),
    )
    sim.run_until(400.0)
    assert "sim-clock-monotonic" in checker.violation_names


# -- tree layer ----------------------------------------------------------------


def test_degree_cap_overflow_is_detected(monkeypatch):
    """An off-by-one spare_degree lets every member over-admit children."""
    monkeypatch.setattr(
        OverlayNode,
        "spare_degree",
        property(lambda self: self.out_degree_cap - len(self.children) + 1),
    )
    cfg = narrow_root(small_sim_config(population=40, seed=3))
    sessions = make_sessions(30, arrival=1.0, lifetime=5000.0, bandwidth=2.0)
    workload = build_workload(cfg, sessions, horizon=300.0)
    checker = InvariantChecker(strict=False, interval_events=16)
    ChurnSimulation(
        cfg, PROTOCOLS["min-depth"], workload=workload, check_invariants=checker
    ).run()
    assert "tree-degree-cap" in checker.violation_names


def test_lost_rejoin_timer_is_detected():
    """A departure handler that forgets its orphans' rejoin timers leaves
    ever-attached members detached with no recovery in flight."""
    cfg = narrow_root(small_sim_config(population=40, seed=4))
    early = make_sessions(8, arrival=0.0, lifetime=300.0, bandwidth=2.0)
    late = make_sessions(24, arrival=10.0, lifetime=5000.0, bandwidth=2.0, start_id=100)
    workload = build_workload(cfg, early + late, horizon=600.0)
    checker = InvariantChecker(strict=False, interval_events=64)
    sim = ChurnSimulation(
        cfg, PROTOCOLS["min-depth"], workload=workload, check_invariants=checker
    )
    orig_departure = sim._on_departure

    def forgetful_departure(node, cause="churn", co_failed_ids=frozenset()):
        orig_departure(node, cause=cause, co_failed_ids=co_failed_ids)
        for timer in sim._pending_rejoins.values():
            timer.cancel()
        sim._pending_rejoins.clear()

    sim._on_departure = forgetful_departure
    sim.run()
    assert "tree-orphan-recovery" in checker.violation_names


# -- rost layer ----------------------------------------------------------------


def test_btp_inversion_is_detected(monkeypatch):
    """A switch rule that ignores BTP promotes young members over old ones."""
    monkeypatch.setattr(RostProtocol, "_switch_action", always_swap)
    cfg = narrow_root(small_sim_config(population=40, seed=5, switch_interval_s=20.0))
    old = make_sessions(12, arrival=0.0, lifetime=5000.0, bandwidth=2.0)
    young = make_sessions(20, arrival=60.0, lifetime=5000.0, bandwidth=2.0, start_id=100)
    workload = build_workload(cfg, old + young, horizon=400.0)
    checker = InvariantChecker(strict=False, interval_events=64)
    ChurnSimulation(
        cfg, PROTOCOLS["rost"], workload=workload, check_invariants=checker
    ).run()
    assert "rost-switch-btp-order" in checker.violation_names


def test_phantom_lock_grants_are_detected(monkeypatch):
    """A lock service that grants everything lets one member switch twice
    inside a single lock-hold window."""
    monkeypatch.setattr(
        rost_protocol_module, "try_lock_all", lambda involved, now, until: True
    )
    monkeypatch.setattr(RostProtocol, "_switch_action", always_swap)
    cfg = narrow_root(small_sim_config(population=40, seed=6, switch_interval_s=1.0))
    sessions = make_sessions(30, arrival=0.0, lifetime=5000.0, bandwidth=2.0)
    workload = build_workload(cfg, sessions, horizon=120.0)
    checker = InvariantChecker(strict=False, interval_events=64)
    ChurnSimulation(
        cfg, PROTOCOLS["rost"], workload=workload, check_invariants=checker
    ).run()
    assert "rost-lock-no-double-grant" in checker.violation_names


# -- recovery layer ------------------------------------------------------------


def recovery_fixture():
    """A RecoverySimulation wired to a non-strict checker (not run: the
    tests price episodes directly through the wrapped observer)."""
    scheme = cer_scheme(group_size=3)
    checker = InvariantChecker(strict=False, interval_events=64)
    rsim = RecoverySimulation(
        small_sim_config(population=30, seed=7),
        PROTOCOLS["min-depth"],
        [scheme],
        check_invariants=checker,
    )
    return rsim, scheme, checker


def test_broken_striping_is_detected(monkeypatch):
    """Striping that skips the first source under-covers the stream rate."""
    orig = episode_module._striped_arrivals

    def skips_first_source(arrivals, rate, detect, hop, sources):
        return orig(arrivals, rate, detect, hop, list(sources)[1:])

    monkeypatch.setattr(episode_module, "_striped_arrivals", skips_first_source)
    rsim, scheme, checker = recovery_fixture()
    rate = rsim.observer.recovery_config.packet_rate_pps
    sources = [
        RepairSource(member_id=900 + i, rate_pps=0.7 * rate, has_data=True,
                     delay_ms=5.0 * i)
        for i in range(2)
    ]
    rsim.observer._apply_episode(
        scheme, 100.0, [make_node(500, join_time=0.0)], sources, 50, None
    )
    assert "recovery-residual-covers-rate" in checker.violation_names


def test_out_of_window_backfill_is_detected(monkeypatch):
    """Backfill that ignores the buffer cutoff replays the whole gap."""
    orig = episode_module._backfill_arrivals

    def ignores_cutoff(arrivals, deadlines, backfill):
        unbounded = BackfillSpec(
            start_s=backfill.start_s, rate_pps=backfill.rate_pps, cutoff_seq=0
        )
        return orig(arrivals, deadlines, unbounded)

    monkeypatch.setattr(episode_module, "_backfill_arrivals", ignores_cutoff)
    rsim, scheme, checker = recovery_fixture()
    backfill = BackfillSpec(start_s=1.0, rate_pps=1e6, cutoff_seq=40)
    rsim.observer._apply_episode(
        scheme, 100.0, [make_node(501, join_time=0.0)], [], 50, backfill
    )
    assert "recovery-backfill-window" in checker.violation_names


def test_inflated_repair_accounting_is_detected(monkeypatch):
    """Pricing that claims more repairs than the gap held breaks packet
    conservation."""
    orig = streaming_module.starvation_episode

    def inflated(**kwargs):
        outcome = orig(**kwargs)
        return dataclasses.replace(
            outcome, repaired_in_time=outcome.gap_packets + 7
        )

    monkeypatch.setattr(streaming_module, "starvation_episode", inflated)
    rsim, scheme, checker = recovery_fixture()
    rate = rsim.observer.recovery_config.packet_rate_pps
    sources = [RepairSource(member_id=900, rate_pps=1.5 * rate, has_data=True)]
    rsim.observer._apply_episode(
        scheme, 100.0, [make_node(502, join_time=0.0)], sources, 50, None
    )
    assert "recovery-episode-conservation" in checker.violation_names


# -- faults layer --------------------------------------------------------------


def test_non_atomic_cofailure_is_detected(monkeypatch):
    """An injector that staggers a correlated kill leaves half the victims
    alive past the event instant."""

    def lazy_kill(self, victims, cause):
        victims = sorted(
            (v for v in victims if not v.is_root), key=lambda n: n.member_id
        )
        co_failed = frozenset(v.member_id for v in victims)
        half = len(victims) // 2
        killed = []
        for victim in victims[:half]:
            if self.churn.fail_member(victim, cause=cause, co_failed_ids=co_failed):
                killed.append(victim.member_id)
        for victim in victims[half:]:
            self.churn.sim.schedule_in(
                30.0,
                lambda v=victim: self.churn.fail_member(
                    v, cause=cause, co_failed_ids=co_failed
                ),
            )
        return killed

    monkeypatch.setattr(FaultInjector, "kill", lazy_kill)
    cfg = narrow_root(small_sim_config(population=40, seed=9))
    sessions = make_sessions(30, arrival=0.0, lifetime=5000.0, bandwidth=2.0)
    workload = build_workload(cfg, sessions, horizon=400.0)
    checker = InvariantChecker(strict=False, interval_events=1)
    sim = ChurnSimulation(
        cfg, PROTOCOLS["min-depth"], workload=workload, check_invariants=checker
    )
    FaultInjector(
        FaultSchedule(seed=9, faults=(NodeCrash(at_s=100.0, count=10),))
    ).bind(sim)
    sim.run()
    assert "fault-atomic-cofail" in checker.violation_names

"""Property-based tests for FaultSchedule: RNG prefix invariance and
lossless spec round-trips through both the JSON and the TOML writers.

Run explicitly with ``pytest -m fuzz`` (excluded from tier-1 by the
default marker expression in pyproject.toml).
"""

from __future__ import annotations

import os
import tempfile

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st

from repro.faults import (
    ChurnSurge,
    FaultInjector,
    FaultSchedule,
    FlashCrowd,
    LinkDegradation,
    NodeCrash,
    StubDomainOutage,
)
from repro.faults.schedule import dumps_toml, load_schedule, save_schedule
from repro.protocols import PROTOCOLS
from repro.simulation.churn import ChurnSimulation
from repro.topology.routing import DelayOracle
from repro.topology.transit_stub import generate_transit_stub
from repro.workload.generator import ChurnWorkload
from repro.workload.session import RootSpec, Session
from tests.conftest import TINY_TOPOLOGY, small_sim_config

pytestmark = pytest.mark.fuzz

TOPOLOGY = generate_transit_stub(TINY_TOPOLOGY)
ORACLE = DelayOracle(TOPOLOGY)

#: Fixed workload: the properties vary only the fault schedules.
SESSIONS = [
    Session(
        member_id=i + 1,
        arrival_s=0.0,
        lifetime_s=5000.0,
        bandwidth=2.0,
        underlay_node=6 + i % 48,
    )
    for i in range(30)
]


def finite(lo, hi):
    return st.floats(min_value=lo, max_value=hi,
                     allow_nan=False, allow_infinity=False)


# -- prefix invariance ---------------------------------------------------------

#: Faults whose effect (and RNG draws) land before t=300.
early_faults = st.one_of(
    st.builds(
        NodeCrash,
        at_s=finite(50.0, 300.0),
        count=st.integers(1, 8),
        selector=st.sampled_from(NodeCrash.SELECTORS),
    ),
    st.builds(StubDomainOutage, at_s=finite(50.0, 300.0), domains=st.integers(1, 2)),
    st.builds(
        ChurnSurge,
        at_s=finite(50.0, 300.0),
        lifetime_factor=finite(0.3, 0.9),
        fraction=finite(0.2, 0.9),
    ),
)


def injector_log(schedule):
    cfg = small_sim_config(population=40, seed=11)
    workload = ChurnWorkload(
        config=cfg.workload,
        root=RootSpec(bandwidth=cfg.workload.root_bandwidth, underlay_node=6),
        sessions=SESSIONS,
        horizon_s=600.0,
    )
    sim = ChurnSimulation(
        cfg,
        PROTOCOLS["min-depth"],
        topology=TOPOLOGY,
        oracle=ORACLE,
        workload=workload,
    )
    injector = FaultInjector(schedule).bind(sim)
    sim.run()
    return injector.log


@given(
    base=st.lists(early_faults, min_size=1, max_size=3),
    seed=st.integers(0, 2**16),
    extra_count=st.integers(1, 5),
)
def test_appending_a_fault_never_perturbs_earlier_draws(base, seed, extra_count):
    """Per-fault RNG streams are keyed (schedule seed, fault index), so a
    fault appended to a schedule must leave every earlier fault's
    injection log — victim picks included — byte-identical."""
    extra = NodeCrash(at_s=450.0, count=extra_count)
    log_a = injector_log(FaultSchedule(seed=seed, faults=tuple(base)))
    log_b = injector_log(FaultSchedule(seed=seed, faults=tuple(base) + (extra,)))
    assert log_b[: len(log_a)] == log_a
    assert len(log_b) == len(log_a) + 1
    assert log_b[-1][1] == "node-crash"


# -- spec round-trips ----------------------------------------------------------


@st.composite
def timing(draw):
    if draw(st.booleans()):
        return {"at_s": draw(finite(0.0, 5000.0))}
    return {"at_frac": draw(finite(0.0, 1.0))}


@st.composite
def any_fault(draw):
    kind = draw(st.sampled_from(["crash", "outage", "degrade", "crowd", "surge"]))
    when = draw(timing())
    if kind == "crash":
        return NodeCrash(
            count=draw(st.integers(1, 100)),
            selector=draw(st.sampled_from(NodeCrash.SELECTORS)),
            member_ids=tuple(draw(st.lists(st.integers(1, 10_000), max_size=4))),
            **when,
        )
    if kind == "outage":
        return StubDomainOutage(
            domains=draw(st.integers(1, 5)),
            domain_ids=tuple(draw(st.lists(st.integers(0, 40), max_size=3))),
            **when,
        )
    if kind == "degrade":
        return LinkDegradation(
            duration_s=draw(finite(0.001, 600.0)),
            delay_factor=draw(finite(1.0, 20.0)),
            loss_rate=draw(finite(0.0, 1.0)),
            domain_ids=tuple(draw(st.lists(st.integers(0, 40), max_size=3))),
            **when,
        )
    if kind == "crowd":
        return FlashCrowd(
            size=draw(st.integers(1, 500)),
            spread_s=draw(finite(0.0, 300.0)),
            bandwidth=draw(st.one_of(st.none(), finite(0.0, 5.0))),
            **when,
        )
    return ChurnSurge(
        lifetime_factor=draw(finite(0.001, 1.0)),
        fraction=draw(finite(0.001, 1.0)),
        **when,
    )


schedules = st.builds(
    FaultSchedule,
    seed=st.integers(0, 2**31 - 1),
    faults=st.lists(any_fault(), max_size=4).map(tuple),
)


@given(schedule=schedules)
def test_spec_round_trips_losslessly_in_json_and_toml(schedule):
    with tempfile.TemporaryDirectory() as tmp:
        for filename in ("schedule.json", "schedule.toml"):
            path = os.path.join(tmp, filename)
            save_schedule(path, schedule)
            loaded = load_schedule(path)
            assert loaded == schedule, filename
            assert loaded.to_spec() == schedule.to_spec(), filename


@given(schedule=schedules)
def test_toml_writer_output_parses_with_tomllib(schedule):
    import tomllib

    spec = schedule.to_spec()
    assert tomllib.loads(dumps_toml(spec)) == spec

"""Property-based protocol fuzzing: random churn + faults, zero violations.

Hypothesis generates random join/leave schedules and small fault
campaigns, runs them under a *strict* :class:`InvariantChecker` sweeping
after every event, and asserts the full registered invariant suite holds
throughout.  Profiles are registered in ``tests/conftest.py``
(``HYPOTHESIS_PROFILE=ci`` derandomizes for the CI smoke job).

Run explicitly with ``pytest -m fuzz``; excluded from tier-1 by the
default marker expression in pyproject.toml.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st

from repro.faults import (
    FaultInjector,
    FaultSchedule,
    FlashCrowd,
    NodeCrash,
    StubDomainOutage,
)
from repro.invariants import InvariantChecker
from repro.protocols import PROTOCOLS
from repro.recovery.schemes import cer_scheme
from repro.simulation.churn import ChurnSimulation
from repro.simulation.streaming import RecoverySimulation
from repro.topology.routing import DelayOracle
from repro.topology.transit_stub import generate_transit_stub
from repro.workload.generator import ChurnWorkload
from repro.workload.session import RootSpec, Session
from tests.conftest import TINY_TOPOLOGY, small_sim_config

pytestmark = pytest.mark.fuzz

# Shared read-only underlay: building it per example would dominate runtime.
TOPOLOGY = generate_transit_stub(TINY_TOPOLOGY)
ORACLE = DelayOracle(TOPOLOGY)

HORIZON_S = 600.0


def build_workload(config, sessions, horizon=HORIZON_S):
    return ChurnWorkload(
        config=config.workload,
        root=RootSpec(bandwidth=config.workload.root_bandwidth, underlay_node=6),
        sessions=sorted(sessions, key=lambda s: s.arrival_s),
        horizon_s=horizon,
    )


def finite(lo, hi):
    return st.floats(min_value=lo, max_value=hi,
                     allow_nan=False, allow_infinity=False)


fault_times = finite(10.0, 500.0)

faults = st.one_of(
    st.builds(
        NodeCrash,
        at_s=fault_times,
        count=st.integers(1, 5),
        selector=st.sampled_from(NodeCrash.SELECTORS),
    ),
    st.builds(StubDomainOutage, at_s=fault_times, domains=st.integers(1, 2)),
    st.builds(
        FlashCrowd,
        at_s=fault_times,
        size=st.integers(1, 8),
        spread_s=finite(0.0, 30.0),
    ),
)


@st.composite
def churn_scenarios(draw):
    count = draw(st.integers(3, 25))
    sessions = [
        Session(
            member_id=i + 1,
            arrival_s=draw(finite(0.0, 300.0)),
            lifetime_s=draw(finite(30.0, 900.0)),
            bandwidth=draw(st.sampled_from([0.5, 1.0, 2.0, 3.0])),
            underlay_node=6 + i % 48,
        )
        for i in range(count)
    ]
    protocol = draw(st.sampled_from(["min-depth", "rost", "relaxed-bo"]))
    seed = draw(st.integers(0, 2**16))
    schedule = tuple(draw(st.lists(faults, max_size=3)))
    return sessions, protocol, seed, schedule


@given(scenario=churn_scenarios())
def test_fuzzed_churn_upholds_every_invariant(scenario):
    sessions, protocol, seed, schedule = scenario
    cfg = small_sim_config(population=40, seed=seed % 997)
    checker = InvariantChecker(strict=True, interval_events=1)
    sim = ChurnSimulation(
        cfg,
        PROTOCOLS[protocol],
        topology=TOPOLOGY,
        oracle=ORACLE,
        workload=build_workload(cfg, sessions),
        check_invariants=checker,
    )
    if schedule:
        FaultInjector(FaultSchedule(seed=seed, faults=schedule)).bind(sim)
    sim.run()  # the strict checker raises InvariantError on any violation
    assert checker.violations == []
    assert checker.sweeps > 0


@given(scenario=churn_scenarios())
def test_fuzzed_recovery_upholds_every_invariant(scenario):
    """The same scenarios through RecoverySimulation, so the disruption ->
    episode-pricing path runs under the recovery-layer invariants too."""
    sessions, protocol, seed, schedule = scenario
    cfg = small_sim_config(population=40, seed=seed % 997)
    checker = InvariantChecker(strict=True, interval_events=16)
    rsim = RecoverySimulation(
        cfg,
        PROTOCOLS[protocol],
        [cer_scheme(group_size=3)],
        topology=TOPOLOGY,
        oracle=ORACLE,
        workload=build_workload(cfg, sessions),
        check_invariants=checker,
    )
    if schedule:
        FaultInjector(FaultSchedule(seed=seed, faults=schedule)).bind(rsim.churn)
    rsim.run()
    assert checker.violations == []
    assert checker.sweeps > 0

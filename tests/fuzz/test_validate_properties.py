"""Property-based tests for the validation subsystem's statistics and
its flagship differential: vectorized-vs-naive kernels under *random*
fault schedules.

Run explicitly with ``pytest -m fuzz`` (excluded from tier-1 by the
default marker expression in pyproject.toml).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.metrics.stats import bootstrap_ci_95, mean_and_ci, within_tolerance
from repro.validate.baseline import flatten_numeric

pytestmark = pytest.mark.fuzz

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)


class TestBootstrapCI:
    @given(values=st.lists(finite, min_size=1, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_bounds_are_ordered_and_inside_the_sample_range(self, values):
        lo, hi = bootstrap_ci_95(values)
        assert lo <= hi
        # Resampled means carry ~1-ulp summation noise; allow exactly that.
        slack = 4 * np.spacing(max(abs(min(values)), abs(max(values))))
        assert min(values) - slack <= lo and hi <= max(values) + slack

    @given(values=st.lists(finite, min_size=2, max_size=40), seed=st.integers(0, 2**31))
    @settings(max_examples=100, deadline=None)
    def test_deterministic_for_a_given_seed(self, values, seed):
        assert bootstrap_ci_95(values, seed=seed) == bootstrap_ci_95(
            values, seed=seed
        )

    @given(value=finite, n=st.integers(1, 10))
    @settings(max_examples=100, deadline=None)
    def test_degenerate_sample_collapses_to_a_point(self, value, n):
        lo, hi = bootstrap_ci_95([value] * n)
        assert lo == hi == value

    @given(values=st.lists(finite, min_size=3, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_interval_brackets_the_sample_mean(self, values):
        lo, hi = bootstrap_ci_95(values, n_resamples=4000)
        mean, _ = mean_and_ci(values)
        # The percentile bootstrap of the mean must cover the point
        # estimate itself (up to resampling granularity on tiny samples).
        span = max(hi - lo, 1e-9 * max(1.0, abs(mean)))
        assert lo - span <= mean <= hi + span


class TestWithinTolerance:
    @given(a=finite, b=finite, rtol=st.floats(0, 1), atol=st.floats(0, 1e6))
    @settings(max_examples=300, deadline=None)
    def test_symmetry(self, a, b, rtol, atol):
        assert within_tolerance(a, b, rtol=rtol, atol=atol) == within_tolerance(
            b, a, rtol=rtol, atol=atol
        )

    @given(a=finite, rtol=st.floats(0, 1), atol=st.floats(0, 1e6))
    @settings(max_examples=200, deadline=None)
    def test_reflexivity_and_nan_laws(self, a, rtol, atol):
        assert within_tolerance(a, a, rtol=rtol, atol=atol)
        # NaN matches NaN and nothing else, whatever the tolerances.
        assert within_tolerance(math.nan, math.nan, rtol=rtol, atol=atol)
        assert not within_tolerance(a, math.nan, rtol=rtol, atol=atol)
        assert not within_tolerance(math.nan, a, rtol=rtol, atol=atol)

    @given(
        a=finite,
        b=finite,
        rtol=st.floats(0, 0.5),
        atol=st.floats(0, 1e3),
        widen=st.floats(1e-6, 10),
    )
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_both_tolerances(self, a, b, rtol, atol, widen):
        if within_tolerance(a, b, rtol=rtol, atol=atol):
            assert within_tolerance(a, b, rtol=rtol + widen, atol=atol)
            assert within_tolerance(a, b, rtol=rtol, atol=atol + widen)


class TestFlattenNumeric:
    @given(
        data=st.recursive(
            st.one_of(finite, st.booleans(), st.text(max_size=5)),
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.dictionaries(st.text(max_size=5), children, max_size=4),
            ),
            max_leaves=20,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_paths_are_unique_and_values_numeric(self, data):
        flat = flatten_numeric(data)
        assert all(isinstance(v, float) for v in flat.values())
        assert all(not isinstance(v, bool) for v in flat.values())
        # Flattening is deterministic.
        assert flat == flatten_numeric(data)


class TestKernelDifferentialUnderRandomFaults:
    """The tentpole property: for ANY small fault schedule, the
    vectorized/cached MLC kernels agree exactly with the naive
    walk-the-tree references on the post-fault overlay."""

    @given(
        seed=st.integers(0, 2**16),
        crash_counts=st.lists(st.integers(1, 6), min_size=1, max_size=3),
        crash_times=st.lists(
            st.floats(10.0, 500.0, allow_nan=False), min_size=3, max_size=3
        ),
        selector=st.sampled_from(["random", "root-children", "high-degree"]),
        outage=st.booleans(),
    )
    @settings(max_examples=15, deadline=None)
    def test_vectorized_equals_naive_after_random_schedule(
        self, seed, crash_counts, crash_times, selector, outage
    ):
        from repro.faults import FaultSchedule, NodeCrash, StubDomainOutage
        from repro.validate.differential import run_mlc_kernel_differential

        faults = [
            NodeCrash(at_s=crash_times[i], count=count, selector=selector)
            for i, count in enumerate(crash_counts)
        ]
        if outage:
            faults.append(StubDomainOutage(at_s=crash_times[-1], domains=1))
        schedule = FaultSchedule(seed=seed % 1000, faults=tuple(faults))
        outcome = run_mlc_kernel_differential(seed=seed, schedule=schedule)
        assert outcome.equal, outcome.differences[:5]
        assert outcome.meta["comparisons"] > 0

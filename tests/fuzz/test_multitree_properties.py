"""Property-based laws for the multitree interval algebra.

The blackout/outage accounting in :mod:`repro.multitree.metrics` leans
entirely on ``intersect_many`` / ``clip_intervals`` / ``total_length``
behaving like honest set algebra on unions of closed intervals.  These
properties pin the laws the aggregator implicitly assumes: commutativity
of intersection, monotonicity under clipping, the measure bound
``|A ∩ B| <= min(|A|, |B|)``, and the degenerate/empty-interval edge
cases the event-driven callers can produce (zero-length outage windows,
inverted pairs from clock ties).

Run explicitly with ``pytest -m fuzz`` (excluded from tier-1 by the
default marker expression in pyproject.toml).
"""

from __future__ import annotations

import math

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.multitree.intervals import (
    clip_intervals,
    intersect_many,
    intersect_two,
    merge_intervals,
    total_length,
)

pytestmark = pytest.mark.fuzz

EPS = 1e-9


def coord():
    return st.floats(
        min_value=-100.0,
        max_value=100.0,
        allow_nan=False,
        allow_infinity=False,
        width=32,
    )


#: Raw interval pairs as callers produce them: unsorted, overlapping,
#: possibly degenerate (start == end) or inverted (start > end).
def raw_interval():
    return st.tuples(coord(), coord())


def interval_list(max_size=8):
    return st.lists(raw_interval(), max_size=max_size)


def interval_sets(min_size=0, max_size=4):
    return st.lists(interval_list(), min_size=min_size, max_size=max_size)


def assert_canonical(intervals):
    """Merged output: sorted, disjoint, strictly positive-length."""
    for start, end in intervals:
        assert end > start
    for (_, e1), (s2, _) in zip(intervals, intervals[1:]):
        assert s2 > e1


# -- merge: canonical form is a fixed point ----------------------------------


@settings(max_examples=200)
@given(interval_list())
def test_merge_canonical_and_idempotent(intervals):
    merged = merge_intervals(intervals)
    assert_canonical(merged)
    assert merge_intervals(merged) == merged
    # Merging preserves measure of the union.
    assert math.isclose(
        total_length(intervals), total_length(merged), abs_tol=EPS
    )


@settings(max_examples=200)
@given(interval_list())
def test_empty_and_degenerate_intervals_are_nothing(intervals):
    degenerate = [(s, s) for s, _ in intervals] + [
        (e, s) for s, e in intervals if e > s  # inverted
    ]
    assert merge_intervals(degenerate) == []
    assert total_length(degenerate) == 0.0
    # Adding degenerate noise to a real set changes nothing.
    assert merge_intervals(intervals + degenerate) == merge_intervals(intervals)


# -- intersection laws --------------------------------------------------------


@settings(max_examples=200)
@given(interval_sets(min_size=2, max_size=4))
def test_intersect_many_commutative(sets):
    forward = intersect_many(sets)
    backward = intersect_many(list(reversed(sets)))
    assert len(forward) == len(backward)
    for (s1, e1), (s2, e2) in zip(forward, backward):
        assert math.isclose(s1, s2, abs_tol=EPS)
        assert math.isclose(e1, e2, abs_tol=EPS)


@settings(max_examples=200)
@given(interval_list(), interval_list())
def test_intersect_two_matches_intersect_many(a, b):
    assert intersect_two(a, b) == intersect_many([a, b])


@settings(max_examples=200)
@given(interval_sets(max_size=4))
def test_intersect_length_bounded_by_min_operand(sets):
    result = intersect_many(sets)
    assert_canonical(result)
    if not sets:
        assert result == []
        return
    bound = min(total_length(s) for s in sets)
    assert total_length(result) <= bound + EPS


@settings(max_examples=200)
@given(interval_list())
def test_intersect_with_self_is_identity(intervals):
    merged = merge_intervals(intervals)
    assert intersect_many([intervals, intervals]) == merged
    # The empty family intersects to nothing (documented convention).
    assert intersect_many([]) == []
    # Any family containing the empty set intersects to nothing.
    assert intersect_many([intervals, []]) == []


# -- clipping laws ------------------------------------------------------------


@settings(max_examples=200)
@given(interval_list(), coord(), coord())
def test_clip_is_intersection_with_window(intervals, low, high):
    clipped = clip_intervals(intervals, low, high)
    assert_canonical(clipped)
    assert clipped == intersect_many([intervals, [(low, high)]])
    for start, end in clipped:
        assert start >= low - EPS
        assert end <= high + EPS


@settings(max_examples=200)
@given(interval_list(), coord(), coord(), coord())
def test_clip_monotone_in_window(intervals, a, b, c):
    """A wider window never yields less clipped measure."""
    low, mid_lo, mid_hi = sorted([a, b, c])[0], *sorted([a, b, c])[1:]
    inner = total_length(clip_intervals(intervals, mid_lo, mid_hi))
    outer = total_length(clip_intervals(intervals, low, mid_hi))
    assert inner <= outer + EPS
    # And clipping never grows measure beyond the unclipped set.
    assert outer <= total_length(intervals) + EPS


@settings(max_examples=200)
@given(interval_list(), coord(), coord())
def test_clip_empty_window_is_empty(intervals, low, width):
    assert clip_intervals(intervals, low, low) == []
    assert clip_intervals(intervals, low + abs(width), low) == []

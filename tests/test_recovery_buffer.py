"""Per-member playback state across episodes."""

import pytest

from repro.errors import RecoveryError
from repro.recovery.buffer import PlaybackState


def test_full_buffer_in_steady_state():
    state = PlaybackState(buffer_s=5.0, join_time_s=0.0)
    assert state.buffer_ahead_at(100.0) == 5.0


def test_startup_buffering_ramp():
    state = PlaybackState(buffer_s=5.0, join_time_s=10.0)
    assert state.buffer_ahead_at(12.0) == pytest.approx(2.0)
    assert state.buffer_ahead_at(30.0) == 5.0


def test_back_to_back_failures_find_empty_buffer():
    state = PlaybackState(buffer_s=5.0, join_time_s=0.0)
    state.record_episode(t=100.0, starving_s=3.0, repair_end_s=20.0)
    assert state.buffer_ahead_at(110.0) == 0.0  # repair still busy
    assert state.buffer_ahead_at(130.0) == 5.0  # recovered


def test_starving_accumulates():
    state = PlaybackState(buffer_s=5.0, join_time_s=0.0)
    state.record_episode(100.0, 3.0, 20.0)
    state.record_episode(200.0, 2.0, 20.0)
    assert state.starving_s == 5.0
    assert state.episodes == 2


def test_ratio_capped_and_view_time():
    state = PlaybackState(buffer_s=5.0, join_time_s=0.0)
    state.record_episode(10.0, 1000.0, 20.0)
    assert state.view_time_at(105.0) == pytest.approx(100.0)
    assert state.starving_ratio_at(105.0) == 1.0


def test_ratio_zero_before_playback_starts():
    state = PlaybackState(buffer_s=5.0, join_time_s=0.0)
    assert state.starving_ratio_at(3.0) == 0.0


def test_validation():
    with pytest.raises(RecoveryError):
        PlaybackState(buffer_s=0.0, join_time_s=0.0)
    state = PlaybackState(buffer_s=5.0, join_time_s=0.0)
    with pytest.raises(RecoveryError):
        state.record_episode(1.0, -1.0, 2.0)

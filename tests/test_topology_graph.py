"""Graph structure and shortest paths."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.topology.graph import Graph


def build_line(n=5, weight=1.0):
    g = Graph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1, weight)
    return g


class TestStructure:
    def test_add_node_grows(self):
        g = Graph(2)
        assert g.add_node() == 2
        assert g.num_nodes == 3

    def test_add_edge_and_neighbors(self):
        g = Graph(3)
        g.add_edge(0, 1, 2.5)
        assert g.num_edges == 1
        assert list(g.neighbors(0)) == [(1, 2.5)]
        assert list(g.neighbors(1)) == [(0, 2.5)]
        assert g.degree(0) == 1 and g.degree(2) == 0

    def test_has_edge(self):
        g = Graph(3)
        g.add_edge(0, 2, 1.0)
        assert g.has_edge(0, 2) and g.has_edge(2, 0)
        assert not g.has_edge(0, 1)

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Graph(2).add_edge(1, 1, 1.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(TopologyError):
            Graph(2).add_edge(0, 1, -1.0)

    def test_unknown_node_rejected(self):
        g = Graph(2)
        with pytest.raises(TopologyError):
            g.add_edge(0, 5, 1.0)
        with pytest.raises(TopologyError):
            g.shortest_paths_from(9)

    def test_negative_size_rejected(self):
        with pytest.raises(TopologyError):
            Graph(-1)


class TestShortestPaths:
    def test_line_distances(self):
        g = build_line(5, 2.0)
        assert g.shortest_paths_from(0) == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_prefers_lighter_path(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        g.add_edge(0, 2, 5.0)
        assert g.shortest_path(0, 2) == 2.0

    def test_parallel_edges_use_lighter(self):
        g = Graph(2)
        g.add_edge(0, 1, 5.0)
        g.add_edge(0, 1, 2.0)
        assert g.shortest_path(0, 1) == 2.0

    def test_disconnected_is_inf(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        assert math.isinf(g.shortest_path(0, 2))

    def test_connectivity(self):
        g = build_line(4)
        assert g.is_connected()
        g2 = Graph(4)
        g2.add_edge(0, 1, 1.0)
        assert not g2.is_connected()
        assert Graph(0).is_connected()

    def test_subgraph_distances(self):
        g = build_line(4)
        dists = g.subgraph_distances([0, 3])
        assert dists[0][3] == 3.0
        assert dists[3][0] == 3.0


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_dijkstra_symmetric_and_triangle(data):
    """On random connected graphs, distances are symmetric and satisfy the
    triangle inequality."""
    n = data.draw(st.integers(min_value=3, max_value=12))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    g = Graph(n)
    for i in range(1, n):
        g.add_edge(i, int(rng.integers(0, i)), float(rng.uniform(0.5, 10)))
    for _ in range(n):
        a, b = rng.integers(0, n, size=2)
        if a != b and not g.has_edge(int(a), int(b)):
            g.add_edge(int(a), int(b), float(rng.uniform(0.5, 10)))
    dist = [g.shortest_paths_from(i) for i in range(n)]
    for i in range(n):
        assert dist[i][i] == 0.0
        for j in range(n):
            assert dist[i][j] == pytest.approx(dist[j][i])
            for k in range(n):
                assert dist[i][j] <= dist[i][k] + dist[k][j] + 1e-9

"""OverlayNode state and derived quantities."""

import math

import pytest

from repro.errors import TreeError
from repro.overlay.node import OverlayNode
from tests.conftest import make_node


def test_basic_properties():
    node = make_node(1, bandwidth=3.5, cap=3, join_time=10.0)
    assert node.spare_degree == 3
    assert not node.is_free_rider
    assert node.age(25.0) == 15.0
    assert node.btp(20.0) == pytest.approx(3.5 * 10.0)


def test_free_rider():
    node = make_node(1, bandwidth=0.7, cap=0)
    assert node.is_free_rider
    assert node.spare_degree == 0


def test_root_has_infinite_btp():
    root = make_node(0, bandwidth=100.0, cap=100, is_root=True)
    assert math.isinf(root.btp(1000.0))
    assert math.isinf(root.claimed_btp(1000.0))


def test_claims_default_to_truth():
    node = make_node(1, bandwidth=2.0, join_time=5.0)
    assert node.claimed_bandwidth == 2.0
    assert node.claimed_join_time == 5.0
    assert node.claimed_btp(10.0) == node.btp(10.0)


def test_cheater_claims_diverge():
    node = make_node(1, bandwidth=1.0, join_time=100.0)
    node.claimed_bandwidth = 50.0
    node.claimed_join_time = 0.0
    assert node.claimed_btp(200.0) == pytest.approx(50.0 * 200.0)
    assert node.btp(200.0) == pytest.approx(1.0 * 100.0)


def test_locking():
    node = make_node(1)
    assert not node.is_locked(0.0)
    node.lock(10.0)
    assert node.is_locked(5.0)
    assert not node.is_locked(10.0)
    node.lock(8.0)  # never shortens
    assert node.is_locked(9.0)


def test_negative_cap_rejected():
    with pytest.raises(TreeError):
        OverlayNode(1, 0, 1.0, -1, 0.0)


def test_ancestors_and_descendants():
    a = make_node(1, cap=3)
    b = make_node(2, cap=3)
    c = make_node(3, cap=3)
    d = make_node(4, cap=3)
    b.parent = a
    a.children = [b]
    c.parent = b
    d.parent = b
    b.children = [c, d]
    assert a.ancestors() == []
    assert c.ancestors() == [b, a]
    assert {n.member_id for n in a.descendants()} == {2, 3, 4}
    assert a.subtree_size() == 4
    assert d.subtree_size() == 1


def test_depth_below():
    a, b, c = make_node(1, cap=2), make_node(2, cap=2), make_node(3, cap=2)
    b.parent = a
    c.parent = b
    assert c.depth_below(a) == 2
    assert c.depth_below(c) == 0
    other = make_node(9)
    with pytest.raises(TreeError):
        c.depth_below(other)


def test_repr_mentions_id():
    assert "id=7" in repr(make_node(7))

"""Campaign specs, fan-out determinism, and the resilience report schema."""

import json
from pathlib import Path

import pytest

from repro.errors import FaultError
from repro.faults import (
    DEFAULT_CAMPAIGN_SPEC,
    CampaignSpec,
    load_campaign,
    resolve_campaign,
    run_campaign,
)
from repro.faults.campaign import REPORT_SCHEMA_VERSION

SMALL_SPEC = {
    "name": "unit-small",
    "population": 400,
    "warmup_lifetimes": 0.25,
    "measure_lifetimes": 0.5,
    "protocols": ["min-depth"],
    "seeds": [1],
    "group_size": 2,
    "root_bandwidth": 6.0,
    "scenarios": [
        {"name": "baseline", "faults": []},
        {
            "name": "outage",
            "faults": [
                {"kind": "stub-domain-outage", "domains": 2, "at_frac": 0.6}
            ],
        },
    ],
}
SCALE = 0.1  # population 40 under a 6-slot root: deep trees, fast runs


@pytest.fixture(scope="module")
def small_reports():
    spec = CampaignSpec.from_spec(SMALL_SPEC)
    serial = run_campaign(spec, scale=SCALE, jobs=1)
    fanned = run_campaign(spec, scale=SCALE, jobs=2)
    return serial, fanned


def test_default_spec_round_trip():
    spec = resolve_campaign(None)
    assert spec.name == DEFAULT_CAMPAIGN_SPEC["name"]
    assert resolve_campaign(spec) is spec
    assert resolve_campaign(spec.canonical_json()) == spec
    assert CampaignSpec.from_spec(spec.to_spec()) == spec


def test_campaign_validation():
    with pytest.raises(FaultError):
        CampaignSpec.from_spec({**SMALL_SPEC, "bogus_key": 1})
    with pytest.raises(FaultError):
        CampaignSpec.from_spec({**SMALL_SPEC, "scenarios": []})
    with pytest.raises(FaultError):
        CampaignSpec.from_spec(
            {
                **SMALL_SPEC,
                "scenarios": [
                    {"name": "dup", "faults": []},
                    {"name": "dup", "faults": []},
                ],
            }
        )
    with pytest.raises(FaultError):
        CampaignSpec.from_spec({**SMALL_SPEC, "seeds": [-3]})
    with pytest.raises(FaultError):
        CampaignSpec.from_spec({**SMALL_SPEC, "root_bandwidth": 0.5})
    with pytest.raises(FaultError):
        resolve_campaign(3.5)


def test_scheme_list_includes_domain_aware_variant():
    spec = CampaignSpec.from_spec({**SMALL_SPEC, "domain_aware": True})
    names = [s.name for s in spec.scheme_list()]
    assert len(names) == 3
    assert sum(name.endswith("-da") for name in names) == 1
    plain = CampaignSpec.from_spec({**SMALL_SPEC, "domain_aware": False})
    assert len(plain.scheme_list()) == 2


def test_report_byte_identical_at_any_jobs(small_reports):
    serial, fanned = small_reports
    dump = lambda r: json.dumps(r.data, sort_keys=True, default=str)  # noqa: E731
    assert dump(serial) == dump(fanned)
    assert serial.table == fanned.table


def test_report_schema(small_reports):
    report, _ = small_reports
    data = report.data
    assert data["schema_version"] == REPORT_SCHEMA_VERSION
    assert data["campaign"] == "unit-small"
    assert data["scale"] == SCALE
    assert data["seeds"] == [1]
    assert data["protocols"] == ["min-depth"]
    assert data["scenarios"] == ["baseline", "outage"]
    assert len(data["runs"]) == 2  # 2 scenarios x 1 protocol x 1 seed
    for scenario in data["scenarios"]:
        entry = data["summary"][scenario]["min-depth"]
        for key in (
            "fault_disruption_events",
            "mttr_s",
            "mttr_churn_s",
            "delivered_data_ratio",
            "repair_success_rate",
            "mean_group_domain_correlation",
        ):
            assert key in entry
        assert set(entry["repair_success_rate"]) == set(data["schemes"])
    for run in data["runs"]:
        assert set(run) >= {
            "scenario",
            "protocol",
            "seed",
            "fault_log",
            "fault_disruption_events",
            "mttr_s",
            "delivered_data_ratio",
            "resilience",
            "schemes",
        }
        assert "disruption_events" in run["resilience"]
    baseline, outage = data["runs"]
    assert baseline["fault_disruption_events"] == 0
    assert outage["fault_disruption_events"] >= 1
    assert outage["fault_log"][0]["kind"] == "stub-domain-outage"


@pytest.mark.slow
def test_checked_report_byte_identical_across_jobs_and_seeds():
    """--jobs {1,2,4} x 3 seeds with invariant checking on: reports must
    be byte-identical and every run must come back checked and clean."""
    spec = CampaignSpec.from_spec({**SMALL_SPEC, "seeds": [1, 2, 3]})
    dumps = []
    for jobs in (1, 2, 4):
        report = run_campaign(spec, scale=SCALE, jobs=jobs, check_invariants=True)
        dumps.append(json.dumps(report.data, sort_keys=True, default=str))
        assert report.data["invariant_violations"] == 0
        runs = report.data["runs"]
        assert len(runs) == 6  # 2 scenarios x 1 protocol x 3 seeds
        for run in runs:
            assert run["invariants"]["checked"]
            assert run["invariants"]["sweeps"] > 0
            assert run["invariants"]["violations"] == 0
    assert dumps[0] == dumps[1] == dumps[2]


def test_example_campaign_specs_load():
    campaigns = Path(__file__).resolve().parents[1] / "examples" / "campaigns"
    mirror = load_campaign(str(campaigns / "stub_outage.json"))
    assert mirror == CampaignSpec.from_spec(DEFAULT_CAMPAIGN_SPEC)
    smoke = load_campaign(str(campaigns / "smoke.json"))
    assert smoke.root_bandwidth is not None  # deep trees even at tiny scale
    assert smoke.seeds  # pinned seeds: CI runs are reproducible
    assert any(
        fault.kind == "stub-domain-outage"
        for scenario in smoke.scenarios
        for fault in scenario.faults
    )


def test_experiments_registered():
    from repro.experiments import REGISTRY

    assert "faults_scenario" in REGISTRY
    assert "faults_campaign" in REGISTRY

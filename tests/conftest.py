"""Shared fixtures: tiny topologies/configs reused across the suite.

Building a transit-stub underlay plus its delay oracle dominates test
setup cost, so session-scoped fixtures build one small instance that any
test may share read-only.
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

try:
    from hypothesis import settings
except ImportError:  # hypothesis is an optional test dependency
    pass
else:
    # Select with HYPOTHESIS_PROFILE=ci|dev|thorough (default: dev).  The
    # "ci" profile is derandomized so a fuzz-smoke job cannot flake; run
    # "thorough" locally before touching protocol or kernel code.
    settings.register_profile("dev", max_examples=20, deadline=None)
    settings.register_profile(
        "ci", max_examples=25, derandomize=True, deadline=None
    )
    settings.register_profile("thorough", max_examples=300, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

from repro.config import (
    ProtocolConfig,
    SimulationConfig,
    TopologyConfig,
    WorkloadConfig,
)
from repro.topology.routing import DelayOracle
from repro.topology.transit_stub import generate_transit_stub


TINY_TOPOLOGY = TopologyConfig(
    transit_domains=2,
    transit_nodes_per_domain=3,
    stub_domains_per_transit=2,
    stub_nodes_per_domain=4,
    seed=11,
)


@pytest.fixture(scope="session")
def tiny_topology():
    """A 54-node transit-stub underlay (6 transit + 48 stub)."""
    return generate_transit_stub(TINY_TOPOLOGY)


@pytest.fixture(scope="session")
def tiny_oracle(tiny_topology):
    return DelayOracle(tiny_topology)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


def small_sim_config(
    population: int = 60,
    seed: int = 5,
    warmup_lifetimes: float = 0.5,
    measure_lifetimes: float = 0.5,
    **protocol_overrides,
) -> SimulationConfig:
    """A simulation config small enough for sub-second end-to-end runs."""
    protocol = ProtocolConfig(**protocol_overrides) if protocol_overrides else ProtocolConfig()
    cfg = SimulationConfig(
        topology=TINY_TOPOLOGY,
        workload=WorkloadConfig(target_population=population),
        protocol=protocol,
        warmup_lifetimes=warmup_lifetimes,
        measure_lifetimes=measure_lifetimes,
    )
    return cfg.with_seed(seed)


@pytest.fixture()
def sim_config():
    return small_sim_config()


def make_node(member_id, bandwidth=2.0, cap=None, join_time=0.0, underlay=0, is_root=False):
    """Concise OverlayNode factory for structural tests."""
    from repro.overlay.node import OverlayNode

    if cap is None:
        cap = int(bandwidth)
    return OverlayNode(
        member_id=member_id,
        underlay_node=underlay,
        bandwidth=bandwidth,
        out_degree_cap=cap,
        join_time=join_time,
        is_root=is_root,
    )


@pytest.fixture()
def node_factory():
    return make_node

"""Bounded Pareto and lognormal lifetime distributions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.workload.distributions import BoundedPareto, LogNormalLifetime

PAPER_BP = dict(shape=1.2, lower=0.5, upper=100.0)


class TestBoundedPareto:
    def test_support_bounds(self, rng):
        dist = BoundedPareto(**PAPER_BP)
        draws = dist.sample(rng, size=10000)
        assert draws.min() >= 0.5
        assert draws.max() <= 100.0

    def test_cdf_endpoints(self):
        dist = BoundedPareto(**PAPER_BP)
        assert dist.cdf(0.5) == pytest.approx(0.0)
        assert dist.cdf(100.0) == pytest.approx(1.0)
        # values outside the support clamp
        assert dist.cdf(0.1) == pytest.approx(0.0)
        assert dist.cdf(500.0) == pytest.approx(1.0)

    def test_paper_free_rider_fraction(self):
        """~55.5% of members draw below the unit stream rate (Section 5)."""
        dist = BoundedPareto(**PAPER_BP)
        assert dist.cdf(1.0) == pytest.approx(0.555, abs=0.015)

    def test_ppf_inverts_cdf(self):
        dist = BoundedPareto(**PAPER_BP)
        for u in [0.0, 0.1, 0.5, 0.9, 0.999, 1.0]:
            assert dist.cdf(dist.ppf(u)) == pytest.approx(u, abs=1e-9)

    @settings(max_examples=100, deadline=None)
    @given(u=st.floats(min_value=0.0, max_value=1.0))
    def test_ppf_in_support(self, u):
        dist = BoundedPareto(**PAPER_BP)
        x = dist.ppf(u)
        assert 0.5 <= x <= 100.0 + 1e-9

    def test_ppf_rejects_out_of_range(self):
        with pytest.raises(ConfigError):
            BoundedPareto(**PAPER_BP).ppf(1.5)

    def test_sample_mean_matches_analytic(self, rng):
        dist = BoundedPareto(**PAPER_BP)
        draws = dist.sample(rng, size=200_000)
        assert draws.mean() == pytest.approx(dist.mean(), rel=0.05)

    def test_mean_alpha_one_special_case(self, rng):
        dist = BoundedPareto(1.0, 1.0, 10.0)
        draws = dist.sample(rng, size=200_000)
        assert draws.mean() == pytest.approx(dist.mean(), rel=0.05)

    def test_scalar_sample(self, rng):
        value = BoundedPareto(**PAPER_BP).sample(rng)
        assert isinstance(value, float)

    @pytest.mark.parametrize("kwargs", [
        dict(shape=0.0, lower=1.0, upper=2.0),
        dict(shape=1.0, lower=0.0, upper=2.0),
        dict(shape=1.0, lower=3.0, upper=2.0),
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigError):
            BoundedPareto(**kwargs)


class TestLogNormalLifetime:
    def test_paper_mean(self):
        dist = LogNormalLifetime(5.5, 2.0)
        assert dist.mean() == pytest.approx(math.exp(5.5 + 2.0), rel=1e-12)
        assert dist.median() == pytest.approx(math.exp(5.5))

    def test_cap_enforced(self, rng):
        dist = LogNormalLifetime(5.5, 2.0, cap=1000.0)
        draws = dist.sample(rng, size=5000)
        assert draws.max() <= 1000.0

    def test_sample_median_near_analytic(self, rng):
        dist = LogNormalLifetime(5.5, 2.0)
        draws = dist.sample(rng, size=100_000)
        assert np.median(draws) == pytest.approx(dist.median(), rel=0.05)

    def test_length_biased_is_lognormal_shifted(self, rng):
        """Length-biased lognormal(mu, s) = lognormal(mu + s^2, s): check
        the median, which pins the location parameter."""
        dist = LogNormalLifetime(5.5, 2.0)
        draws = dist.sample_length_biased(rng, size=100_000)
        assert np.median(draws) == pytest.approx(math.exp(5.5 + 4.0), rel=0.06)

    def test_length_biased_respects_cap(self, rng):
        dist = LogNormalLifetime(5.5, 2.0, cap=5000.0)
        draws = dist.sample_length_biased(rng, size=2000)
        assert draws.max() <= 5000.0

    def test_scalar_samples(self, rng):
        dist = LogNormalLifetime(5.5, 2.0, cap=100.0)
        assert isinstance(dist.sample(rng), float)
        assert dist.sample_length_biased(rng) <= 100.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            LogNormalLifetime(5.5, 0.0)
        with pytest.raises(ConfigError):
            LogNormalLifetime(5.5, 2.0, cap=0.0)

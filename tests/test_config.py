"""Configuration validation and derived quantities."""

import math

import pytest

from repro.config import (
    PAPER_MEAN_LIFETIME_S,
    ProtocolConfig,
    RecoveryConfig,
    SimulationConfig,
    TopologyConfig,
    WorkloadConfig,
    paper_config,
)
from repro.errors import ConfigError


class TestTopologyConfig:
    def test_paper_defaults_node_counts(self):
        cfg = TopologyConfig()
        assert cfg.total_transit_nodes == 240
        assert cfg.total_stub_nodes == 15360
        assert cfg.total_nodes == 15600

    def test_scaled_preserves_structure(self):
        cfg = TopologyConfig().scaled(0.25)
        assert cfg.transit_domains == 12
        assert cfg.stub_domains_per_transit == 4
        assert cfg.total_nodes < TopologyConfig().total_nodes

    def test_scale_one_is_identity(self):
        cfg = TopologyConfig()
        assert cfg.scaled(1.0) is cfg

    def test_scale_never_degenerates(self):
        cfg = TopologyConfig().scaled(1e-6)
        assert cfg.transit_nodes_per_domain >= 2
        assert cfg.stub_nodes_per_domain >= 2

    @pytest.mark.parametrize("field,value", [
        ("transit_domains", 0),
        ("stub_nodes_per_domain", 0),
        ("transit_edge_prob", 1.5),
        ("stub_edge_prob", -0.1),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ConfigError):
            TopologyConfig(**{field: value})

    def test_rejects_inverted_delay_range(self):
        with pytest.raises(ConfigError):
            TopologyConfig(stub_stub_delay_ms=(4.0, 2.0))

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ConfigError):
            TopologyConfig().scaled(0.0)


class TestWorkloadConfig:
    def test_mean_lifetime_matches_paper(self):
        cfg = WorkloadConfig()
        assert cfg.mean_lifetime_s == pytest.approx(PAPER_MEAN_LIFETIME_S)
        # the paper quotes 1809 seconds
        assert cfg.mean_lifetime_s == pytest.approx(1809, abs=1.5)

    def test_littles_law_arrival_rate(self):
        cfg = WorkloadConfig(target_population=8000)
        assert cfg.arrival_rate == pytest.approx(8000 / cfg.mean_lifetime_s)

    @pytest.mark.parametrize("field,value", [
        ("target_population", 0),
        ("stream_rate", 0.0),
        ("root_bandwidth", 0.5),
        ("pareto_shape", -1.0),
        ("pareto_lower", 0.0),
        ("lifetime_shape", 0.0),
        ("lifetime_cap_s", 0.0),
        ("max_initial_age_s", -1.0),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ConfigError):
            WorkloadConfig(**{field: value})


class TestProtocolConfig:
    def test_recovery_window_is_detect_plus_rejoin(self):
        cfg = ProtocolConfig(failure_detect_s=5.0, rejoin_s=10.0)
        assert cfg.recovery_window_s == 15.0

    def test_referee_counts_must_exceed_one(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(age_referees=1)
        with pytest.raises(ConfigError):
            ProtocolConfig(bandwidth_referees=0)

    @pytest.mark.parametrize("field,value", [
        ("join_candidates", 0),
        ("partial_view_size", 0),
        ("switch_interval_s", 0.0),
        ("lock_retry_wait_s", -1.0),
        ("well_known_top", -1),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ConfigError):
            ProtocolConfig(**{field: value})


class TestRecoveryConfig:
    def test_buffer_packets(self):
        cfg = RecoveryConfig(packet_rate_pps=10.0, buffer_s=5.0)
        assert cfg.buffer_packets == 50

    @pytest.mark.parametrize("field,value", [
        ("packet_rate_pps", 0.0),
        ("buffer_s", 0.0),
        ("group_size", 0),
        ("residual_max_pps", -1.0),
        ("eln_gap_threshold", 0),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ConfigError):
            RecoveryConfig(**{field: value})


class TestSimulationConfig:
    def test_horizon_composition(self):
        cfg = SimulationConfig(warmup_lifetimes=2.0, measure_lifetimes=3.0)
        assert cfg.horizon_s == pytest.approx(cfg.warmup_s + cfg.measure_s)
        assert cfg.warmup_s == pytest.approx(2.0 * cfg.workload.mean_lifetime_s)

    def test_with_population(self):
        cfg = SimulationConfig().with_population(123)
        assert cfg.workload.target_population == 123

    def test_with_switch_interval(self):
        cfg = SimulationConfig().with_switch_interval(480.0)
        assert cfg.protocol.switch_interval_s == 480.0

    def test_with_seed_changes_all_subseeds(self):
        a = SimulationConfig().with_seed(1)
        b = SimulationConfig().with_seed(2)
        assert a.topology.seed != b.topology.seed
        assert a.workload.seed != b.workload.seed
        assert a.recovery.seed != b.recovery.seed

    def test_rejects_empty_measure_window(self):
        with pytest.raises(ConfigError):
            SimulationConfig(measure_lifetimes=0.0)


class TestPaperConfig:
    def test_full_scale(self):
        cfg = paper_config(population=8000, scale=1.0)
        assert cfg.workload.target_population == 8000
        assert cfg.topology.total_nodes == 15600

    def test_scaled_population(self):
        cfg = paper_config(population=8000, scale=0.1)
        assert cfg.workload.target_population == 800
        assert cfg.topology.total_nodes < 15600

    def test_minimum_population_floor(self):
        cfg = paper_config(population=10, scale=0.01)
        assert cfg.workload.target_population >= 8

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigError):
            paper_config(scale=-1.0)

    def test_deterministic(self):
        assert paper_config(seed=9) == paper_config(seed=9)
        assert paper_config(seed=9) != paper_config(seed=10)

"""Recovery simulation: scheme grids over one churn pass."""

import pytest

from repro.protocols import PROTOCOLS
from repro.recovery.schemes import cer_scheme, single_source_scheme
from repro.simulation.streaming import RecoverySimulation
from tests.conftest import small_sim_config


@pytest.fixture(scope="module")
def recovery_result():
    """One shared run evaluating a representative scheme grid."""
    schemes = [
        cer_scheme(1),
        cer_scheme(2),
        cer_scheme(3),
        cer_scheme(3, buffer_s=20.0),
        single_source_scheme(1),
        single_source_scheme(3),
        cer_scheme(2, eln=False),
    ]
    sim = RecoverySimulation(
        small_sim_config(population=120, seed=21, measure_lifetimes=1.0),
        PROTOCOLS["min-depth"],
        schemes,
    )
    return sim.run()


def test_all_schemes_evaluated(recovery_result):
    assert len(recovery_result.schemes) == 7
    for result in recovery_result.schemes.values():
        assert result.ratios, f"no ratios for {result.scheme.name}"


def test_ratios_are_percent_fractions(recovery_result):
    for result in recovery_result.schemes.values():
        assert all(0.0 <= r <= 1.0 for r in result.ratios)
        assert 0.0 <= result.avg_starving_ratio_pct <= 100.0


def test_bigger_cer_group_starves_less(recovery_result):
    r1 = recovery_result.ratio_pct("cer-k1-b5")
    r3 = recovery_result.ratio_pct("cer-k3-b5")
    assert r3 <= r1


def test_bigger_buffer_starves_less(recovery_result):
    small = recovery_result.ratio_pct("cer-k3-b5")
    big = recovery_result.ratio_pct("cer-k3-b20")
    assert big <= small


def test_cer_beats_single_source(recovery_result):
    cer = recovery_result.ratio_pct("cer-k3-b5")
    ss = recovery_result.ratio_pct("ss-k3-b5")
    assert cer <= ss


def test_episode_counters_consistent(recovery_result):
    for result in recovery_result.schemes.values():
        if result.episodes:
            assert 0.0 <= result.mean_coverage <= 1.0


def test_churn_result_attached(recovery_result):
    assert recovery_result.churn.sessions_total > 0


def test_duplicate_scheme_names_rejected():
    with pytest.raises(ValueError):
        RecoverySimulation(
            small_sim_config(population=20),
            PROTOCOLS["min-depth"],
            [cer_scheme(1), cer_scheme(1)],
        )


def test_deterministic_same_seed():
    def once():
        sim = RecoverySimulation(
            small_sim_config(population=60, seed=9, measure_lifetimes=0.5),
            PROTOCOLS["min-depth"],
            [cer_scheme(2)],
        )
        out = sim.run()
        return out.schemes["cer-k2-b5"].ratios

    assert once() == once()


def test_residuals_stable_per_member():
    sim = RecoverySimulation(
        small_sim_config(population=20, seed=9),
        PROTOCOLS["min-depth"],
        [cer_scheme(2)],
    )
    observer = sim.observer
    assert observer.residual_pps(5) == observer.residual_pps(5)
    assert 0.0 <= observer.residual_pps(5) <= 9.0
    assert observer.residual_pps(5) != observer.residual_pps(6)

"""ASCII tree rendering."""

from repro.overlay.render import render_tree
from repro.overlay.tree import MulticastTree
from tests.conftest import make_node


def build_tree(width=3, grandchildren=2):
    root = make_node(0, bandwidth=10.0, cap=10, is_root=True)
    tree = MulticastTree(root)
    next_id = 1
    for _ in range(width):
        mid = make_node(next_id, bandwidth=4.0, cap=4)
        next_id += 1
        tree.add_member(mid)
        tree.attach(mid, root)
        for _ in range(grandchildren):
            leaf = make_node(next_id, bandwidth=0.5, cap=0)
            next_id += 1
            tree.add_member(leaf)
            tree.attach(leaf, mid)
    return tree


def test_renders_every_member():
    tree = build_tree()
    art = render_tree(tree, now=60.0)
    assert "root" in art
    for member_id in range(1, 10):
        assert f"#{member_id} " in art


def test_depth_truncation_summarises():
    tree = build_tree()
    art = render_tree(tree, now=0.0, max_depth=1)
    assert "member(s) below" in art
    assert "#2 " not in art  # grandchildren hidden


def test_width_truncation_summarises():
    tree = build_tree(width=3)
    art = render_tree(tree, now=0.0, max_children=2)
    assert "more member(s)" in art


def test_custom_label():
    tree = build_tree(width=1, grandchildren=0)
    art = render_tree(tree, label=lambda n, now: f"<{n.member_id}>")
    assert "<0>" in art and "<1>" in art


def test_connectors_are_well_formed():
    tree = build_tree()
    art = render_tree(tree, now=0.0)
    lines = art.splitlines()
    assert lines[0].startswith("root")
    assert any(line.lstrip().startswith("|--") for line in lines)
    assert any(line.lstrip().startswith("`--") for line in lines)

"""Baseline format: flattening, round-trips, schema versioning, regen."""

import json
import math

import pytest

from repro.errors import ValidationError
from repro.validate.baseline import (
    BASELINE_SCHEMA_VERSION,
    DEFAULT_SPECS,
    Baseline,
    MetricBaseline,
    Tolerance,
    TrendSpec,
    flatten_numeric,
    load_baseline,
    load_baseline_dir,
    save_baseline,
    summarize_samples,
)


class TestFlattenNumeric:
    def test_store_diff_path_convention(self):
        data = {
            "series": {"rost": [1.0, 2.0], "longest-first": [3.0, 4.0]},
            "sizes": [2000, 5000],
            "label": "ignored",
            "flag": True,
        }
        flat = flatten_numeric(data)
        assert flat["series.rost[0]"] == 1.0
        assert flat["series.longest-first[1]"] == 4.0
        assert flat["sizes[0]"] == 2000.0
        # Strings and booleans are not metrics.
        assert "label" not in flat
        assert "flag" not in flat

    def test_nested_and_int_keys(self):
        flat = flatten_numeric({1: {"a": [5]}, "z": 0.5})
        assert flat == {"1.a[0]": 5.0, "z": 0.5}

    def test_scalar_root(self):
        assert flatten_numeric(3.5) == {"": 3.5}
        assert flatten_numeric("text") == {}


class TestSummarize:
    def test_union_of_paths_with_nan_fill(self):
        summaries = summarize_samples([{"a": 1.0, "b": 2.0}, {"a": 3.0}])
        assert summaries["a"].mean == 2.0
        assert summaries["a"].values == (1.0, 3.0)
        # 'b' missing from the second seed surfaces as NaN, not silence.
        assert math.isnan(summaries["b"].mean)

    def test_empty(self):
        assert summarize_samples([]) == {}


def _tiny_baseline() -> Baseline:
    return Baseline(
        experiment_id="fig99",
        scale=0.25,
        seeds=[1, 2],
        kwargs={"sizes": [100]},
        tolerance=Tolerance(rtol=0.1, atol=0.5, ci_scale=2.0),
        trends=[
            TrendSpec(
                name="a-beats-b", kind="series_order", lower="a", upper="b"
            )
        ],
        metrics={
            "series.a[0]": MetricBaseline.from_values([1.0, 2.0]),
            "series.b[0]": MetricBaseline.from_values([5.0, 6.0]),
        },
    )


class TestRoundTrip:
    def test_save_load_preserves_everything(self, tmp_path):
        path = str(tmp_path / "fig99.json")
        original = _tiny_baseline()
        save_baseline(original, path)
        loaded = load_baseline(path)
        assert loaded.experiment_id == "fig99"
        assert loaded.scale == 0.25
        assert loaded.seeds == [1, 2]
        assert loaded.kwargs == {"sizes": [100]}
        assert loaded.tolerance == Tolerance(rtol=0.1, atol=0.5, ci_scale=2.0)
        assert loaded.trends == original.trends
        assert loaded.metrics["series.a[0]"].values == (1.0, 2.0)
        assert loaded.metrics["series.a[0]"].mean == 1.5
        assert loaded.source_path == path

    def test_schema_version_mismatch_is_rejected(self, tmp_path):
        path = str(tmp_path / "old.json")
        payload = _tiny_baseline().to_payload()
        payload["schema_version"] = BASELINE_SCHEMA_VERSION + 1
        path_obj = tmp_path / "old.json"
        path_obj.write_text(json.dumps(payload))
        with pytest.raises(ValidationError, match="schema version"):
            load_baseline(path)

    def test_malformed_file_is_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValidationError, match="not valid JSON"):
            load_baseline(str(bad))
        missing_fields = tmp_path / "missing.json"
        missing_fields.write_text(
            json.dumps({"schema_version": BASELINE_SCHEMA_VERSION})
        )
        with pytest.raises(ValidationError, match="malformed"):
            load_baseline(str(missing_fields))

    def test_unknown_trend_kind_is_rejected(self):
        with pytest.raises(ValidationError, match="trend kind"):
            TrendSpec.from_payload(
                {"name": "x", "kind": "sorted", "lower": "a", "upper": "b"}
            )


class TestLoadDir:
    def test_only_filter_and_missing_id(self, tmp_path):
        for name in ("fig98", "fig99"):
            baseline = _tiny_baseline()
            baseline.experiment_id = name
            save_baseline(baseline, str(tmp_path / f"{name}.json"))
        loaded = load_baseline_dir(str(tmp_path), only=["fig99"])
        assert [b.experiment_id for b in loaded] == ["fig99"]
        with pytest.raises(ValidationError, match="fig97"):
            load_baseline_dir(str(tmp_path), only=["fig97"])

    def test_empty_and_missing_directories(self, tmp_path):
        with pytest.raises(ValidationError, match="does not exist"):
            load_baseline_dir(str(tmp_path / "nope"))
        with pytest.raises(ValidationError, match="no baseline files"):
            load_baseline_dir(str(tmp_path))


class TestCommittedBaselines:
    """The files under tests/golden/baselines/ stay loadable and sane."""

    def test_all_committed_baselines_load(self):
        baselines = load_baseline_dir("tests/golden/baselines")
        ids = [b.experiment_id for b in baselines]
        assert ids == [
            "fig04", "fig07", "fig08", "fig14", "multitree_resilience"
        ]
        for baseline in baselines:
            assert baseline.seeds == DEFAULT_SPECS[baseline.experiment_id]["seeds"]
            assert baseline.metrics, baseline.experiment_id
            assert baseline.trends, baseline.experiment_id
            for path, summary in baseline.metrics.items():
                assert len(summary.values) == len(baseline.seeds), path
                assert summary.bootstrap_lo <= summary.bootstrap_hi

"""Trace serialization roundtrips."""

import json

import numpy as np
import pytest

from repro.config import WorkloadConfig
from repro.errors import ConfigError
from repro.protocols import PROTOCOLS
from repro.simulation.churn import ChurnSimulation
from repro.workload.generator import generate_workload
from repro.workload.trace_io import (
    load_workload,
    save_workload,
    workload_from_dict,
    workload_to_dict,
)
from tests.conftest import small_sim_config


@pytest.fixture()
def workload():
    return generate_workload(
        WorkloadConfig(target_population=40),
        horizon_s=2000.0,
        attach_nodes=list(range(10, 30)),
        rng=np.random.default_rng(3),
    )


def test_roundtrip_preserves_everything(workload, tmp_path):
    path = tmp_path / "trace.json"
    save_workload(workload, path)
    loaded = load_workload(path)
    assert loaded.config == workload.config
    assert loaded.horizon_s == workload.horizon_s
    assert loaded.root == workload.root
    assert loaded.sessions == workload.sessions


def test_dict_roundtrip(workload):
    assert workload_from_dict(workload_to_dict(workload)).sessions == workload.sessions


def test_rejects_foreign_format(workload):
    data = workload_to_dict(workload)
    data["format"] = "something-else"
    with pytest.raises(ConfigError):
        workload_from_dict(data)


def test_rejects_future_version(workload):
    data = workload_to_dict(workload)
    data["version"] = 999
    with pytest.raises(ConfigError):
        workload_from_dict(data)


def test_rejects_malformed_sessions(workload):
    data = workload_to_dict(workload)
    del data["sessions"][0]["bandwidth"]
    with pytest.raises(ConfigError):
        workload_from_dict(data)


def test_loaded_trace_replays_identically(tmp_path):
    """A churn run on a reloaded trace matches the original run exactly."""
    cfg = small_sim_config(population=50, seed=8)
    original_sim = ChurnSimulation(cfg, PROTOCOLS["min-depth"])
    trace_path = tmp_path / "trace.json"
    save_workload(original_sim.workload, trace_path)
    original = original_sim.run()

    replay_sim = ChurnSimulation(
        cfg,
        PROTOCOLS["min-depth"],
        topology=original_sim.topology,
        oracle=original_sim.oracle,
        workload=load_workload(trace_path),
    )
    replay = replay_sim.run()
    assert replay.metrics.disruption_events == original.metrics.disruption_events
    assert replay.metrics.node_seconds == pytest.approx(
        original.metrics.node_seconds
    )


def test_file_is_plain_json(workload, tmp_path):
    path = tmp_path / "trace.json"
    save_workload(workload, path)
    data = json.loads(path.read_text())
    assert data["format"] == "repro-churn-trace"

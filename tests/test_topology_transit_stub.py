"""Transit-stub generator: structure, delay ranges, determinism."""

import numpy as np
import pytest

from repro.config import TopologyConfig
from repro.errors import TopologyError
from repro.topology.transit_stub import generate_transit_stub

SMALL = TopologyConfig(
    transit_domains=3,
    transit_nodes_per_domain=4,
    stub_domains_per_transit=2,
    stub_nodes_per_domain=5,
    seed=3,
)


@pytest.fixture(scope="module")
def topo():
    return generate_transit_stub(SMALL)


def test_node_counts(topo):
    assert topo.num_nodes == SMALL.total_nodes
    assert len(topo.transit_nodes) == 12
    assert len(topo.stub_nodes) == 120
    assert len(topo.stub_domains) == 24


def test_graph_is_connected(topo):
    assert topo.graph.is_connected()


def test_transit_ids_precede_stub_ids(topo):
    assert max(topo.transit_nodes) < min(topo.stub_nodes)


def test_is_transit_and_domain_lookup(topo):
    for t in topo.transit_nodes:
        assert topo.is_transit(t)
        with pytest.raises(TopologyError):
            topo.domain_of(t)
    for domain in topo.stub_domains:
        for member in domain.nodes:
            assert not topo.is_transit(member)
            assert topo.domain_of(member) is domain


def test_every_domain_has_one_gateway_edge(topo):
    for domain in topo.stub_domains:
        assert domain.gateway in domain.nodes
        assert topo.graph.has_edge(domain.gateway, domain.transit_node)
        lo, hi = SMALL.transit_stub_delay_ms
        assert lo <= domain.access_delay_ms <= hi
        # the gateway edge is the only edge leaving the domain
        members = set(domain.nodes)
        for member in domain.nodes:
            for neighbor, _ in topo.graph.neighbors(member):
                if neighbor not in members:
                    assert member == domain.gateway
                    assert neighbor == domain.transit_node


def test_edge_delay_ranges(topo):
    num_transit = len(topo.transit_nodes)
    tt_lo, tt_hi = SMALL.transit_transit_delay_ms
    ts_lo, ts_hi = SMALL.transit_stub_delay_ms
    ss_lo, ss_hi = SMALL.stub_stub_delay_ms
    for u in range(topo.num_nodes):
        for v, w in topo.graph.neighbors(u):
            if u < num_transit and v < num_transit:
                assert tt_lo <= w <= tt_hi
            elif u >= num_transit and v >= num_transit:
                assert ss_lo <= w <= ss_hi
            else:
                assert ts_lo <= w <= ts_hi


def test_stub_domains_internally_connected(topo):
    # removing the gateway edge must leave each domain internally connected:
    # check distances computed over intra-domain edges only
    from repro.topology.graph import Graph

    for domain in topo.stub_domains[:6]:
        index = {node: i for i, node in enumerate(domain.nodes)}
        sub = Graph(len(domain.nodes))
        for node in domain.nodes:
            for neighbor, w in topo.graph.neighbors(node):
                j = index.get(neighbor)
                if j is not None and index[node] < j:
                    sub.add_edge(index[node], j, w)
        assert sub.is_connected()


def test_deterministic_generation():
    a = generate_transit_stub(SMALL)
    b = generate_transit_stub(SMALL)
    assert a.num_nodes == b.num_nodes
    assert [d.gateway for d in a.stub_domains] == [d.gateway for d in b.stub_domains]
    da = a.graph.shortest_paths_from(0)
    db = b.graph.shortest_paths_from(0)
    assert np.allclose(da, db)


def test_different_seed_changes_wiring():
    import dataclasses

    other = generate_transit_stub(dataclasses.replace(SMALL, seed=99))
    base = generate_transit_stub(SMALL)
    assert [d.gateway for d in base.stub_domains] != [
        d.gateway for d in other.stub_domains
    ]


def test_paper_scale_counts_without_building():
    cfg = TopologyConfig()
    assert cfg.total_nodes == 15600

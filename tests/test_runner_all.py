"""End-to-end smoke of the full experiment registry through the CLI.

Runs every registered experiment (figures, ablations, extensions) at a
tiny scale through ``repro-experiments all`` and checks the emitted
tables, JSON dump and SVG charts.  This is the single test that proves
the whole harness is wired: any experiment that cannot run, render or
serialise fails it.
"""

import json
import xml.etree.ElementTree as ET

import pytest

from repro.experiments import common, list_experiments
from repro.experiments.runner import main


@pytest.fixture(autouse=True)
def fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


def test_all_experiments_via_cli(tmp_path, capsys):
    out_file = tmp_path / "tables.txt"
    json_file = tmp_path / "data.json"
    svg_dir = tmp_path / "charts"
    code = main([
        "all",
        "--scale", "0.02",
        "--seed", "3",
        "--out", str(out_file),
        "--json", str(json_file),
        "--svg", str(svg_dir),
    ])
    assert code == 0

    tables = out_file.read_text()
    data = json.loads(json_file.read_text())
    expected_ids = [e.experiment_id for e in list_experiments()]
    assert sorted(data) == sorted(expected_ids)
    for experiment_id in expected_ids:
        assert f"[{experiment_id} finished" in tables

    # every series-bearing experiment produced a well-formed SVG
    svg_files = sorted(p.name for p in svg_dir.glob("*.svg"))
    assert "fig04.svg" in svg_files
    assert "fig07.svg" in svg_files
    for path in svg_dir.glob("*.svg"):
        ET.fromstring(path.read_text())

"""Fault primitive specs: registry, validation, timing, round-trips."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    FAULT_KINDS,
    ChurnSurge,
    FlashCrowd,
    LinkDegradation,
    NodeCrash,
    StubDomainOutage,
    fault_from_spec,
)


def test_registry_contains_all_kinds():
    assert set(FAULT_KINDS) == {
        "node-crash",
        "stub-domain-outage",
        "link-degradation",
        "flash-crowd",
        "churn-surge",
    }
    assert FAULT_KINDS["node-crash"] is NodeCrash
    assert FAULT_KINDS["stub-domain-outage"] is StubDomainOutage


def test_exactly_one_timing_field():
    with pytest.raises(FaultError):
        NodeCrash()  # neither
    with pytest.raises(FaultError):
        NodeCrash(at_s=10.0, at_frac=0.5)  # both
    assert NodeCrash(at_s=10.0).fire_time(100.0) == 10.0
    assert NodeCrash(at_frac=0.25).fire_time(2000.0) == 500.0


def test_timing_ranges():
    with pytest.raises(FaultError):
        NodeCrash(at_s=-1.0)
    with pytest.raises(FaultError):
        NodeCrash(at_frac=1.5)
    with pytest.raises(FaultError):
        NodeCrash(at_frac=-0.1)


def test_cause_tag():
    assert StubDomainOutage(at_s=1.0).cause == "fault:stub-domain-outage"
    assert ChurnSurge(at_s=1.0).cause == "fault:churn-surge"


def test_to_spec_omits_defaults():
    spec = NodeCrash(at_s=100.0, count=5).to_spec()
    assert spec == {"kind": "node-crash", "at_s": 100.0, "count": 5}


def test_spec_round_trip_every_kind():
    faults = [
        NodeCrash(at_s=10.0, count=3, selector="high-degree"),
        NodeCrash(at_frac=0.5, member_ids=(4, 7)),
        StubDomainOutage(at_frac=0.4, domains=2),
        StubDomainOutage(at_s=5.0, domain_ids=(1, 3)),
        LinkDegradation(
            at_s=9.0,
            duration_s=30.0,
            delay_factor=2.0,
            loss_rate=0.25,
            domain_ids=(2,),
        ),
        FlashCrowd(at_frac=0.1, size=120, spread_s=0.0, bandwidth=2.0),
        ChurnSurge(at_s=40.0, lifetime_factor=0.5, fraction=0.8),
    ]
    for fault in faults:
        assert fault_from_spec(fault.to_spec()) == fault


def test_from_spec_rejects_bad_specs():
    with pytest.raises(FaultError):
        fault_from_spec({"kind": "meteor-strike", "at_s": 1.0})
    with pytest.raises(FaultError):
        fault_from_spec({"kind": "node-crash", "at_s": 1.0, "bogus": 2})
    with pytest.raises(FaultError):
        fault_from_spec({"at_s": 1.0})  # missing kind
    with pytest.raises(FaultError):
        fault_from_spec([1])  # not a mapping


def test_per_kind_validation():
    with pytest.raises(FaultError):
        NodeCrash(at_s=1.0, count=0)
    with pytest.raises(FaultError):
        NodeCrash(at_s=1.0, selector="bogus")
    with pytest.raises(FaultError):
        StubDomainOutage(at_s=1.0, domains=0)
    with pytest.raises(FaultError):
        LinkDegradation(at_s=1.0, duration_s=0.0)
    with pytest.raises(FaultError):
        LinkDegradation(at_s=1.0, delay_factor=0.5)
    with pytest.raises(FaultError):
        LinkDegradation(at_s=1.0, loss_rate=1.5)
    with pytest.raises(FaultError):
        FlashCrowd(at_s=1.0, size=0)
    with pytest.raises(FaultError):
        FlashCrowd(at_s=1.0, spread_s=-1.0)
    with pytest.raises(FaultError):
        ChurnSurge(at_s=1.0, lifetime_factor=0.0)
    with pytest.raises(FaultError):
        ChurnSurge(at_s=1.0, fraction=1.5)

"""Repository hygiene: no bytecode, cache or result artefacts tracked.

CI enforces the same rule with a `git ls-files` guard; this test keeps
the check in the local tier-1 loop so an accidental `git add -A` of
__pycache__ directories is caught before a push.
"""

import fnmatch
import re
import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

FORBIDDEN_PATTERNS = (
    "*.pyc",
    "*.pyo",
    "*/__pycache__/*",
    "__pycache__/*",
    "*/.pytest_cache/*",
    "*/.hypothesis/*",
    ".coverage",
    "coverage.xml",
)


def tracked_files():
    if shutil.which("git") is None or not (REPO_ROOT / ".git").exists():
        pytest.skip("not a git checkout")
    out = subprocess.run(
        ["git", "ls-files"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    return out.stdout.splitlines()


def test_no_bytecode_or_cache_artifacts_tracked():
    offenders = [
        path
        for path in tracked_files()
        for pattern in FORBIDDEN_PATTERNS
        if fnmatch.fnmatch(path, pattern)
    ]
    assert offenders == [], f"cache/bytecode artefacts tracked: {offenders}"


def test_gitignore_covers_test_tooling_artifacts():
    ignored = (REPO_ROOT / ".gitignore").read_text().splitlines()
    for required in ("__pycache__/", "*.pyc", ".hypothesis/", ".coverage"):
        assert required in ignored, f".gitignore is missing {required!r}"


def test_manifest_excludes_bytecode_from_sdists():
    manifest = (REPO_ROOT / "MANIFEST.in").read_text()
    assert "global-exclude *.py[cod]" in manifest
    assert "prune" in manifest and "__pycache__" in manifest


def test_no_stray_trace_files_tracked():
    """The golden fixtures are the only .jsonl files that may be tracked;
    trace output from local runs must never land in the repository."""
    offenders = [
        path
        for path in tracked_files()
        if path.endswith(".jsonl") and not path.startswith("tests/golden/")
    ]
    assert offenders == [], f"stray trace files tracked: {offenders}"


def test_gitignore_covers_trace_output():
    ignored = (REPO_ROOT / ".gitignore").read_text().splitlines()
    for required in ("*.trace.jsonl", "*.jsonl.tmp-*"):
        assert required in ignored, f".gitignore is missing {required!r}"


def test_manifest_ships_goldens_but_not_trace_output():
    manifest = (REPO_ROOT / "MANIFEST.in").read_text()
    assert "recursive-include tests/golden *.jsonl" in manifest
    assert "global-exclude *.trace.jsonl" in manifest
    assert "global-exclude *.jsonl.tmp-*" in manifest


RESULT_ARTIFACT_PATTERNS = (
    "results*.txt",
    "*/results*.txt",
    "*.runstore/*",
)


def test_no_result_artifacts_tracked():
    """Experiment output (results tables, run stores) must never be
    committed; the tracked BENCH_*.json perf baselines are the one
    deliberate exception and do not match these patterns."""
    offenders = [
        path
        for path in tracked_files()
        for pattern in RESULT_ARTIFACT_PATTERNS
        if fnmatch.fnmatch(path, pattern)
    ]
    assert offenders == [], f"result artefacts tracked: {offenders}"


def test_gitignore_covers_result_artifacts():
    ignored = (REPO_ROOT / ".gitignore").read_text().splitlines()
    for required in ("results*.txt", "*.runstore/"):
        assert required in ignored, f".gitignore is missing {required!r}"


def _pyproject_version() -> str:
    text = (REPO_ROOT / "pyproject.toml").read_text()
    match = re.search(r'^version\s*=\s*"([^"]+)"', text, flags=re.MULTILINE)
    assert match, "pyproject.toml has no project version"
    return match.group(1)


def _changelog_latest_release() -> str:
    text = (REPO_ROOT / "CHANGELOG.md").read_text()
    match = re.search(r"^## ([0-9]+(?:\.[0-9]+)*)", text, flags=re.MULTILINE)
    assert match, "CHANGELOG.md has no release heading"
    return match.group(1)


def test_pyproject_version_matches_changelog():
    """The released version is written in exactly two places; they must
    agree or the sdist will claim a version with no release notes."""
    assert _pyproject_version() == _changelog_latest_release()

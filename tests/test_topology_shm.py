"""The shared-memory topology tier: lifecycle, fidelity, crash cleanup.

The contract: inside a pool session the first process publishes each
underlay's arrays into one POSIX shared-memory segment, everyone else
attaches zero-copy, queries are bit-identical to the pickled/disk path,
and closing the session reclaims every segment — including those left
behind by a worker that crashed mid-run.
"""

import os

import numpy as np
import pytest

from repro.config import TopologyConfig
from repro.experiments import common
from repro.experiments.pool import ExperimentJob, ExperimentPool
from repro.experiments.registry import REGISTRY, ExperimentResult, register
from repro.topology import shm
from repro.topology.cache import TopologyCache, topology_cache_key
from repro.topology.routing import DelayOracle
from repro.topology.transit_stub import generate_transit_stub

SMALL = TopologyConfig(
    transit_domains=2,
    transit_nodes_per_domain=3,
    stub_domains_per_transit=2,
    stub_nodes_per_domain=5,
    seed=9,
)

pytestmark = pytest.mark.skipif(
    not shm.shm_available(), reason="multiprocessing.shared_memory unavailable"
)


@pytest.fixture
def session(monkeypatch):
    token = shm.new_session_token()
    monkeypatch.setenv(shm.ENV_SHM_SESSION, token)
    yield token
    shm.cleanup_session(token)


def test_publish_attach_roundtrip_bit_identical(session):
    topo = generate_transit_stub(SMALL)
    oracle = DelayOracle(topo)
    key = topology_cache_key(SMALL)

    cache = TopologyCache(memory_slots=1, disk_dir=None)
    pair = cache.get(SMALL)
    assert shm.active_segments(session)

    other = TopologyCache(memory_slots=1, disk_dir=None)
    topo2, oracle2 = other.get(SMALL)
    assert other.shm_hits == 1 and other.misses == 0

    rng = np.random.default_rng(3)
    pairs = rng.integers(0, topo.num_nodes, size=(300, 2))
    for u, v in pairs:
        assert oracle.delay_ms(int(u), int(v)) == oracle2.delay_ms(int(u), int(v))
    targets = rng.integers(0, topo.num_nodes, size=100)
    assert (
        oracle.delays_from(1, targets).tolist()
        == oracle2.delays_from(1, targets).tolist()
    )


def test_attached_matrices_are_readonly_views(session):
    cache = TopologyCache(memory_slots=1, disk_dir=None)
    cache.get(SMALL)
    other = TopologyCache(memory_slots=1, disk_dir=None)
    _, oracle = other.get(SMALL)
    matrices = oracle.to_matrices()
    assert not matrices["intra"].flags.writeable
    assert not matrices["core"].flags.writeable
    with pytest.raises(ValueError):
        matrices["core"][0, 0] = 1.0


def test_publish_race_loser_attaches(session):
    key = topology_cache_key(SMALL)
    cache = TopologyCache(memory_slots=1, disk_dir=None)
    topo, oracle = cache.get(SMALL)
    # Second publish of the same key: loses the race, reports False.
    from repro.topology.cache import _topology_to_arrays

    arrays = _topology_to_arrays(topo)
    matrices = oracle.to_matrices()
    arrays["oracle_intra"] = matrices["intra"]
    arrays["oracle_core"] = matrices["core"]
    assert shm.publish(key, arrays) is False
    assert shm.attach(key) is not None


def test_cleanup_session_reclaims_everything(session):
    cache = TopologyCache(memory_slots=1, disk_dir=None)
    cache.get(SMALL)
    assert shm.active_segments(session)
    removed = shm.cleanup_session(session)
    assert removed >= 1
    assert shm.active_segments(session) == []
    # idempotent
    assert shm.cleanup_session(session) == 0


def test_kill_switch_disables_tier(session, monkeypatch):
    monkeypatch.setenv(shm.ENV_SHM_ENABLE, "0")
    assert not shm.shm_enabled()
    cache = TopologyCache(memory_slots=1, disk_dir=None)
    cache.get(SMALL)
    assert shm.active_segments(session) == []
    assert shm.attach(topology_cache_key(SMALL)) is None


def test_no_session_means_no_tier(monkeypatch):
    monkeypatch.delenv(shm.ENV_SHM_SESSION, raising=False)
    assert not shm.shm_enabled()
    assert shm.publish("deadbeef", {"x": np.zeros(3)}) is False
    assert shm.attach("deadbeef") is None


def test_torn_segment_is_a_miss(session):
    """Garbage in the segment header degrades to the next tier."""
    from multiprocessing import shared_memory

    name = shm.segment_name("torn0000torn", session)
    seg = shared_memory.SharedMemory(name=name, create=True, size=64)
    try:
        seg.buf[:8] = (2**40).to_bytes(8, "little")  # absurd header length
        assert shm.attach("torn0000torn") is None
    finally:
        seg.close()
        seg.unlink()


def _register(experiment_id: str, run):
    register(experiment_id, f"test helper {experiment_id}", "test")(run)


def test_pool_run_shm_vs_pickled_identical_with_crash():
    """Acceptance: the shm-backed pool matches the serial (pickled) path
    byte for byte, even when a worker crashes and the job is retried
    in-process — and no segment outlives the run."""
    experiment_id = "testshmcrash"

    def run(scale=1.0, seed=42, **_):
        # Crash the seed-1 job whenever it runs inside a worker (only
        # workers get REPRO_CACHE_DIR from the pool initializer); the
        # in-process retry in the parent then succeeds.
        if seed == 1 and os.environ.get("REPRO_CACHE_DIR"):
            os._exit(23)
        config = TopologyConfig(
            transit_domains=2,
            transit_nodes_per_domain=3,
            stub_domains_per_transit=2,
            stub_nodes_per_domain=5,
            seed=9,
        )
        from repro.topology.cache import default_cache

        topo, oracle = default_cache().get(config)
        rng = np.random.default_rng(seed)
        pairs = rng.integers(0, topo.num_nodes, size=(50, 2))
        total = sum(oracle.delay_ms(int(u), int(v)) for u, v in pairs)
        return ExperimentResult(
            experiment_id, "shm crash", table=f"seed={seed} total={total!r}"
        )

    _register(experiment_id, run)
    try:
        jobs = [ExperimentJob.make(experiment_id, seed=s) for s in (1, 2, 3)]
        common.clear_caches()
        serial = ExperimentPool(jobs=1).run(jobs)

        common.clear_caches()
        assert "REPRO_CACHE_DIR" not in os.environ
        pool = ExperimentPool(jobs=2)
        parallel = pool.run(jobs)

        assert pool.retried_jobs >= 1
        assert [r.table for r in serial] == [r.table for r in parallel]
        # the session (and any segments a crashed worker published) is gone
        assert not [n for n in os.listdir("/dev/shm") if n.startswith("rpt")]
        assert shm.ENV_SHM_SESSION not in os.environ
    finally:
        REGISTRY.pop(experiment_id, None)
        common.clear_caches()

"""MulticastTree structural operations and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TreeError
from repro.overlay.tree import MulticastTree
from tests.conftest import make_node


def new_tree(root_cap=4):
    root = make_node(0, bandwidth=float(root_cap), cap=root_cap, is_root=True)
    return MulticastTree(root)


def add(tree, member_id, cap=2, **kw):
    node = make_node(member_id, bandwidth=float(cap) + 0.5, cap=cap, **kw)
    tree.add_member(node)
    return node


class TestRegistration:
    def test_root_registered(self):
        tree = new_tree()
        assert tree.num_members == 1
        assert tree.num_attached == 1

    def test_requires_root_flag(self):
        with pytest.raises(TreeError):
            MulticastTree(make_node(0))

    def test_duplicate_id_rejected(self):
        tree = new_tree()
        add(tree, 1)
        with pytest.raises(TreeError):
            add(tree, 1)

    def test_second_root_rejected(self):
        tree = new_tree()
        with pytest.raises(TreeError):
            tree.add_member(make_node(1, is_root=True))


class TestAttachDetach:
    def test_attach_sets_layers_and_flags(self):
        tree = new_tree()
        a = add(tree, 1)
        b = add(tree, 2)
        tree.attach(a, tree.root)
        tree.attach(b, a)
        assert (a.layer, b.layer) == (1, 2)
        assert a.attached and b.attached and b.ever_attached
        assert tree.num_attached == 3
        tree.check_invariants()

    def test_attach_subtree_relabels(self):
        tree = new_tree()
        a, b, c = add(tree, 1), add(tree, 2), add(tree, 3)
        tree.attach(a, tree.root)
        tree.attach(b, a)
        tree.attach(c, b)
        tree.detach(a)
        assert not c.attached and c.layer == -1
        tree.attach(a, tree.root)
        assert (a.layer, b.layer, c.layer) == (1, 2, 3)
        tree.check_invariants()

    def test_attach_capacity_enforced(self):
        tree = new_tree(root_cap=1)
        a = add(tree, 1)
        b = add(tree, 2)
        tree.attach(a, tree.root)
        with pytest.raises(TreeError):
            tree.attach(b, tree.root)

    def test_attach_under_detached_rejected(self):
        tree = new_tree()
        a, b = add(tree, 1), add(tree, 2)
        with pytest.raises(TreeError):
            tree.attach(b, a)

    def test_double_attach_rejected(self):
        tree = new_tree()
        a = add(tree, 1)
        tree.attach(a, tree.root)
        with pytest.raises(TreeError):
            tree.attach(a, tree.root)

    def test_detach_root_rejected(self):
        tree = new_tree()
        with pytest.raises(TreeError):
            tree.detach(tree.root)

    def test_foreign_node_rejected(self):
        tree = new_tree()
        with pytest.raises(TreeError):
            tree.attach(make_node(5), tree.root)


class TestDeparture:
    def test_remove_returns_orphans(self):
        tree = new_tree()
        a, b, c = add(tree, 1, cap=3), add(tree, 2), add(tree, 3)
        tree.attach(a, tree.root)
        tree.attach(b, a)
        tree.attach(c, a)
        orphans = tree.remove_departed(a)
        assert set(orphans) == {b, c}
        assert all(o.parent is None and not o.attached for o in orphans)
        assert 1 not in tree.members
        tree.check_invariants()

    def test_remove_detached_member(self):
        tree = new_tree()
        a, b = add(tree, 1), add(tree, 2)
        tree.attach(a, tree.root)
        tree.attach(b, a)
        tree.detach(a)  # a and b now detached, b still under a
        orphans = tree.remove_departed(a)
        assert orphans == [b]
        assert b.parent is None

    def test_root_never_departs(self):
        tree = new_tree()
        with pytest.raises(TreeError):
            tree.remove_departed(tree.root)

    def test_pop_children_requires_detached(self):
        tree = new_tree()
        a = add(tree, 1)
        tree.attach(a, tree.root)
        with pytest.raises(TreeError):
            tree.pop_children(a)


class TestSwap:
    def build_fig2(self):
        """Fig. 2 of the paper: a(cap 2) above b(cap 3) with children."""
        tree = new_tree(root_cap=4)
        a = add(tree, 1, cap=2)  # parent, BTP 10
        b = add(tree, 2, cap=3)  # initiator, BTP 12
        c = add(tree, 3, cap=0)  # sibling of b
        d, e, f = add(tree, 4, cap=0), add(tree, 5, cap=0), add(tree, 6, cap=0)
        tree.attach(a, tree.root)
        tree.attach(b, a)
        tree.attach(c, a)
        for child in (d, e, f):
            tree.attach(child, b)
        return tree, a, b, c, d, e, f

    def test_fig2_swap(self):
        tree, a, b, c, d, e, f = self.build_fig2()
        btp = {4: 3.0, 5: 4.0, 6: 5.0}  # f has the largest BTP

        needs_rejoin = tree.swap_with_parent(
            b, overflow_priority=lambda n: btp.get(n.member_id, 0.0)
        )
        assert needs_rejoin == []
        # b took a's position; a demoted below b
        assert b.parent is tree.root and b.layer == 1
        assert a.parent is b and a.layer == 2
        # sibling c moved under b, keeping its layer
        assert c.parent is b and c.layer == 2
        # a adopted d and e; f (largest BTP) reconnected to b
        assert {n.member_id for n in a.children} == {4, 5}
        assert f.parent is b and f.layer == 2
        assert d.layer == 3 and e.layer == 3
        tree.check_invariants()

    def test_swap_requires_grandparent(self):
        tree = new_tree()
        a, b = add(tree, 1, cap=2), add(tree, 2, cap=2)
        tree.attach(a, tree.root)
        tree.attach(b, a)
        with pytest.raises(TreeError):
            tree.swap_with_parent(a, overflow_priority=lambda n: 0.0)

    def test_swap_capacity_precondition(self):
        tree = new_tree()
        a = add(tree, 1, cap=3)
        b = add(tree, 2, cap=1)  # too small to adopt 2 siblings + parent
        s1, s2 = add(tree, 3, cap=0), add(tree, 4, cap=0)
        mid = add(tree, 5, cap=3)
        tree.attach(mid, tree.root)
        tree.attach(a, mid)
        tree.attach(b, a)
        tree.attach(s1, a)
        tree.attach(s2, a)
        with pytest.raises(TreeError):
            tree.swap_with_parent(b, overflow_priority=lambda n: 0.0)

    def test_swap_overflow_to_rejoin_without_guard(self):
        """If the initiator cannot absorb the overflow (possible only when
        the bandwidth guard is ablated) the extras are detached."""
        tree = new_tree()
        mid = add(tree, 9, cap=4)
        a = add(tree, 1, cap=1)  # parent with tiny capacity
        b = add(tree, 2, cap=1)  # initiator, same capacity
        x, y = add(tree, 3, cap=0), add(tree, 4, cap=0)
        tree.attach(mid, tree.root)
        tree.attach(a, mid)
        tree.attach(b, a)
        # b's children: x and y cannot both return under a (cap 1) and b
        # has no spare after adopting a
        tree.attach(x, b)
        with pytest.raises(TreeError):
            tree.attach(y, b)  # b's cap is 1; craft differently
        # rebuild: b cap 2 with two children; a cap 1
        tree2 = new_tree()
        mid2 = tree2.root
        a2 = add(tree2, 1, cap=1)
        b2 = add(tree2, 2, cap=2)
        x2, y2 = add(tree2, 3, cap=0), add(tree2, 4, cap=0)
        tree2.attach(a2, mid2)
        tree2.attach(b2, a2)
        tree2.attach(x2, b2)
        tree2.attach(y2, b2)
        rejoins = tree2.swap_with_parent(b2, overflow_priority=lambda n: n.member_id)
        # a2 keeps one child; b2 has a2 plus one overflow... b2 cap=2 holds
        # a2 and the higher-priority child; the remaining child is orphaned
        assert len(rejoins) == 0 or all(not r.attached for r in rejoins)
        tree2.check_invariants()


class TestPromotion:
    def test_promote_moves_subtree_up(self):
        tree = new_tree()
        a = add(tree, 1, cap=2)
        b = add(tree, 2, cap=2)
        c = add(tree, 3, cap=0)
        tree.attach(a, tree.root)
        tree.attach(b, a)
        tree.attach(c, b)
        tree.promote_to_grandparent(b)
        assert b.parent is tree.root
        assert b.layer == 1 and c.layer == 2
        assert a.children == []
        tree.check_invariants()

    def test_promote_requires_spare(self):
        tree = new_tree(root_cap=1)
        a = add(tree, 1, cap=2)
        b = add(tree, 2, cap=2)
        tree.attach(a, tree.root)
        tree.attach(b, a)
        with pytest.raises(TreeError):
            tree.promote_to_grandparent(b)

    def test_promote_requires_grandparent(self):
        tree = new_tree()
        a = add(tree, 1, cap=2)
        tree.attach(a, tree.root)
        with pytest.raises(TreeError):
            tree.promote_to_grandparent(a)


class TestListeners:
    def test_position_events_fired(self):
        tree = new_tree()
        seen = []
        tree.position_listeners.append(lambda n: seen.append(n.member_id))
        a = add(tree, 1)
        tree.attach(a, tree.root)
        assert 1 in seen and 0 in seen  # child attached, parent re-indexed

    def test_detach_events_fired(self):
        tree = new_tree()
        gone = []
        tree.detach_listeners.append(lambda n: gone.append(n.member_id))
        a, b = add(tree, 1), add(tree, 2)
        tree.attach(a, tree.root)
        tree.attach(b, a)
        tree.detach(a)
        assert set(gone) == {1, 2}


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=5), min_size=5, max_size=60),
       st.integers(min_value=0, max_value=2**31 - 1))
def test_random_operation_sequences_keep_invariants(caps, seed):
    """Random attach/detach/depart/swap/promote sequences never violate the
    structural invariants."""
    rng = np.random.default_rng(seed)
    tree = new_tree(root_cap=3)
    nodes = []
    for i, cap in enumerate(caps):
        node = make_node(i + 1, bandwidth=cap + 0.5, cap=cap)
        tree.add_member(node)
        nodes.append(node)
    for step in range(len(caps) * 3):
        op = rng.integers(0, 5)
        node = nodes[int(rng.integers(0, len(nodes)))]
        if node.member_id not in tree.members:
            continue
        try:
            if op == 0 and not node.attached and node.parent is None:
                attached = [n for n in tree.attached_nodes() if n.spare_degree > 0
                            and n is not node]
                if attached:
                    tree.attach(node, attached[int(rng.integers(0, len(attached)))])
            elif op == 1 and node.attached:
                tree.detach(node)
            elif op == 2:
                orphans = tree.remove_departed(node)
                for orphan in orphans:
                    pass  # stay detached
            elif op == 3 and node.attached and node.parent is not None:
                parent = node.parent
                if (not parent.is_root and parent.parent is not None
                        and node.out_degree_cap >= len(parent.children)):
                    tree.swap_with_parent(node, overflow_priority=lambda n: n.member_id)
            elif op == 4 and node.attached and node.parent is not None:
                parent = node.parent
                if parent.parent is not None and parent.parent.spare_degree > 0:
                    tree.promote_to_grandparent(node)
        except TreeError:
            raise
        tree.check_invariants()

"""Graceful (announced) departures — the extension beyond the paper's
abrupt-only extreme case."""

import pytest

from repro.errors import SimulationError
from repro.protocols import PROTOCOLS
from repro.simulation.churn import ChurnSimulation
from tests.conftest import small_sim_config


@pytest.fixture(scope="module")
def shared_infra():
    sim = ChurnSimulation(small_sim_config(), PROTOCOLS["min-depth"])
    return sim.topology, sim.oracle


def run_with_fraction(fraction, shared_infra, seed=13, population=100):
    topo, oracle = shared_infra
    sim = ChurnSimulation(
        small_sim_config(population=population, seed=seed),
        PROTOCOLS["min-depth"],
        topology=topo,
        oracle=oracle,
        graceful_departure_fraction=fraction,
        check_invariants=True,
    )
    return sim.run()


def test_all_graceful_means_no_disruptions(shared_infra):
    result = run_with_fraction(1.0, shared_infra)
    assert result.metrics.disruption_events == 0


def test_graceful_fraction_reduces_disruptions(shared_infra):
    abrupt = run_with_fraction(0.0, shared_infra)
    half = run_with_fraction(0.5, shared_infra)
    assert abrupt.metrics.disruption_events > 0
    assert half.metrics.disruption_events < abrupt.metrics.disruption_events


def test_graceful_children_still_reconnect(shared_infra):
    result = run_with_fraction(1.0, shared_infra)
    assert result.metrics.failure_reconnections > 0


def test_invalid_fraction_rejected(shared_infra):
    topo, oracle = shared_infra
    with pytest.raises(SimulationError):
        ChurnSimulation(
            small_sim_config(),
            PROTOCOLS["min-depth"],
            topology=topo,
            oracle=oracle,
            graceful_departure_fraction=1.5,
        )

"""Message accounting."""

import pytest

from repro.overlay.messages import MessageStats, MessageType


def test_record_and_total():
    stats = MessageStats()
    stats.record(MessageType.JOIN, 3)
    stats.record(MessageType.ACCEPT)
    assert stats.total == 4
    assert stats.counts[MessageType.JOIN] == 3


def test_as_dict_omits_zero_entries():
    stats = MessageStats()
    stats.record(MessageType.NACK, 2)
    assert stats.as_dict() == {"nack": 2}


def test_merge():
    a, b = MessageStats(), MessageStats()
    a.record(MessageType.ELN, 1)
    b.record(MessageType.ELN, 2)
    b.record(MessageType.REPAIR_DATA, 5)
    a.merge(b)
    assert a.counts[MessageType.ELN] == 3
    assert a.counts[MessageType.REPAIR_DATA] == 5


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        MessageStats().record(MessageType.JOIN, -1)

"""End-to-end churn simulation runs (small populations)."""

import pytest

from repro.errors import SimulationError
from repro.protocols import PROTOCOLS
from repro.simulation.churn import ChurnSimulation
from repro.simulation.probe import PROBE_MEMBER_ID, make_probe_session
from tests.conftest import small_sim_config


@pytest.fixture(scope="module")
def shared_infra():
    """One topology+oracle shared by every churn test in this module."""
    sim = ChurnSimulation(small_sim_config(), PROTOCOLS["min-depth"])
    return sim.topology, sim.oracle


def run(protocol_name, config=None, **kwargs):
    cfg = config or small_sim_config()
    sim = ChurnSimulation(
        cfg,
        PROTOCOLS[protocol_name],
        check_invariants=True,
        **kwargs,
    )
    return sim, sim.run()


@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
def test_runs_green_with_invariants(shared_infra, protocol_name):
    topo, oracle = shared_infra
    cfg = small_sim_config()
    sim = ChurnSimulation(
        cfg, PROTOCOLS[protocol_name], topology=topo, oracle=oracle,
        check_invariants=True,
    )
    result = sim.run()
    assert result.protocol_name == protocol_name
    assert result.sessions_total > 0
    assert result.metrics.mean_population > 0
    assert result.metrics.node_seconds > 0


def test_population_tracks_target(shared_infra):
    topo, oracle = shared_infra
    cfg = small_sim_config(population=80)
    sim = ChurnSimulation(cfg, PROTOCOLS["min-depth"], topology=topo, oracle=oracle)
    result = sim.run()
    assert 0.5 * 80 <= result.metrics.mean_population <= 1.3 * 80


def test_deterministic_same_seed(shared_infra):
    topo, oracle = shared_infra
    results = []
    for _ in range(2):
        sim = ChurnSimulation(
            small_sim_config(seed=77), PROTOCOLS["rost"], topology=topo, oracle=oracle
        )
        results.append(sim.run())
    a, b = results
    assert a.metrics.disruption_events == b.metrics.disruption_events
    assert a.metrics.node_seconds == pytest.approx(b.metrics.node_seconds)
    assert a.extras["switches"] == b.extras["switches"]


def test_different_seeds_differ(shared_infra):
    topo, oracle = shared_infra
    a = ChurnSimulation(
        small_sim_config(seed=1), PROTOCOLS["min-depth"], topology=topo, oracle=oracle
    ).run()
    b = ChurnSimulation(
        small_sim_config(seed=2), PROTOCOLS["min-depth"], topology=topo, oracle=oracle
    ).run()
    assert a.metrics.node_seconds != pytest.approx(b.metrics.node_seconds)


def test_single_run_per_instance(shared_infra):
    topo, oracle = shared_infra
    sim = ChurnSimulation(
        small_sim_config(), PROTOCOLS["min-depth"], topology=topo, oracle=oracle
    )
    sim.run()
    with pytest.raises(SimulationError):
        sim.run()


def test_probe_series_recorded(shared_infra):
    topo, oracle = shared_infra
    cfg = small_sim_config(population=60, seed=5)
    probe = make_probe_session(
        arrival_s=cfg.warmup_s,
        lifetime_s=cfg.measure_s,
        bandwidth=2.0,
        underlay_node=topo.stub_nodes[0],
    )
    sim = ChurnSimulation(
        cfg, PROTOCOLS["min-depth"], topology=topo, oracle=oracle, probe=probe,
        probe_sample_interval_s=30.0,
    )
    result = sim.run()
    assert result.probe_disruptions is not None
    assert len(result.probe_disruptions) >= 1  # the initial zero point
    assert result.probe_delay_ms is not None
    assert len(result.probe_delay_ms) > 3
    assert all(v > 0 for v in result.probe_delay_ms.values)


def test_disruption_observer_sees_prefailure_state(shared_infra):
    topo, oracle = shared_infra
    observed = []

    def observer(event):
        # the failed member must still be wired into the tree
        observed.append((event.failed.attached, len(event.failed.children)))
        assert event.cause == "churn"
        assert event.subtree_size == 1 + len(event.failed.descendants())

    sim = ChurnSimulation(
        small_sim_config(population=80, seed=11),
        PROTOCOLS["min-depth"],
        topology=topo,
        oracle=oracle,
        disruption_observer=observer,
    )
    sim.run()
    assert observed, "expected at least one attached failure"
    assert all(attached for attached, _ in observed)


def test_departure_observer_called_for_each_departure(shared_infra):
    topo, oracle = shared_infra
    departed = []
    sim = ChurnSimulation(
        small_sim_config(population=40, seed=11),
        PROTOCOLS["min-depth"],
        topology=topo,
        oracle=oracle,
        departure_observer=lambda now, node: departed.append(node.member_id),
    )
    result = sim.run()
    assert len(departed) > 0
    assert len(set(departed)) == len(departed)


def test_metrics_sanity_ranges(shared_infra):
    topo, oracle = shared_infra
    sim = ChurnSimulation(
        small_sim_config(population=80, seed=3),
        PROTOCOLS["rost"],
        topology=topo,
        oracle=oracle,
    )
    result = sim.run()
    m = result.metrics
    assert m.avg_service_delay_ms > 0
    assert m.avg_stretch >= 1.0
    assert m.avg_disruptions_per_node >= 0.0
    assert result.messages.total > 0

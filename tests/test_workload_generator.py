"""Churn workload generation: arrivals, stationarity, determinism."""

import numpy as np
import pytest

from repro.config import WorkloadConfig
from repro.errors import ConfigError
from repro.simulation.probe import PROBE_MEMBER_ID, make_probe_session
from repro.workload.generator import generate_workload
from repro.workload.session import RootSpec, Session


def make(population=200, horizon=3000.0, seed=1, prepopulate=True, probe=None):
    config = WorkloadConfig(target_population=population)
    rng = np.random.default_rng(seed)
    return generate_workload(
        config,
        horizon_s=horizon,
        attach_nodes=list(range(100, 200)),
        rng=rng,
        probe=probe,
        prepopulate=prepopulate,
    )


def test_sessions_sorted_by_arrival():
    wl = make()
    arrivals = [s.arrival_s for s in wl.sessions]
    assert arrivals == sorted(arrivals)


def test_arrivals_within_horizon():
    wl = make()
    assert all(0.0 <= s.arrival_s <= wl.horizon_s for s in wl.sessions)


def test_member_ids_unique_and_reserved_root_id():
    wl = make()
    ids = [s.member_id for s in wl.sessions]
    assert len(set(ids)) == len(ids)
    assert 0 not in ids  # id 0 is the root


def test_prepopulation_counts_and_ages():
    wl = make(population=300)
    initial = [s for s in wl.sessions if s.arrival_s == 0.0]
    assert len(initial) == 300
    assert all(s.initial_age_s >= 0 for s in initial)
    config = wl.config
    assert all(s.initial_age_s <= config.max_initial_age_s for s in initial)
    later = [s for s in wl.sessions if s.arrival_s > 0.0]
    assert all(s.initial_age_s == 0.0 for s in later)


def test_stationary_population_near_target():
    """With equilibrium prepopulation the population stays near M."""
    wl = make(population=400, horizon=4000.0, seed=7)
    for t in [500.0, 2000.0, 3500.0]:
        pop = wl.population_at(t)
        assert 0.75 * 400 <= pop <= 1.25 * 400, (t, pop)


def test_no_prepopulation_starts_empty():
    wl = make(prepopulate=False)
    assert wl.population_at(0.0) == 0
    assert all(s.initial_age_s == 0.0 for s in wl.sessions)


def test_arrival_rate_littles_law():
    wl = make(population=500, horizon=10000.0, seed=3, prepopulate=False)
    expected = 500 / wl.config.mean_lifetime_s * 10000.0
    assert len(wl.sessions) == pytest.approx(expected, rel=0.2)


def test_attach_nodes_from_pool():
    wl = make()
    pool = set(range(100, 200))
    assert all(s.underlay_node in pool for s in wl.sessions)
    assert wl.root.underlay_node in pool


def test_probe_spliced_in_order():
    probe = make_probe_session(arrival_s=1500.0, underlay_node=150)
    wl = make(probe=probe)
    probes = [s for s in wl.sessions if s.member_id == PROBE_MEMBER_ID]
    assert probes == [probe]
    arrivals = [s.arrival_s for s in wl.sessions]
    assert arrivals == sorted(arrivals)


def test_deterministic_for_same_seed():
    a, b = make(seed=9), make(seed=9)
    assert [(s.member_id, s.arrival_s, s.bandwidth) for s in a.sessions] == [
        (s.member_id, s.arrival_s, s.bandwidth) for s in b.sessions
    ]


def test_different_seed_differs():
    a, b = make(seed=9), make(seed=10)
    assert [s.arrival_s for s in a.sessions] != [s.arrival_s for s in b.sessions]


def test_rejects_bad_arguments():
    config = WorkloadConfig()
    rng = np.random.default_rng(0)
    with pytest.raises(ConfigError):
        generate_workload(config, horizon_s=0.0, attach_nodes=[1], rng=rng)
    with pytest.raises(ConfigError):
        generate_workload(config, horizon_s=10.0, attach_nodes=[], rng=rng)


class TestSession:
    def test_departure_and_out_degree(self):
        s = Session(1, 10.0, 50.0, bandwidth=3.7, underlay_node=5)
        assert s.departure_s == 60.0
        assert s.out_degree(1.0) == 3
        assert s.out_degree(2.0) == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            Session(1, -1.0, 10.0, 1.0, 0)
        with pytest.raises(ConfigError):
            Session(1, 0.0, 0.0, 1.0, 0)
        with pytest.raises(ConfigError):
            Session(1, 0.0, 10.0, -1.0, 0)
        with pytest.raises(ConfigError):
            Session(1, 0.0, 10.0, 1.0, 0, initial_age_s=-5.0)
        # only t=0 members may carry an age
        with pytest.raises(ConfigError):
            Session(1, 5.0, 10.0, 1.0, 0, initial_age_s=3.0)

    def test_root_spec(self):
        root = RootSpec(bandwidth=100.0, underlay_node=3)
        assert root.out_degree(1.0) == 100

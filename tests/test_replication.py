"""Multi-seed replication of experiments."""

import pytest

from repro.experiments import common
from repro.experiments.replication import replicate
from repro.experiments.runner import main


@pytest.fixture(autouse=True)
def fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


def test_replicate_merges_sweep_series():
    result = replicate("fig04", seeds=[3, 4], scale=0.02, sizes=(2000, 5000))
    assert result.summary_table is not None
    assert set(result.summary) == {
        "min-depth", "longest-first", "relaxed-bo", "relaxed-to", "rost",
    }
    for stats in result.summary.values():
        assert len(stats["mean"]) == 2
        assert len(stats["ci95"]) == 2
        assert all(c >= 0 for c in stats["ci95"])
    assert "mean ± 95% CI over 2 seeds" in result.summary_table


def test_replicate_single_seed_passes_through():
    result = replicate("fig04", seeds=[3], scale=0.02, sizes=(2000,))
    assert result.summary_table is None
    assert len(result.replicas) == 1
    assert "Fig. 4" in str(result)


def test_replicate_unmergeable_reports_per_seed():
    result = replicate("fig14", seeds=[3, 4], scale=0.02, population=2000, replicas=2)
    assert result.summary_table is None
    assert len(result.replicas) == 2


def test_replicate_requires_seeds():
    with pytest.raises(ValueError):
        replicate("fig04", seeds=[])


def test_cli_replicas_flag(capsys):
    code = main([
        "run", "fig04", "--scale", "0.02", "--seed", "3", "--replicas", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "mean ± 95% CI over 2 seeds" in out

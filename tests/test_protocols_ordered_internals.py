"""Internals of the centralized ordered protocols: lazy indices,
first-found probing, improvement checks."""

import pytest

from repro.protocols.relaxed_bo import RelaxedBandwidthOrderedProtocol
from repro.protocols.relaxed_to import RelaxedTimeOrderedProtocol
from tests.protocol_harness import Harness


@pytest.fixture()
def harness(tiny_topology, tiny_oracle):
    return Harness(tiny_topology, tiny_oracle, root_cap=3)


def place_members(harness, proto, bandwidths, join_time=0.0):
    nodes = []
    for bw in bandwidths:
        node = harness.new_member(bandwidth=bw, join_time=join_time)
        assert proto.place(node, rejoin=False)
        nodes.append(node)
    return nodes


class TestLazyIndices:
    def test_stale_entries_skipped_after_departure(self, harness):
        proto = RelaxedBandwidthOrderedProtocol(harness.ctx)
        nodes = place_members(harness, proto, [1.0, 1.5, 2.0])
        victim = nodes[0]
        harness.depart(victim)
        # the heap still holds the departed member's entry; the scan must
        # skip it rather than evicting a ghost
        target = proto._find_eviction_target(
            harness.new_member(bandwidth=9.0)
        )
        assert target is not victim

    def test_layer_change_invalidates_entries(self, harness):
        proto = RelaxedBandwidthOrderedProtocol(harness.ctx)
        nodes = place_members(harness, proto, [1.0, 1.2, 1.4])
        moved = nodes[0]
        harness.tree.detach(moved)
        harness.tree.attach(moved, nodes[1])  # now at layer 2
        worst = proto._peek_worst_in_layer(1)
        assert worst is not moved

    def test_max_layer_tracks_growth(self, harness):
        proto = RelaxedBandwidthOrderedProtocol(harness.ctx)
        place_members(harness, proto, [2.0, 0.9, 0.8])  # root (cap 3) full
        deep = harness.new_member(bandwidth=0.7, cap=0)
        assert proto.place(deep, rejoin=False)
        assert deep.layer == 2
        assert proto._max_layer >= 2


class TestFirstFound:
    def test_first_found_respects_threshold(self, harness):
        proto = RelaxedBandwidthOrderedProtocol(harness.ctx)
        place_members(harness, proto, [1.0, 2.0, 3.0])
        # nobody at layer 1 is worse than bandwidth 0.5
        found = proto._first_found_in_layer(1, my_priority=-0.5)
        assert found is None

    def test_first_found_returns_qualifying_member(self, harness):
        proto = RelaxedBandwidthOrderedProtocol(harness.ctx)
        nodes = place_members(harness, proto, [1.0, 2.0, 3.0])
        found = proto._first_found_in_layer(1, my_priority=-9.0)
        assert found in nodes
        assert found.bandwidth < 9.0


class TestImprovementCheck:
    def test_no_eviction_when_equal_free_slot(self, harness):
        proto = RelaxedBandwidthOrderedProtocol(harness.ctx)
        weak = harness.new_member(bandwidth=1.0)
        assert proto.place(weak, rejoin=False)
        strong = harness.new_member(bandwidth=9.0)
        assert proto.place(strong, rejoin=False)
        assert weak.attached  # root still had layer-1 slots


class TestTimeOrderedKeys:
    def test_priority_is_join_time(self, harness):
        proto = RelaxedTimeOrderedProtocol(harness.ctx)
        node = harness.new_member(join_time=123.0)
        assert proto.eviction_priority(node) == 123.0

    def test_adoption_prefers_oldest(self, harness):
        proto = RelaxedTimeOrderedProtocol(harness.ctx)
        old = harness.new_member(join_time=0.0)
        young = harness.new_member(join_time=50.0)
        assert sorted([young, old], key=proto.adoption_order) == [old, young]


class TestBandwidthOrderedKeys:
    def test_priority_is_negative_bandwidth(self, harness):
        proto = RelaxedBandwidthOrderedProtocol(harness.ctx)
        node = harness.new_member(bandwidth=4.0)
        assert proto.eviction_priority(node) == -4.0
